"""Simulator throughput: the per-word access loop vs the batched block
engine, over the same contiguous 64-page read/write sweep.

This is the bench that justifies running the workload suite at full paper
scale (``SCALE = 1.0`` in conftest.py): the block engine simulates the
same accesses — bit-identical clock, counters, cache and memory state —
at a large multiple of the word loop's host-time rate.  The measured
rates and the speedup are persisted to ``BENCH_throughput.json`` at the
repo root.

Also runnable standalone (the CI smoke invocation)::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_throughput.json"

if str(REPO_ROOT / "src") not in sys.path:      # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.hw.machine import Machine
from repro.hw.params import WORD_SIZE, MachineConfig
from repro.prot import Prot

PAGES = 64
ASID = 1
BASE_VPAGE = 4
BASE_PPAGE = 8


def _make_machine() -> Machine:
    """The paper's default machine with 64 contiguous user pages mapped."""
    machine = Machine(MachineConfig())
    mappings = {(ASID, BASE_VPAGE + i): (BASE_PPAGE + i, Prot.ALL)
                for i in range(PAGES)}
    machine.translation_source = lambda asid, vpage: mappings.get(
        (asid, vpage))
    return machine


def _sweep_words(machine: Machine, base: int,
                 values: list) -> tuple[float, np.ndarray]:
    """Write then read the whole region one word at a time."""
    t0 = time.perf_counter()
    for i, value in enumerate(values):
        machine.write(ASID, base + i * WORD_SIZE, value)
    out = [machine.read(ASID, base + i * WORD_SIZE)
           for i in range(len(values))]
    return time.perf_counter() - t0, np.asarray(out, dtype=np.uint64)


def _sweep_blocks(machine: Machine, base: int,
                  values: np.ndarray) -> tuple[float, np.ndarray]:
    """The same sweep through the block engine: one call per direction."""
    t0 = time.perf_counter()
    machine.write_block(ASID, base, values)
    out = machine.read_block(ASID, base, len(values))
    return time.perf_counter() - t0, out


def measure() -> dict:
    base = BASE_VPAGE * MachineConfig().page_size
    n_words = PAGES * MachineConfig().page_size // WORD_SIZE
    values = np.arange(n_words, dtype=np.uint64)

    word_machine = _make_machine()
    word_seconds, word_out = _sweep_words(word_machine, base, values.tolist())

    block_machine = _make_machine()
    block_seconds, block_out = _sweep_blocks(block_machine, base, values)

    # The speedup only counts if the two paths simulated the same thing.
    assert np.array_equal(word_out, block_out)
    assert word_machine.clock.cycles == block_machine.clock.cycles
    assert word_machine.counters == block_machine.counters

    accesses = 2 * n_words
    word_rate = accesses / word_seconds
    block_rate = accesses / block_seconds
    return {
        "sweep_pages": PAGES,
        "accesses_per_path": accesses,
        "simulated_cycles": word_machine.clock.cycles,
        "word_path": {"host_seconds": round(word_seconds, 6),
                      "accesses_per_second": round(word_rate)},
        "block_path": {"host_seconds": round(block_seconds, 6),
                       "accesses_per_second": round(block_rate)},
        "speedup": round(block_rate / word_rate, 2),
        "equivalent": True,
    }


def render(result: dict) -> str:
    lines = [
        "Simulated-access throughput (contiguous "
        f"{result['sweep_pages']}-page write+read sweep, "
        f"{result['accesses_per_path']} accesses per path)",
        "",
        f"{'path':<12} {'host seconds':>14} {'accesses/sec':>16}",
    ]
    for name, key in (("word loop", "word_path"), ("block engine",
                                                   "block_path")):
        row = result[key]
        lines.append(f"{name:<12} {row['host_seconds']:>14.4f} "
                     f"{row['accesses_per_second']:>16,}")
    lines.append("")
    lines.append(f"speedup: {result['speedup']}x "
                 "(identical clock, counters and values on both paths)")
    return "\n".join(lines)


def test_sim_throughput(once):
    from conftest import emit
    result = once(measure)
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    emit("sim_throughput", render(result))
    assert result["speedup"] >= 3.0


if __name__ == "__main__":
    result = measure()
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    sys.exit(0 if result["speedup"] >= 3.0 else 1)
