"""Simulator throughput: the per-word access loop vs the batched block
engine, over the same contiguous 64-page read/write sweep.

This is the bench that justifies running the workload suite at full paper
scale (``SCALE = 1.0`` in conftest.py): the block engine simulates the
same accesses — bit-identical clock, counters, cache and memory state —
at a large multiple of the word loop's host-time rate.  The measured
rates and the speedup are persisted to ``BENCH_throughput.json`` at the
repo root.

The measurement also covers the observability tax: the structured
event bus every machine now carries must be free when disabled, so the
block sweep is timed twice more — once on the default machine (bus
attached, disabled) and once with the bus detached from every
component — and the difference is persisted as
``disabled_bus_overhead``.  ``--assert-bus-overhead`` (the CI ``obs``
job) fails the run if the disabled bus costs more than 2%.

Also runnable standalone (the CI smoke invocation)::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py [--assert-bus-overhead]
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_throughput.json"

if str(REPO_ROOT / "src") not in sys.path:      # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.hw.machine import Machine
from repro.hw.params import WORD_SIZE, MachineConfig
from repro.prot import Prot

PAGES = 64
ASID = 1
BASE_VPAGE = 4
BASE_PPAGE = 8


def _make_machine() -> Machine:
    """The paper's default machine with 64 contiguous user pages mapped."""
    machine = Machine(MachineConfig())
    mappings = {(ASID, BASE_VPAGE + i): (BASE_PPAGE + i, Prot.ALL)
                for i in range(PAGES)}
    machine.translation_source = lambda asid, vpage: mappings.get(
        (asid, vpage))
    return machine


def _sweep_words(machine: Machine, base: int,
                 values: list) -> tuple[float, np.ndarray]:
    """Write then read the whole region one word at a time."""
    t0 = time.perf_counter()
    for i, value in enumerate(values):
        machine.write(ASID, base + i * WORD_SIZE, value)
    out = [machine.read(ASID, base + i * WORD_SIZE)
           for i in range(len(values))]
    return time.perf_counter() - t0, np.asarray(out, dtype=np.uint64)


def _sweep_blocks(machine: Machine, base: int,
                  values: np.ndarray) -> tuple[float, np.ndarray]:
    """The same sweep through the block engine: one call per direction."""
    t0 = time.perf_counter()
    machine.write_block(ASID, base, values)
    out = machine.read_block(ASID, base, len(values))
    return time.perf_counter() - t0, out


def measure_bus_overhead(repeats: int = 21, rounds: int = 5) -> dict:
    """The disabled event bus vs no bus at all, on the block path.

    The publishers only touch the bus on management operations, so the
    expected overhead is zero; the measurement (and the CI assertion
    that it stays under 2%) keeps it honest.  Because the effect being
    bounded is percent-level and one sweep is only a few milliseconds
    of host time, the estimator is built for noisy shared machines:

    * one machine, toggled between the two states — two separate
      machines bias the comparison by a few percent either way from
      allocation-layout luck alone;
    * each repeat times the two variants back to back (alternating
      which goes first) so scheduler and frequency drift hit both
      sides of a pair, and a round's estimate is the *median* of the
      per-pair ratios;
    * the measurement runs ``rounds`` independent rounds and reports
      the *median* of the per-round medians.  (It used to report the
      minimum, on a best-of-k rationale — but noise in a ratio of two
      near-equal times is two-sided, so taking the minimum of medians
      systematically selected the round where interference happened to
      land on the no-bus side, and the "overhead" came out negative.
      The median of medians is a consistent estimator of the true
      ratio; the gate stays an upper bound.  Five rounds rather than
      three because single-round medians still swing a few percent
      under frequency drift, and the middle of five discards two
      outliers per side.)
    """
    base = BASE_VPAGE * MachineConfig().page_size
    n_words = PAGES * MachineConfig().page_size // WORD_SIZE
    values = np.arange(n_words, dtype=np.uint64)

    machine = _make_machine()
    components = (machine.dcache, machine.icache, machine.tlb,
                  machine.dma)

    def _timed(detach: bool, inner: int = 8) -> float:
        for component in components:        # None = pre-observability
            component.bus = None if detach else machine.bus
        # several sweeps per sample: one sweep is ~3 ms of host time,
        # too close to scheduler jitter for a percent-level gate
        t0 = time.perf_counter()
        for _ in range(inner):
            machine.write_block(ASID, base, values)
            machine.read_block(ASID, base, len(values))
        return time.perf_counter() - t0

    _timed(False)                           # warm up both code paths
    _timed(True)
    medians = []
    attached_best = detached_best = float("inf")
    for _ in range(rounds):
        ratios = []
        for i in range(repeats):
            order = (False, True) if i % 2 == 0 else (True, False)
            first = _timed(order[0])
            second = _timed(order[1])
            a, d = ((second, first) if order[0]
                    else (first, second))
            ratios.append(a / d)
            attached_best = min(attached_best, a)
            detached_best = min(detached_best, d)
        ratios.sort()
        medians.append(ratios[len(ratios) // 2] - 1.0)

    return {
        "repeats": repeats,
        "rounds": rounds,
        "round_overheads_percent": [round(100.0 * m, 3)
                                    for m in medians],
        "attached_disabled_seconds": round(attached_best, 6),
        "detached_seconds": round(detached_best, 6),
        "overhead_percent": round(
            100.0 * sorted(medians)[len(medians) // 2], 3),
    }


def measure() -> dict:
    base = BASE_VPAGE * MachineConfig().page_size
    n_words = PAGES * MachineConfig().page_size // WORD_SIZE
    values = np.arange(n_words, dtype=np.uint64)

    word_machine = _make_machine()
    word_seconds, word_out = _sweep_words(word_machine, base, values.tolist())

    block_machine = _make_machine()
    block_seconds, block_out = _sweep_blocks(block_machine, base, values)

    # The speedup only counts if the two paths simulated the same thing.
    assert np.array_equal(word_out, block_out)
    assert word_machine.clock.cycles == block_machine.clock.cycles
    assert word_machine.counters == block_machine.counters

    accesses = 2 * n_words
    word_rate = accesses / word_seconds
    block_rate = accesses / block_seconds
    return {
        "sweep_pages": PAGES,
        "accesses_per_path": accesses,
        "simulated_cycles": word_machine.clock.cycles,
        "word_path": {"host_seconds": round(word_seconds, 6),
                      "accesses_per_second": round(word_rate)},
        "block_path": {"host_seconds": round(block_seconds, 6),
                       "accesses_per_second": round(block_rate)},
        "speedup": round(block_rate / word_rate, 2),
        "equivalent": True,
        "disabled_bus_overhead": measure_bus_overhead(),
    }


def render(result: dict) -> str:
    lines = [
        "Simulated-access throughput (contiguous "
        f"{result['sweep_pages']}-page write+read sweep, "
        f"{result['accesses_per_path']} accesses per path)",
        "",
        f"{'path':<12} {'host seconds':>14} {'accesses/sec':>16}",
    ]
    for name, key in (("word loop", "word_path"), ("block engine",
                                                   "block_path")):
        row = result[key]
        lines.append(f"{name:<12} {row['host_seconds']:>14.4f} "
                     f"{row['accesses_per_second']:>16,}")
    lines.append("")
    lines.append(f"speedup: {result['speedup']}x "
                 "(identical clock, counters and values on both paths)")
    bus = result["disabled_bus_overhead"]
    lines.append(f"disabled event bus on the block path: "
                 f"{bus['overhead_percent']:+.3f}% vs no bus "
                 f"(median of {bus['rounds']} round medians, "
                 f"{bus['repeats']} interleaved pairs each)")
    return "\n".join(lines)


#: the CI gate: the disabled bus may cost at most this much.
MAX_BUS_OVERHEAD_PERCENT = 2.0


def test_sim_throughput(once):
    from conftest import emit
    result = once(measure)
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    emit("sim_throughput", render(result))
    assert result["speedup"] >= 3.0
    assert (result["disabled_bus_overhead"]["overhead_percent"]
            <= MAX_BUS_OVERHEAD_PERCENT)


if __name__ == "__main__":
    result = measure()
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    ok = result["speedup"] >= 3.0
    if "--assert-bus-overhead" in sys.argv[1:]:
        overhead = result["disabled_bus_overhead"]["overhead_percent"]
        ok = ok and overhead <= MAX_BUS_OVERHEAD_PERCENT
        print(f"bus overhead gate: {overhead:+.3f}% "
              f"(limit {MAX_BUS_OVERHEAD_PERCENT}%): "
              + ("pass" if overhead <= MAX_BUS_OVERHEAD_PERCENT
                 else "FAIL"))
    sys.exit(0 if ok else 1)
