"""Section 5.1 extension: multiple (colored) free page lists.

"Most [purges] are due to the creation of new mappings when a virtual
address is assigned to a random physical page from the kernel's free
page list.  Some of these purges could be eliminated by reducing the
associativity of virtual to physical mappings through the use of
multiple free page lists."

This ablation runs kernel-build under configuration F with the plain
free list and with per-cache-color lists, and compares new-mapping purge
counts.
"""

from conftest import SCALE, emit

from repro.analysis.experiments import (evaluation_machine, make_workload,
                                        run_workload)
from repro.vm.policy import CONFIG_F


def test_colored_free_list(once):
    def run_both():
        plain = run_workload(make_workload("kernel-build", SCALE), CONFIG_F,
                             config=evaluation_machine())
        colored_policy = CONFIG_F.derive(
            "F+color", "F plus per-cache-color free page lists",
            colored_free_list=True)
        colored = run_workload(make_workload("kernel-build", SCALE),
                               colored_policy, config=evaluation_machine())
        return plain, colored

    plain, colored = once(run_both)
    lines = [
        "Section 5.1 free-list ablation (kernel-build, configuration F):",
        f"{'free list':<12} {'time(s)':>9} {'purges':>8} "
        f"{'new-mapping purges':>20}",
        "-" * 55,
        f"{'single':<12} {plain.seconds:>9.4f} {plain.page_purges:>8} "
        f"{plain.new_mapping_purges.count:>20}",
        f"{'colored':<12} {colored.seconds:>9.4f} {colored.page_purges:>8} "
        f"{colored.new_mapping_purges.count:>20}",
    ]
    emit("ablation_freelist", "\n".join(lines))

    # Coloring removes new-mapping purges and never slows the run.
    assert (colored.new_mapping_purges.count
            <= plain.new_mapping_purges.count)
    assert colored.seconds <= plain.seconds * 1.02
