"""Table 5: consistency management in five operating systems.

The paper's comparison is qualitative; here each system is a policy
configuration, so the matrix is regenerated from the flags and each
system is additionally *measured* on the alias/remap-heavy probe
workload (afs-bench), giving behavioural evidence: the CMU system should
perform the least cache management and run fastest; the eager systems
(Utah/Apollo/Sun) the most; Tut in between (lazy but per-VA state).
"""

from conftest import SCALE, emit

from repro.analysis.comparison import render_table5, table5_matrix
from repro.analysis.experiments import run_table5_probe


def test_table5(once):
    measurements = once(run_table5_probe, scale=SCALE)
    emit("table5", render_table5(measurements))

    by_name = {m.config_name: m for m in measurements}
    cmu, utah, tut = by_name["CMU"], by_name["Utah"], by_name["Tut"]
    apollo, sun = by_name["Apollo"], by_name["Sun"]

    # CMU performs the least cache management and is the fastest.
    for other in (utah, tut, apollo, sun):
        assert cmu.page_flushes <= other.page_flushes
        assert cmu.seconds <= other.seconds * 1.001

    # Utah and Apollo behave alike (same eager skeleton); Sun diverts its
    # unaligned alias sets to uncached access, trading faults and cache
    # operations for slow memory-speed references.
    assert utah.page_flushes == apollo.page_flushes
    assert sun.page_flushes <= utah.page_flushes
    assert (sun.consistency_faults.count
            <= utah.consistency_faults.count)

    # Tut's per-VA state: lazier than Utah on faults, busier than CMU on
    # cache operations (aligned-but-unequal reuse still pays).
    assert tut.page_flushes + tut.page_purges > (cmu.page_flushes
                                                 + cmu.page_purges)

    # The qualitative matrix matches the paper's rows.
    matrix = {t.name: t for t in table5_matrix()}
    assert matrix["CMU"].exploits_will_overwrite
    assert not matrix["Utah"].lazy_unmap
    assert matrix["Tut"].state_granularity == "virtual address"
    assert matrix["Apollo"].state_granularity == "none (eager)"
    assert all(t.handles_unaligned_aliases for t in matrix.values())
