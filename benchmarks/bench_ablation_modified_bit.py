"""Section 4.1 ablation: the page-modified-bit optimization.

The implementation "sets P[p].cache_dirty whenever the virtual memory
system sets the page-modified bit yet the number of mapped bits is one",
instead of revoking write access after every cleaning and eating a
consistency fault on the next store.

The probe is the pattern that needs it: a process repeatedly re-dirties
a buffer it keeps mapped writable while the kernel flushes it for disk
DMA (a logging loop).  With the modified bit the re-dirtying is free;
without it, every round trips a write fault.
"""

from conftest import emit

from repro.analysis.experiments import evaluation_machine
from repro.hw.stats import FaultKind
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.vm.policy import CONFIG_F

ROUNDS = 200


def logging_loop(policy):
    """Dirty a page, DMA it to disk, re-dirty it, repeat."""
    kernel = Kernel(policy=policy, config=evaluation_machine())
    proc = UserProcess(kernel, "logger")
    vpage = proc.task.allocate_anon(1)
    proc.task.write(vpage, 0, 1)
    frame = kernel.pmap.page_table(proc.task.asid).lookup(vpage).ppage
    start_cycles = kernel.machine.clock.cycles
    start_faults = kernel.machine.counters.faults[FaultKind.CONSISTENCY]
    for i in range(ROUNDS):
        kernel.disk.write_block(42, 0, frame)       # flush + DMA-read
        proc.task.write(vpage, 0, i)                # re-dirty the buffer
    cycles = kernel.machine.clock.cycles - start_cycles
    faults = (kernel.machine.counters.faults[FaultKind.CONSISTENCY]
              - start_faults)
    # the device must have observed the freshest value each round
    assert int(kernel.disk.block(42, 0)[0]) == ROUNDS - 2
    proc.exit()
    return cycles, faults


def test_modified_bit(once):
    def run_both():
        with_bit = logging_loop(CONFIG_F)
        no_bit = logging_loop(CONFIG_F.derive(
            "F-nomod", "F without the page-modified-bit shortcut",
            use_modified_bit=False))
        return with_bit, no_bit

    (bit_cycles, bit_faults), (nobit_cycles, nobit_faults) = once(run_both)
    lines = [
        f"Section 4.1 modified-bit ablation ({ROUNDS} dirty/DMA/redirty "
        "rounds):",
        f"{'variant':<16} {'cycles':>10} {'consistency faults':>20}",
        "-" * 50,
        f"{'modified bit':<16} {bit_cycles:>10} {bit_faults:>20}",
        f"{'write faults':<16} {nobit_cycles:>10} {nobit_faults:>20}",
    ]
    emit("ablation_modified_bit", "\n".join(lines))

    # The hardware bit eliminates one consistency fault per round.
    assert bit_faults == 0
    assert nobit_faults >= ROUNDS - 2
    assert nobit_cycles > bit_cycles
