"""The million-user serving benchmark: the north-star scenario, gated.

A population of simulated users (16 cohorts x 15,000 users, ~4.5
syscalls each — over a million server requests) is served through the
Unix server's shared-channel and IPC page-transfer paths, first with
``jobs=1`` (the bit-exact serial reference) and then cohort-sharded
across a worker pool.  The two merged reports must be *identical* —
same request count, same fold of every page checksum, same summed
counters — which is the whole farm contract applied at production
scale.  Results land in ``BENCH_serve.json`` at the repo root.

Like the farm-scaling benchmark, the sharded-speedup gate only arms on
hosts with at least two usable cores; the request-count and
bit-identity gates hold everywhere.

Also runnable standalone (the CI serve job invocation)::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serve.json"

if str(REPO_ROOT / "src") not in sys.path:      # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.farm import Executor, farm_serve

COHORTS = 16
USERS_PER_COHORT = 15_000
SHARDED_JOBS = 4

#: the CI gates; the speedup one arms only on multi-core hosts.
MIN_REQUESTS = 1_000_000
MIN_SHARDED_SPEEDUP = 1.3


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                      # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure() -> dict:
    t0 = time.perf_counter()
    serial = farm_serve(COHORTS, USERS_PER_COHORT, Executor(jobs=1))
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = farm_serve(COHORTS, USERS_PER_COHORT,
                         Executor(jobs=SHARDED_JOBS, timeout=600.0))
    sharded_seconds = time.perf_counter() - t0

    # The acceptance property: cohort sharding changes nothing, to the
    # bit — requests, checksum fold, merged counters, everything.
    equivalent = serial.to_dict() == sharded.to_dict()

    usable_cores = _usable_cores()
    return {
        "cohorts": COHORTS,
        "users_per_cohort": USERS_PER_COHORT,
        "users": serial.users,
        "requests": serial.requests,
        "reads": serial.reads,
        "writes": serial.writes,
        "checksum": f"{serial.checksum:#010x}",
        "cycles_per_request": round(serial.cycles_per_request, 1),
        "bc_hit_rate": round(serial.bc_hits
                             / (serial.bc_hits + serial.bc_misses), 4),
        "usable_cores": usable_cores,
        "sharded_gate_armed": usable_cores >= 2,
        "serial": {
            "host_seconds": round(serial_seconds, 2),
            "requests_per_second": round(serial.requests / serial_seconds),
        },
        "sharded": {
            "jobs": SHARDED_JOBS,
            "host_seconds": round(sharded_seconds, 2),
            "requests_per_second": round(serial.requests
                                         / sharded_seconds),
            "speedup": round(serial_seconds / sharded_seconds, 2),
        },
        "equivalent": equivalent,
    }


def render(result: dict) -> str:
    lines = [
        f"Serve: {result['requests']} requests from {result['users']} "
        f"users ({result['cohorts']} cohorts, "
        f"{result['usable_cores']} usable cores)",
        "",
        f"{'mode':<22} {'host seconds':>13} {'req/s':>9} {'speedup':>9}",
        f"{'serial (jobs=1)':<22} "
        f"{result['serial']['host_seconds']:>13.2f} "
        f"{result['serial']['requests_per_second']:>9} {'1.0x':>9}",
        f"{'sharded (jobs=' + str(result['sharded']['jobs']) + ')':<22} "
        f"{result['sharded']['host_seconds']:>13.2f} "
        f"{result['sharded']['requests_per_second']:>9} "
        f"{str(result['sharded']['speedup']) + 'x':>9}",
        "",
        f"checksum {result['checksum']}, "
        f"{result['cycles_per_request']} cycles/request, buffer-cache "
        f"hit rate {result['bc_hit_rate']:.1%}",
    ]
    if result["sharded_gate_armed"]:
        lines.append(f"sharded gate ARMED ({result['usable_cores']} "
                     f"usable cores): must clear {MIN_SHARDED_SPEEDUP}x")
    else:
        lines.append("sharded gate DISARMED (single-core host): the "
                     "sharded row measures dispatch overhead, not "
                     "speedup")
    lines.append("merged reports "
                 + ("bit-identical" if result["equivalent"]
                    else "DIVERGED") + " between serial and sharded")
    return "\n".join(lines)


def check(result: dict) -> list[str]:
    """The gates; returns failure descriptions (empty == pass)."""
    failures = []
    if result["requests"] < MIN_REQUESTS:
        failures.append(f"served only {result['requests']} requests "
                        f"(gate: {MIN_REQUESTS})")
    if not result["equivalent"]:
        failures.append("sharded merged report is not bit-identical to "
                        "the jobs=1 report")
    if (result["sharded_gate_armed"]
            and result["sharded"]["speedup"] < MIN_SHARDED_SPEEDUP):
        failures.append(
            f"sharded speedup {result['sharded']['speedup']}x on "
            f"{result['usable_cores']} cores (gate: "
            f"{MIN_SHARDED_SPEEDUP}x)")
    return failures


def test_serve(once):
    from conftest import emit
    result = once(measure)
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    emit("serve", render(result))
    assert check(result) == []


if __name__ == "__main__":
    result = measure()
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    failures = check(result)
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    sys.exit(1 if failures else 0)
