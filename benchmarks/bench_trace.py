"""Trace replay throughput: the compiled op-stream interpreter vs the
live block path, at the paper-scale settings of bench_full_scale.

Each (workload, policy) pair is run once through the normal kernel
(the block path — the baseline every table is produced on), then
compiled to a trace and replayed three times; the best replay wall time
counts (replay is deterministic, so repeats measure host noise only).
The replay must verify the equivalence contract — bit-identical clock
and full-fidelity counters against what the recorder captured — or the
measurement is void: a fast wrong replay is worthless.

The measured rates, the per-pair and aggregate speedups, and the
equivalence verdict are persisted to ``BENCH_trace.json`` at the repo
root; the CI ``trace`` job gates on aggregate speedup >= 5x with
``equivalent: true``.

Also runnable standalone (the CI invocation)::

    PYTHONPATH=src python benchmarks/bench_trace.py [--assert-speedup]
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_trace.json"

if str(REPO_ROOT / "src") not in sys.path:      # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import (evaluation_machine, make_workload,
                                        run_workload)
from repro.trace import compile_workload, replay_trace
from repro.vm.policy import by_name

# bench_full_scale's settings: paper-sized workloads on the large-memory
# machine.
FULL_SCALE = 5.0
PHYS_PAGES = 1024
BUFFER_CACHE_PAGES = 128
NAMES = ("afs-bench", "kernel-build")
POLICIES = ("A", "F")
REPLAY_REPEATS = 3

#: the gate: aggregate replay speedup over the block path.
MIN_SPEEDUP = 5.0


def measure() -> dict:
    config = evaluation_machine(phys_pages=PHYS_PAGES)
    pairs = []
    total_direct = total_replay = 0.0
    all_equivalent = True
    for name in NAMES:
        for policy_name in POLICIES:
            policy = by_name(policy_name)
            t0 = time.perf_counter()
            run_workload(make_workload(name, FULL_SCALE), policy,
                         config=config,
                         buffer_cache_pages=BUFFER_CACHE_PAGES)
            direct = time.perf_counter() - t0

            trace = compile_workload(
                make_workload(name, FULL_SCALE), policy, config=config,
                buffer_cache_pages=BUFFER_CACHE_PAGES)
            best = float("inf")
            result = None
            for _ in range(REPLAY_REPEATS):
                t0 = time.perf_counter()
                result = replay_trace(trace)
                best = min(best, time.perf_counter() - t0)
            all_equivalent = all_equivalent and result.equivalent
            total_direct += direct
            total_replay += best
            pairs.append({
                "workload": name,
                "policy": policy_name,
                "n_ops": result.n_ops,
                "direct_seconds": round(direct, 6),
                "replay_seconds": round(best, 6),
                "speedup": round(direct / best, 2),
                "equivalent": result.equivalent,
                "mismatches": list(result.mismatches),
            })
    return {
        "scale": FULL_SCALE,
        "phys_pages": PHYS_PAGES,
        "buffer_cache_pages": BUFFER_CACHE_PAGES,
        "replay_repeats": REPLAY_REPEATS,
        "pairs": pairs,
        "direct_seconds": round(total_direct, 6),
        "replay_seconds": round(total_replay, 6),
        "speedup": round(total_direct / total_replay, 2),
        "equivalent": all_equivalent,
    }


def render(result: dict) -> str:
    lines = [
        "Trace replay vs the live block path "
        f"(paper scale {result['scale']}, "
        f"{result['phys_pages']}-page machine)",
        "",
        f"{'pair':<18} {'ops':>7} {'direct(s)':>10} {'replay(s)':>10} "
        f"{'speedup':>8} {'equiv':>6}",
    ]
    for pair in result["pairs"]:
        tag = f"{pair['workload']}/{pair['policy']}"
        lines.append(
            f"{tag:<18} {pair['n_ops']:>7} {pair['direct_seconds']:>10.3f} "
            f"{pair['replay_seconds']:>10.3f} {pair['speedup']:>7.2f}x "
            f"{str(pair['equivalent']).lower():>6}")
    lines.append("")
    lines.append(f"aggregate: {result['direct_seconds']:.3f}s direct / "
                 f"{result['replay_seconds']:.3f}s replay = "
                 f"{result['speedup']}x, equivalent: "
                 f"{str(result['equivalent']).lower()}")
    return "\n".join(lines)


def test_trace_replay_speedup(once):
    from conftest import emit
    result = once(measure)
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    emit("trace_replay", render(result))
    assert result["equivalent"], [p["mismatches"] for p in result["pairs"]]
    assert result["speedup"] >= MIN_SPEEDUP


if __name__ == "__main__":
    result = measure()
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    ok = result["equivalent"]
    if "--assert-speedup" in sys.argv[1:]:
        ok = ok and result["speedup"] >= MIN_SPEEDUP
        print(f"speedup gate: {result['speedup']}x "
              f"(limit {MIN_SPEEDUP}x): "
              + ("pass" if result["speedup"] >= MIN_SPEEDUP else "FAIL"))
    sys.exit(0 if ok else 1)
