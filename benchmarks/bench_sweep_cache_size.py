"""Cache-size sweep: where the lazy policy's deferred operations get
cheap.

The paper attributes part of laziness's win to deferred flush/purge
targets leaving the cache naturally before the deferred operation runs
(a non-resident purge costs 1/7th of a resident one on the 720).  Our
default evaluation cache (256 KiB) is large relative to the scaled
workloads, so deferred targets often remain resident; shrinking the
cache restores the paper's regime.  This sweep shows the average cost of
a data-cache purge under configuration F falling as the cache shrinks —
and the old-vs-new gap persisting at every size.
"""

from conftest import SCALE, emit, farm_executor

from repro.analysis.sweep import render_sweep, sweep_cache_sizes
from repro.vm.policy import CONFIG_A, CONFIG_F

SIZES = (32, 64, 256)


def test_cache_size_sweep(once):
    # Each (policy, size) point is one farm job: REPRO_FARM_JOBS shards
    # the sweep, REPRO_FARM_CACHE makes reruns near-free; the default is
    # the serial path, point-for-point identical (tests/farm asserts so).
    executor = farm_executor()

    def run():
        return {
            "A": sweep_cache_sizes("kernel-build", CONFIG_A, SIZES, SCALE,
                                   executor=executor),
            "F": sweep_cache_sizes("kernel-build", CONFIG_F, SIZES, SCALE,
                                   executor=executor),
        }

    sweeps = once(run)
    emit("sweep_cache_size", render_sweep(sweeps, "kernel-build"))

    a_points, f_points = sweeps["A"], sweeps["F"]

    # The new system wins at every cache size.
    for a, f in zip(a_points, f_points):
        assert f.metrics.seconds < a.metrics.seconds

    # Deferred purges get cheaper per operation as the cache shrinks
    # (more of their targets were naturally evicted first).
    f_small, f_large = f_points[0], f_points[-1]
    assert f_small.avg_purge_cycles < f_large.avg_purge_cycles

    # The flush identity (DMA + d->i) holds at every size.
    for point in f_points:
        m = point.metrics
        assert m.dcache_flushes.count == (m.dma_read_flushes.count
                                          + m.d_to_i_flushes.count)
