"""Table 4: the three benchmarks across kernel configurations A-F, with
the Section 5.1 interpretation claims checked against the regenerated
numbers.

The paper's Table 4 body survives only as a caption in the available
text, so the *structure* (columns named in Section 5/5.1) is reproduced
and the prose claims are asserted:

* elapsed time improves monotonically (within noise) down the ladder;
* mapping faults stay nearly constant across the lazy configurations
  while consistency faults drop substantially;
* D->E trades flushes for purges one-for-one (dead dirty data);
* at F, data-cache flushes = DMA-read flushes + data-to-instruction
  copies;
* most remaining purges at F are due to new mappings of recycled frames;
* the total virtually-indexed-cache overhead is a small fraction of
  execution time (paper: 0.22%).
"""

from conftest import SCALE, emit

from repro.analysis.experiments import run_table4
from repro.analysis.tables import render_overhead_summary, render_table4


def test_table4(once):
    results = once(run_table4, scale=SCALE)
    finals = [metrics[-1] for metrics in results.values()]
    emit("table4", render_table4(results)
         + "\n\n" + render_overhead_summary(finals))

    for name, metrics in results.items():
        a, b, c, d, e, f = metrics

        # Elapsed time: never worse down the ladder (5% tolerance), and
        # strictly better end to end.
        times = [m.seconds for m in metrics]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier * 1.05, (name, earlier, later)
        assert f.seconds < a.seconds

        # Mapping faults nearly constant across the lazy configurations.
        lazy_faults = [m.mapping_faults.count for m in metrics[1:]]
        assert max(lazy_faults) <= min(lazy_faults) * 1.1

        # Consistency faults drop substantially once addresses align.
        assert f.consistency_faults.count <= b.consistency_faults.count / 5

        # D -> E: flush decrease offset by purge increase.
        flush_drop = d.dcache_flushes.count - e.dcache_flushes.count
        purge_rise = e.dcache_purges.count - d.dcache_purges.count
        assert flush_drop > 0
        assert abs(purge_rise - flush_drop) <= max(3, flush_drop * 0.3)

        # E -> F: will_overwrite removes purges, never adds them.
        assert f.dcache_purges.count <= e.dcache_purges.count

        # At F: flushes = DMA-read flushes + d->i copies (Section 5.1).
        assert f.dcache_flushes.count == (f.dma_read_flushes.count
                                          + f.d_to_i_flushes.count)

        # Remaining purges at F are dominated by new mappings (paper: ~80%
        # new mappings, 9% DMA-writes, 17.5% d->i).  Require a majority —
        # but only where the sample is large enough for a mix claim
        # (latex-paper ends with ~a dozen purges, where two or three
        # d->i purges swing the ratio).
        if f.dcache_purges.count >= 30:
            assert (f.new_mapping_purges.count
                    >= f.dcache_purges.count * 0.5)

        # Total VI-cache overhead is small (paper: 0.22% at F).
        assert f.consistency_overhead_fraction < 0.03
