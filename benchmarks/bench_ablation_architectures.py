"""Section 3.3 ablation: consistency obligations across cache
architectures.

The model predicts: write-back virtually indexed caches need the full
rule set; write-through ones never flush; physically indexed ones only
manage DMA; DMA-through-the-cache needs no DMA-specific rules at all.
This bench measures the consistency actions each variant requires on a
common random operation trace and regenerates the comparison.
"""

import random

from conftest import emit

from repro.core.model import ConsistencyModel
from repro.core.states import Action, MemoryOp
from repro.core.variants import (DmaThroughCacheModel, PhysicallyIndexedModel,
                                 WriteThroughModel)

NCP = 8
STEPS = 5_000


def _trace(seed=1234):
    rng = random.Random(seed)
    ops = [MemoryOp.CPU_READ, MemoryOp.CPU_READ, MemoryOp.CPU_WRITE,
           MemoryOp.CPU_WRITE, MemoryOp.DMA_READ, MemoryOp.DMA_WRITE]
    for _ in range(STEPS):
        yield rng.choice(ops), rng.randrange(NCP)


def _count(model, fold_target=False):
    flushes = purges = 0
    for op, target in _trace():
        if isinstance(model, PhysicallyIndexedModel):
            actions = model.apply(op)
        elif op.is_dma and not fold_target:
            actions = model.apply(op)
        else:
            actions = model.apply(op, target)
        for action in actions:
            if action.action is Action.FLUSH:
                flushes += 1
            else:
                purges += 1
    return flushes, purges


def test_architecture_ablation(once):
    def run_all():
        return {
            "VI write-back (the 720)": _count(ConsistencyModel(NCP)),
            "VI write-through": _count(WriteThroughModel(NCP)),
            "PI write-back": _count(PhysicallyIndexedModel()),
            "PI write-through": _count(PhysicallyIndexedModel(
                write_through=True)),
            "VI write-back, DMA via cache": _count(
                DmaThroughCacheModel(NCP), fold_target=True),
        }

    results = once(run_all)
    lines = [f"Section 3.3 ablation: consistency actions over {STEPS} "
             "random memory events",
             f"{'architecture':<30} {'flushes':>8} {'purges':>8}",
             "-" * 50]
    for name, (flushes, purges) in results.items():
        lines.append(f"{name:<30} {flushes:>8} {purges:>8}")
    emit("ablation_architectures", "\n".join(lines))

    vi_wb = results["VI write-back (the 720)"]
    vi_wt = results["VI write-through"]
    pi_wb = results["PI write-back"]
    pi_wt = results["PI write-through"]
    dma_cache = results["VI write-back, DMA via cache"]

    # Write-through never flushes (no Dirty state).
    assert vi_wt[0] == 0 and vi_wt[1] > 0
    # Physically indexed: only DMA obligations, far fewer than VI.
    assert sum(pi_wb) < sum(vi_wb) / 3
    # Physically indexed write-through: no flushes (memory never stale),
    # and the only purges are for DMA-writes — even a physically indexed
    # write-through cache shadows non-snooped device data.
    assert pi_wt[0] == 0
    assert 0 < pi_wt[1] <= sum(pi_wb)
    # VI write-back needs more management than any aligned/indexed relief
    # provides.  (DMA-through-the-cache is *not* cheaper: folding device
    # writes into CPU-write rules dirties lines that must later be
    # flushed, where a non-snooped DMA write merely marks copies stale.)
    assert sum(vi_wb) > sum(vi_wt) / 2
    assert sum(vi_wb) > sum(pi_wb)
    assert sum(dma_cache) > 0
