"""The Section 2.5 contrived benchmark: one physical page written
repeatedly through two virtual addresses.

Paper: aligned, 1,000,000 writes complete "in a fraction of a second";
unaligned, "over 2 minutes" — between two and three orders of magnitude.
The regenerated series reports cycles per write for both cases and the
slowdown factor.
"""

from conftest import emit

from repro.analysis.experiments import run_alignment_micro
from repro.analysis.tables import render_micro

ITERATIONS = 20_000


def test_alignment_microbenchmark(once):
    aligned, unaligned = once(run_alignment_micro, iterations=ITERATIONS)
    emit("micro_alignment", render_micro(aligned, unaligned))

    # Aligned: no consistency machinery at all.
    assert aligned.consistency_faults == 0
    assert aligned.page_flushes == 0
    assert aligned.page_purges == 0
    assert aligned.cycles_per_write < 20

    # Unaligned: every alternation faults, flushes, purges.
    assert unaligned.consistency_faults >= ITERATIONS - 10
    assert unaligned.page_flushes >= ITERATIONS - 10

    # The paper's factor: "a fraction of a second" vs "over 2 minutes" is
    # at least ~240x; require two orders of magnitude.
    assert unaligned.cycles > 100 * aligned.cycles
