"""Farm scaling: wall-clock vs worker count, and the near-free rerun.

One chaos batch — every job a pure function of its seed — runs serially,
then across 2- and 4-worker pools, then twice against a fresh result
cache.  Payloads are asserted identical on every path (the farm's
defining property; tests/farm/test_equivalence.py holds the full proof),
and the measured wall-clocks land in ``BENCH_farm.json`` at the repo
root: the parallel speedups, and the cache-hit rerun that answers from
disk without simulating anything.

The parallel-speedup gate only arms on hosts with at least two usable
cores — a single-core container cannot exhibit parallel speedup, only
record its absence — while the cache-hit gate (>10x) holds everywhere:
reading JSON beats re-simulating on any machine.

Also runnable standalone (the CI farm job invocation)::

    PYTHONPATH=src python benchmarks/bench_farm_scaling.py
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_farm.json"

if str(REPO_ROOT / "src") not in sys.path:      # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.farm import Executor, JobSpec, ResultCache

PLANS = 12
STEPS = 400
WIDTHS = (2, 4)

#: the CI gates; the parallel one arms only on multi-core hosts.
MIN_PARALLEL_SPEEDUP = 1.5
MIN_CACHE_SPEEDUP = 10.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                      # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_run(executor: Executor, specs) -> tuple[float, list]:
    t0 = time.perf_counter()
    outcomes = executor.run(specs)
    seconds = time.perf_counter() - t0
    assert all(o.ok for o in outcomes)
    return seconds, [o.payload for o in outcomes]


def measure() -> dict:
    specs = [JobSpec.chaos(seed=seed, preset="mixed", steps=STEPS)
             for seed in range(PLANS)]

    serial_seconds, serial_payloads = _timed_run(Executor(jobs=1), specs)

    parallel = {}
    for jobs in WIDTHS:
        seconds, payloads = _timed_run(
            Executor(jobs=jobs, timeout=120.0), specs)
        assert payloads == serial_payloads      # sharding changed nothing
        parallel[jobs] = {
            "host_seconds": round(seconds, 4),
            "speedup": round(serial_seconds / seconds, 2),
        }

    with tempfile.TemporaryDirectory() as tmp:
        miss_seconds, miss_payloads = _timed_run(
            Executor(jobs=1, cache=ResultCache(tmp)), specs)
        hit_executor = Executor(jobs=1, cache=ResultCache(tmp))
        hit_seconds, hit_payloads = _timed_run(hit_executor, specs)
        assert hit_executor.stats.cache_hits == PLANS
        assert hit_payloads == miss_payloads == serial_payloads

    usable_cores = _usable_cores()
    return {
        "plans": PLANS,
        "steps": STEPS,
        "usable_cores": usable_cores,
        # Recorded explicitly so a sub-1x parallel number in this file
        # can never be misread as a regression: on a single-core host
        # the gate never armed and the "speedup" is just an overhead
        # measurement.
        "parallel_gate_armed": usable_cores >= 2,
        "serial_seconds": round(serial_seconds, 4),
        "parallel": {str(jobs): row for jobs, row in parallel.items()},
        "cache": {
            "cold_seconds": round(miss_seconds, 4),
            "hit_seconds": round(hit_seconds, 4),
            "speedup": round(serial_seconds / hit_seconds, 1),
        },
        "equivalent": True,
    }


def render(result: dict) -> str:
    lines = [
        f"Farm scaling ({result['plans']} chaos plans x "
        f"{result['steps']} steps, {result['usable_cores']} usable "
        "cores)",
        "",
        f"{'mode':<16} {'host seconds':>14} {'speedup':>9}",
        f"{'serial':<16} {result['serial_seconds']:>14.3f} {'1.0x':>9}",
    ]
    for jobs, row in sorted(result["parallel"].items(), key=lambda i:
                            int(i[0])):
        lines.append(f"{jobs + ' workers':<16} "
                     f"{row['host_seconds']:>14.3f} "
                     f"{str(row['speedup']) + 'x':>9}")
    cache = result["cache"]
    lines.append(f"{'cache hit':<16} {cache['hit_seconds']:>14.3f} "
                 f"{str(cache['speedup']) + 'x':>9}")
    lines.append("")
    if result["parallel_gate_armed"]:
        lines.append(f"parallel gate ARMED ({result['usable_cores']} "
                     f"usable cores): best width must clear "
                     f"{MIN_PARALLEL_SPEEDUP}x")
    else:
        lines.append("parallel gate DISARMED (single-core host): the "
                     "parallel rows measure dispatch overhead, not "
                     "speedup")
    lines.append("identical payloads on every path; cache-hit rerun "
                 "reads JSON instead of simulating")
    return "\n".join(lines)


def check(result: dict) -> list[str]:
    """The gates; returns failure descriptions (empty == pass)."""
    failures = []
    if result["cache"]["speedup"] < MIN_CACHE_SPEEDUP:
        failures.append(
            f"cache-hit rerun only {result['cache']['speedup']}x faster "
            f"than serial (gate: {MIN_CACHE_SPEEDUP}x)")
    best = max(row["speedup"] for row in result["parallel"].values())
    if result["parallel_gate_armed"] and best < MIN_PARALLEL_SPEEDUP:
        failures.append(
            f"best parallel speedup {best}x on "
            f"{result['usable_cores']} cores (gate: "
            f"{MIN_PARALLEL_SPEEDUP}x)")
    return failures


def test_farm_scaling(once):
    from conftest import emit
    result = once(measure)
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    emit("farm_scaling", render(result))
    assert check(result) == []


if __name__ == "__main__":
    result = measure()
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    failures = check(result)
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    sys.exit(1 if failures else 0)
