"""Paper-scale runs: the headline comparison at the evaluation's true size.

The regular benches run scaled-down workloads for speed; this one runs
kernel-build at the paper's size — 200 compiled sources, as in "builds a
version of the Mach kernel from about 200 source files" — and afs-bench
with an Andrew-sized file set, on a larger-memory machine.  The gains
and operation collapse must match the scaled runs (the shapes are scale-
invariant, which is itself worth checking).
"""

from conftest import emit, farm_executor

from repro.analysis.metrics import RunMetrics
from repro.farm import JobSpec
from repro.farm.suites import FarmJobError

FULL_MACHINE = dict(phys_pages=1024)
FULL_SCALE = 5.0     # kernel-build: 200 sources; afs-bench: 80 files

NAMES = ("afs-bench", "kernel-build")


def test_full_scale(once):
    # The four paper-scale runs are independent pure jobs — the shape of
    # work the simulation farm exists for.  REPRO_FARM_JOBS shards them;
    # the default executor runs the identical serial path.
    executor = farm_executor()
    specs = [JobSpec.workload(workload=name, policy=policy,
                              scale=FULL_SCALE,
                              phys_pages=FULL_MACHINE["phys_pages"],
                              buffer_cache_pages=128)
             for name in NAMES for policy in ("A", "F")]

    def run():
        outcomes = executor.run(specs)
        for outcome in outcomes:
            if not outcome.ok:
                raise FarmJobError(outcome)
        metrics = [RunMetrics.from_dict(o.payload["metrics"])
                   for o in outcomes]
        return {name: (metrics[2 * i], metrics[2 * i + 1])
                for i, name in enumerate(NAMES)}

    rows = once(run)
    lines = ["Paper-scale runs (kernel-build: 200 sources):",
             f"{'benchmark':<14} {'old(s)':>9} {'new(s)':>9} {'gain':>6} "
             f"{'flushes':>14} {'purges':>14}",
             "-" * 72]
    for name, (old, new) in rows.items():
        gain = 100 * (old.seconds - new.seconds) / old.seconds
        lines.append(
            f"{name:<14} {old.seconds:>9.3f} {new.seconds:>9.3f} "
            f"{gain:>5.1f}% {old.page_flushes:>6}->{new.page_flushes:<6} "
            f"{old.page_purges:>6}->{new.page_purges:<6}")
    emit("full_scale", "\n".join(lines))

    for name, (old, new) in rows.items():
        gain = 100 * (old.seconds - new.seconds) / old.seconds
        assert 4.0 < gain < 25.0           # the paper's band, loosely
        assert new.page_flushes < old.page_flushes / 3
        # the flush identity holds at full scale too
        assert new.dcache_flushes.count == (new.dma_read_flushes.count
                                            + new.d_to_i_flushes.count)
