"""Shared helpers for the benchmark suite.

Each bench regenerates one table or figure of the paper's evaluation,
prints it, and persists it under ``benchmarks/out/`` so the rendered
artifacts survive the run (pytest captures stdout).  Run with::

    pytest benchmarks/ --benchmark-only

Scale note: workloads run at SCALE of the paper's size; EXPERIMENTS.md
records the paper-vs-measured comparison for every artifact produced
here.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.experiments import DEFAULT_SCALE

OUT_DIR = pathlib.Path(__file__).parent / "out"

# Fraction of the paper's workload sizes used for the bench runs, shared
# with the CLI via the experiments module.  The batched access engine made
# full scale affordable: the whole suite still completes in well under a
# minute (see bench_sim_throughput.py).
SCALE = DEFAULT_SCALE

#: how wide the farm-wired benches run (bench_sweep_cache_size,
#: bench_full_scale); 1 == the historical serial path, bit-identical.
FARM_JOBS = int(os.environ.get("REPRO_FARM_JOBS", "1"))


def farm_executor(timeout: float = 900.0):
    """The executor the farm-wired benches share.

    The result cache stays *off* unless ``REPRO_FARM_CACHE`` names a
    directory: a cached bench would report near-zero wall time, which is
    exactly what a benchmark must not silently do.  CI's farm job opts
    in to demonstrate the near-free rerun.
    """
    from repro.farm import Executor, ResultCache

    cache_dir = os.environ.get("REPRO_FARM_CACHE")
    return Executor(jobs=FARM_JOBS,
                    cache=ResultCache(cache_dir) if cache_dir else None,
                    timeout=timeout)


def emit(name: str, text: str) -> None:
    """Print a rendered artifact and persist it to benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The simulations are deterministic, so repeated rounds measure nothing
    but host noise; one round keeps the suite fast while still recording
    wall-clock cost per experiment.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
