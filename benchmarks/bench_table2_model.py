"""Tables 2 and 3: the consistency model's transition table and the
per-page state encoding, regenerated from the implementation.

Table 2 is data (not a measurement), so this bench regenerates it by
exhaustively enumerating the implemented transition function and checks
the structural facts the paper's correctness argument uses; Table 3 is
checked by decoding every (mapped, stale, cache_dirty) combination.
"""

import itertools

from conftest import emit

from repro.core.model import ConsistencyModel
from repro.core.page_state import PhysPageState
from repro.core.states import LineState, MemoryOp
from repro.core.transitions import render_table2


def _render_table3() -> str:
    lines = ["Table 3: cache page state vs data structure encoding",
             f"{'state':<10} {'mapped[c]':>10} {'stale[c]':>9} "
             f"{'cache_dirty':>12}",
             "-" * 45]
    for mapped, stale, dirty in itertools.product([False, True], repeat=3):
        if mapped and stale:
            continue  # invalid encoding, rejected by validate()
        if dirty and not mapped:
            continue  # cache_dirty names the mapped page
        state = PhysPageState(0, 4)
        state.mapped[1] = mapped
        state.stale[1] = stale
        state.cache_dirty = dirty
        decoded = state.decode(1)
        lines.append(f"{decoded.name:<10} {str(mapped):>10} "
                     f"{str(stale):>9} {str(dirty):>12}")
    return "\n".join(lines)


def test_table2_and_table3(once):
    def regenerate():
        table2 = render_table2()
        table3 = _render_table3()
        return table2, table3

    table2, table3 = once(regenerate)
    emit("table2", table2)
    emit("table3", table3)

    # Exhaustive sanity over the model: every reachable state under every
    # event sequence of length 3 keeps the single-dirty invariant.
    events = [(op, t) for op in MemoryOp if not op.is_cache_op
              for t in ([0, 1] if op.is_cpu else [None])]
    count = 0
    for seq in itertools.product(events, repeat=3):
        model = ConsistencyModel(2)
        for op, target in seq:
            model.apply(op, target)
            model.validate()
            count += 1
    assert count == len(events) ** 3 * 3

    # Table 3 decodes every valid encoding to a unique state.
    assert "EMPTY" in table3 and "PRESENT" in table3
    assert "DIRTY" in table3 and "STALE" in table3
