"""Policy comparison: the paper's ladder against external strategies.

Four registered consistency policies — A (the old system), F (the
paper's best), ``rlt`` (reverse-lookup table: exact synonym
invalidation, arXiv 2108.00444) and ``vespa`` (superpage-aware VIPT,
arXiv 1701.03499) — run the same traffic on the same machine:

* the three paper workloads plus the ``serve`` macro-workload (farmed
  ``JobSpec`` batches, cached like any other farm run);
* the Section 2.5 unaligned alias loop, where exact invalidation should
  pay for its lookups (the RLT gate);
* the superpage receive ring, where index-aligned superpages make alias
  management unnecessary (the VESPA gate).

The results land in ``BENCH_policies.json``.  The gates assert each
external strategy beats or matches F on its home ground while every
policy returns bit-identical data (checksums are part of the payload):
a policy that wins by corrupting memory fails the bench, not the
invariant it skipped.

Also runnable standalone (the CI policy job invocation)::

    PYTHONPATH=src python benchmarks/bench_policies.py
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_policies.json"

if str(REPO_ROOT / "src") not in sys.path:      # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.farm import Executor, JobSpec

POLICIES = ("A", "F", "rlt", "vespa")
PAPER_WORKLOADS = ("afs-bench", "latex-paper", "kernel-build")
SCALE = 1.0
SERVE_USERS = 400
MICRO_ITERATIONS = 4000


def _fresh_kernel(policy: str):
    from repro.analysis.experiments import evaluation_machine
    from repro.kernel.kernel import Kernel

    return Kernel(policy=policy, config=evaluation_machine())


def _micro_point(policy: str) -> dict:
    """The unaligned alias loop with the management bill itemized."""
    from repro.hw.stats import FaultKind
    from repro.workloads.microbench import run_alias_write_loop

    kernel = _fresh_kernel(policy)
    result = run_alias_write_loop(kernel, MICRO_ITERATIONS, aligned=False)
    counters = kernel.machine.counters
    lookup_cycles = (counters.rlt_lookups
                     * kernel.machine.config.cost.rlt_lookup)
    management = (counters.total_flush_cycles()
                  + counters.total_purge_cycles() + lookup_cycles)
    return {
        "policy": policy,
        "cycles": result.cycles,
        "consistency_faults": result.consistency_faults,
        "page_flushes": result.page_flushes,
        "page_purges": result.page_purges,
        "rlt_lookups": counters.rlt_lookups,
        "rlt_skipped_ops": counters.rlt_skipped_ops,
        "management_cycles": management,
    }


def _superpage_point(policy: str) -> dict:
    """The zero-copy receive ring on a superpage region."""
    from repro.analysis.experiments import run_workload
    from repro.hw.stats import FaultKind
    from repro.workloads.superpage import SuperpageRx

    kernel = _fresh_kernel(policy)
    workload = SuperpageRx(SCALE)
    metrics = run_workload(workload, policy, kernel=kernel)
    counters = kernel.machine.counters
    return {
        "policy": policy,
        "cycles": metrics.cycles,
        "consistency_faults": counters.faults[FaultKind.CONSISTENCY],
        "page_flushes": counters.total_flushes(),
        "page_purges": counters.total_purges(),
        "rlt_skipped_ops": counters.rlt_skipped_ops,
        "superpage_mappings": counters.superpage_mappings,
        "checksum": workload.checksum,
    }


def measure(executor: Executor | None = None) -> dict:
    executor = executor or Executor(jobs=1)

    specs = [JobSpec.workload(workload=w, policy=p, scale=SCALE)
             for w in PAPER_WORKLOADS for p in POLICIES]
    specs += [JobSpec.serve(cohort=0, users=SERVE_USERS, policy=p)
              for p in POLICIES]
    outcomes = executor.run(specs)
    assert all(o.ok for o in outcomes), \
        [str(o.failure) for o in outcomes if not o.ok]

    paper, serve = [], []
    for spec, outcome in zip(specs, outcomes):
        if spec.kind == "workload":
            # OpCost fields encode as [count, cycles] pairs (RunMetrics
            # .to_dict); index accordingly.
            m = outcome.payload["metrics"]
            paper.append({"workload": spec["workload"],
                          "policy": spec["policy"],
                          "cycles": m["cycles"],
                          "consistency_faults": m["consistency_faults"][0],
                          "flush_cycles": (m["dcache_flushes"][1]
                                           + m["icache_flushes"][1]),
                          "purge_cycles": (m["dcache_purges"][1]
                                           + m["icache_purges"][1])})
        else:
            r = outcome.payload["result"]
            serve.append({"policy": spec["policy"],
                          "cycles_per_request": r["cycles_per_request"],
                          "checksum": r["checksum"],
                          "requests": r["requests"]})

    return {
        "policies": list(POLICIES),
        "scale": SCALE,
        "paper_workloads": paper,
        "serve": serve,
        "micro_unaligned": [_micro_point(p) for p in POLICIES],
        "superpage": [_superpage_point(p) for p in POLICIES],
        "farm": executor.stats.as_dict(),
    }


def _by_policy(points: list[dict]) -> dict[str, dict]:
    return {p["policy"]: p for p in points}


def render(result: dict) -> str:
    lines = [
        "Policy comparison: the A-F ladder vs external strategies "
        "(rlt = exact invalidation, vespa = superpage-aware VIPT)",
        "",
        f"{'workload':>14} " + "".join(f"{p:>12}" for p in
                                       result["policies"]) + "   (cycles)",
    ]
    by_wl: dict[str, dict[str, int]] = {}
    for point in result["paper_workloads"]:
        by_wl.setdefault(point["workload"], {})[point["policy"]] = \
            point["cycles"]
    for workload, row in by_wl.items():
        lines.append(f"{workload:>14} "
                     + "".join(f"{row[p]:>12}" for p in result["policies"]))
    serve = _by_policy(result["serve"])
    lines.append(f"{'serve (c/req)':>14} "
                 + "".join(f"{serve[p]['cycles_per_request']:>12.1f}"
                           for p in result["policies"]))
    micro = _by_policy(result["micro_unaligned"])
    lines.append(f"{'micro (mgmt)':>14} "
                 + "".join(f"{micro[p]['management_cycles']:>12}"
                           for p in result["policies"]))
    sp = _by_policy(result["superpage"])
    lines.append(f"{'superpage-rx':>14} "
                 + "".join(f"{sp[p]['cycles']:>12}"
                           for p in result["policies"]))
    lines.append("")
    lines.append(
        f"superpage-rx consistency faults: "
        + ", ".join(f"{p}={sp[p]['consistency_faults']}"
                    for p in result["policies"])
        + f"; rlt skipped {micro['rlt']['rlt_skipped_ops']} micro ops "
          f"via {micro['rlt']['rlt_lookups']} lookups")
    return "\n".join(lines)


def check(result: dict) -> list[str]:
    """The CI gates; returns failure descriptions (empty == pass)."""
    failures = []
    micro = _by_policy(result["micro_unaligned"])
    sp = _by_policy(result["superpage"])
    serve = _by_policy(result["serve"])

    # RLT's home ground: unaligned sharing, where exact invalidation
    # must pay for its lookups — total management cycles at or below F.
    if micro["rlt"]["management_cycles"] > micro["F"]["management_cycles"]:
        failures.append(
            f"rlt management cycles ({micro['rlt']['management_cycles']}) "
            f"exceed F ({micro['F']['management_cycles']}) on the "
            f"unaligned alias loop")
    if micro["rlt"]["rlt_skipped_ops"] == 0:
        failures.append("rlt never skipped a flush/purge on the "
                        "unaligned alias loop")

    # VESPA's home ground: the superpage ring must run without a single
    # consistency fault and beat F outright.
    if sp["vespa"]["consistency_faults"] != 0:
        failures.append(
            f"vespa took {sp['vespa']['consistency_faults']} consistency "
            f"faults on the superpage ring (must be zero)")
    if sp["vespa"]["cycles"] >= sp["F"]["cycles"]:
        failures.append(
            f"vespa superpage cycles ({sp['vespa']['cycles']}) not below "
            f"F ({sp['F']['cycles']})")
    for policy in result["policies"]:
        if sp[policy]["superpage_mappings"] != 1:
            failures.append(f"{policy}: superpage region not entered")

    # Correctness rides along: every policy must produce identical data.
    for group, key in ((result["superpage"], "checksum"),
                       (result["serve"], "checksum")):
        values = {p[key] for p in group}
        if len(values) != 1:
            failures.append(
                f"policies disagree on {key}s: "
                + ", ".join(f"{p['policy']}={p[key]}" for p in group))

    # The external strategies must not regress the macro-workload.
    for name in ("rlt", "vespa"):
        ratio = (serve[name]["cycles_per_request"]
                 / serve["F"]["cycles_per_request"])
        if ratio > 1.02:
            failures.append(
                f"{name} serve cycles/request {ratio:.3f}x of F "
                f"(must stay within 2%)")
    return failures


def test_policies(once):
    from conftest import emit, farm_executor
    result = once(measure, farm_executor())
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    emit("policies", render(result))
    assert check(result) == []


if __name__ == "__main__":
    result = measure()
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    failures = check(result)
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    sys.exit(1 if failures else 0)
