"""SMP scaling: the Section 3.3 claim as a 1..8-CPU curve.

The multi-CPU ring workload (producer/consumer pairs split across CPUs,
deterministic round-robin schedule) runs at every CPU count from 1 to 8,
once with aligned sharing and once unaligned.  The curve lands in
``BENCH_smp.json`` at the repo root and demonstrates the paper's claim
that bus snooping is not a substitute for software alias management:

* *aligned* sharing rides the snoop protocol — coherence invalidations
  and write-backs grow with the CPU count while consistency faults stay
  flat and low;
* *unaligned* sharing never generates a single snoop hit (the aliases
  live in different cache sets), so every CPU keeps paying the same
  consistency faults and flush traffic as the uniprocessor.

The simulator charges all CPUs to one shared clock, so cycles/record is
a *cost* metric (per-record work including coherence and fault
handling), not parallel throughput.

Each point is one farm job (``JobSpec.smp``), so the sweep shards across
``REPRO_FARM_JOBS`` workers and caches like any other farm batch.  Also
runnable standalone (the CI smp job invocation)::

    PYTHONPATH=src python benchmarks/bench_smp_scaling.py
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_smp.json"

if str(REPO_ROOT / "src") not in sys.path:      # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.farm import Executor, JobSpec

CPU_COUNTS = tuple(range(1, 9))
RECORDS = 120
DATA_PAGES = 2


def measure(executor: Executor | None = None) -> dict:
    executor = executor or Executor(jobs=1)
    specs = [JobSpec.smp(n_cpus=n, aligned=aligned, records=RECORDS,
                         data_pages=DATA_PAGES)
             for n in CPU_COUNTS for aligned in (True, False)]
    outcomes = executor.run(specs)
    assert all(o.ok for o in outcomes), \
        [str(o.failure) for o in outcomes if not o.ok]
    points = [o.payload["result"] for o in outcomes]
    return {
        "workload": "smp-ring",
        "records_per_pair": RECORDS,
        "data_pages": DATA_PAGES,
        "cpu_counts": list(CPU_COUNTS),
        "points": points,
        "farm": executor.stats.as_dict(),
    }


def _by_n(result: dict, aligned: bool) -> dict[int, dict]:
    return {p["n_cpus"]: p for p in result["points"]
            if p["aligned"] is aligned}


def render(result: dict) -> str:
    aligned, unaligned = _by_n(result, True), _by_n(result, False)
    lines = [
        f"SMP scaling: ring workload, {result['records_per_pair']} "
        f"records/pair, {result['data_pages']} data pages "
        "(cycles/record is shared-clock cost, not throughput)",
        "",
        f"{'CPUs':>4} {'aligned c/r':>12} {'unalign c/r':>12} "
        f"{'al faults':>10} {'un faults':>10} {'al snoop inv':>13} "
        f"{'un snoop inv':>13}",
    ]
    for n in result["cpu_counts"]:
        a, u = aligned[n], unaligned[n]
        lines.append(
            f"{n:>4} {a['cycles_per_record']:>12.1f} "
            f"{u['cycles_per_record']:>12.1f} "
            f"{a['consistency_faults']:>10} {u['consistency_faults']:>10} "
            f"{a['coherence_invalidations']:>13} "
            f"{u['coherence_invalidations']:>13}")
    lines.append("")
    lines.append("snooping resolves aligned sharing; unaligned aliases "
                 "never snoop-hit and keep the uniprocessor's software "
                 "consistency cost on every CPU (Section 3.3)")
    return "\n".join(lines)


def check(result: dict) -> list[str]:
    """The CI gates; returns failure descriptions (empty == pass)."""
    aligned, unaligned = _by_n(result, True), _by_n(result, False)
    failures = []
    for n in result["cpu_counts"]:
        a, u = aligned[n], unaligned[n]
        if u["cycles_per_record"] < a["cycles_per_record"]:
            failures.append(
                f"N={n}: unaligned {u['cycles_per_record']:.1f} c/r "
                f"cheaper than aligned {a['cycles_per_record']:.1f}")
        if u["consistency_faults"] <= a["consistency_faults"]:
            failures.append(
                f"N={n}: unaligned consistency faults "
                f"({u['consistency_faults']}) not above aligned "
                f"({a['consistency_faults']})")
        if u["coherence_invalidations"] != 0:
            failures.append(
                f"N={n}: unaligned sharing snoop-hit "
                f"{u['coherence_invalidations']} times — aliases in "
                f"different sets must be invisible to the bus")
        if n >= 2 and a["coherence_invalidations"] == 0:
            failures.append(
                f"N={n}: aligned sharing generated no coherence traffic")
    return failures


def test_smp_scaling(once):
    from conftest import emit, farm_executor
    result = once(measure, farm_executor())
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    emit("smp_scaling", render(result))
    assert check(result) == []


if __name__ == "__main__":
    result = measure()
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    failures = check(result)
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    sys.exit(1 if failures else 0)
