"""Section 2.1 ablation: the single global address space model.

"An alternative model places all processes in a single, global virtual
address space ... This eliminates consistency problems due to sharing
..., but does not solve the problems that arise during the creation of
new mappings or DMA-based I/O."

The ablation runs afs-bench under three policies that share the lazy
skeleton: B (hierarchical, first-fit addresses), C (hierarchical with
the paper's alignment machinery) and G (global address space).  The
global model should match C's consistency-fault profile *without* any
address-selection code — sharing aligns by construction — while the DMA
obligations remain identical across all three.
"""

from conftest import SCALE, emit

from repro.analysis.experiments import (evaluation_machine, make_workload,
                                        run_workload)
from repro.vm.policy import CONFIG_B, CONFIG_C, CONFIG_GLOBAL


def test_global_address_space(once):
    def run_all():
        return [run_workload(make_workload("afs-bench", SCALE), policy,
                             config=evaluation_machine())
                for policy in (CONFIG_B, CONFIG_C, CONFIG_GLOBAL)]

    b, c, g = once(run_all)
    lines = [
        "Section 2.1 ablation: hierarchical vs global address space "
        "(afs-bench, lazy skeleton):",
        f"{'model':<26} {'time(s)':>9} {'cons faults':>12} "
        f"{'flushes':>8} {'DMA flushes':>12}",
        "-" * 72,
        f"{'B hierarchical first-fit':<26} {b.seconds:>9.4f} "
        f"{b.consistency_faults.count:>12} {b.page_flushes:>8} "
        f"{b.dma_read_flushes.count:>12}",
        f"{'C hierarchical aligned':<26} {c.seconds:>9.4f} "
        f"{c.consistency_faults.count:>12} {c.page_flushes:>8} "
        f"{c.dma_read_flushes.count:>12}",
        f"{'G global address space':<26} {g.seconds:>9.4f} "
        f"{g.consistency_faults.count:>12} {g.page_flushes:>8} "
        f"{g.dma_read_flushes.count:>12}",
    ]
    emit("ablation_global_as", "\n".join(lines))

    # Sharing-induced faults vanish under G, as under C.
    assert g.consistency_faults.count < b.consistency_faults.count / 5
    assert g.consistency_faults.count <= c.consistency_faults.count * 3
    # The DMA problem is model-independent.
    assert g.dma_read_flushes.count == b.dma_read_flushes.count \
        == c.dma_read_flushes.count
    # G needs none of C's machinery yet performs comparably.
    assert g.seconds <= b.seconds
