"""Section 5.1's cost observations about the 720's flush/purge hardware:

* a purge or flush of a resident page costs ~7x a non-resident one
  (Section 2.3: "up to seven times slower when the data is in the
  cache");
* the instruction cache purges in constant time regardless of contents;
* the 720 purges no faster than it flushes;
* counterfactual: with a single-cycle page purge, the three benchmarks
  would save ~0.33% of execution time (paper: 2.26s of 685.8s).
"""

import numpy as np
from conftest import SCALE, emit

from repro.analysis.experiments import run_table4
from repro.hw.cache import Cache
from repro.hw.params import CacheGeometry, CostModel, MachineConfig
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters, Reason


def measure_costs():
    geo = CacheGeometry(size=16 * 1024)
    mem = PhysicalMemory(16, 4096)
    clock = Clock()
    dcache = Cache(geo, mem, CostModel(), clock, Counters())
    icache = Cache(geo, mem, CostModel(), clock, Counters(),
                   name="icache", is_icache=True)

    # Resident vs non-resident data-cache purge.
    dcache.read_page(0, 0)
    t0 = clock.cycles
    dcache.purge_page_frame(0, 0, Reason.EXPLICIT)
    resident = clock.cycles - t0
    t0 = clock.cycles
    dcache.purge_page_frame(0, 0, Reason.EXPLICIT)
    absent = clock.cycles - t0

    # Flush of a clean resident page (same tag-check work as purge).
    dcache.read_page(0, 0)
    t0 = clock.cycles
    dcache.flush_page_frame(0, 0, Reason.EXPLICIT)
    flush_resident = clock.cycles - t0

    # Instruction-cache purge: full vs empty.
    icache.read_page(4096, 4096)
    t0 = clock.cycles
    icache.purge_page_frame(1, 4096, Reason.EXPLICIT)
    icache_full = clock.cycles - t0
    t0 = clock.cycles
    icache.purge_page_frame(1, 4096, Reason.EXPLICIT)
    icache_empty = clock.cycles - t0

    return resident, absent, flush_resident, icache_full, icache_empty


def test_flush_purge_costs(once):
    resident, absent, flush_resident, icache_full, icache_empty = once(
        measure_costs)

    ratio = resident / absent
    lines = [
        "Section 5.1 flush/purge cost characteristics (regenerated):",
        f"  dcache purge, page resident:   {resident:>6} cycles",
        f"  dcache purge, page absent:     {absent:>6} cycles "
        f"(ratio {ratio:.1f}x; paper: 'up to seven times slower')",
        f"  dcache flush, clean resident:  {flush_resident:>6} cycles "
        "(purge no cheaper than flush)",
        f"  icache purge, full:            {icache_full:>6} cycles",
        f"  icache purge, empty:           {icache_empty:>6} cycles "
        "(constant time)",
    ]

    assert ratio == 7.0
    assert resident >= flush_resident          # purge no faster than flush
    assert icache_full == icache_empty         # constant-time icache purge

    # Counterfactual single-cycle purge: rerun kernel-build at F with a
    # one-cycle page purge and compare (the paper estimates 0.33% saved).
    fast_purge = MachineConfig(
        phys_pages=320,
        cost=CostModel(purge_line_hit=0, purge_line_miss=0,
                       icache_purge_page=1))
    normal = run_table4(scale=SCALE,
                        workload_names=("kernel-build",))["kernel-build"][-1]
    fast = run_table4(scale=SCALE, config=fast_purge,
                      workload_names=("kernel-build",))["kernel-build"][-1]
    saved = normal.seconds - fast.seconds
    fraction = saved / normal.seconds
    lines.append(
        f"  single-cycle purge counterfactual (kernel-build, config F): "
        f"saves {saved:.4f}s = {100 * fraction:.2f}% "
        "(paper estimate: 0.33% over the three benchmarks)")
    emit("flush_purge_cost", "\n".join(lines))

    assert saved >= 0
    assert fraction < 0.05     # a small effect, as the paper reports
