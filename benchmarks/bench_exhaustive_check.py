"""Bounded exhaustive verification of the Figure 1 algorithm against the
Table 2 model.

Not a table from the paper — the machine-checked form of its Section 3.2
correctness argument: every event sequence up to the bound is enumerated
and the implementation is shown to perform every consistency action the
model requires (refinement), while both keep their structural invariants.
"""

from conftest import emit

from repro.core.exhaustive import check_all_sequences


def test_exhaustive_refinement(once):
    def run():
        return (check_all_sequences(num_cache_pages=2, depth=6),
                check_all_sequences(num_cache_pages=3, depth=4))

    deep_narrow, shallow_wide = once(run)
    lines = ["Bounded exhaustive refinement check (Figure 1 vs Table 2):"]
    for report in (deep_narrow, shallow_wide):
        lines.append(
            f"  {report.num_cache_pages} cache pages, depth {report.depth}: "
            f"{report.sequences} sequences, {report.steps} steps, "
            f"{len(report.violations)} violations")
    emit("exhaustive_check", "\n".join(lines))

    assert deep_narrow.ok
    assert shallow_wide.ok
    assert deep_narrow.sequences == 6 ** 6
    assert shallow_wide.sequences == 8 ** 4
