"""Application-level shared memory: the Section 2.2 observation made
quantitative.

"Even applications that share in sophisticated ways can generally do so
without specifying the address at which shared data must be mapped" —
and they should want to: a producer/consumer ring through VM-chosen
(aligned) addresses runs at cache speed, while the same ring at
conflicting addresses ping-pongs through consistency faults.  The Sun
uncached fallback sits in between: no faults, but every access at memory
speed — the right mechanism when sharing is genuinely unaligned and
fine-grained.
"""

from conftest import emit

from repro.analysis.experiments import evaluation_machine
from repro.kernel.kernel import Kernel
from repro.vm.policy import CONFIG_F, CONFIG_GLOBAL, by_name
from repro.workloads.shmem_ring import run_ring

RECORDS = 400


def test_shared_ring(once):
    def run_all():
        rows = {}
        rows["F, VM-aligned"] = run_ring(
            Kernel(policy=CONFIG_F, config=evaluation_machine()),
            records=RECORDS, aligned=True)
        rows["F, conflicting addresses"] = run_ring(
            Kernel(policy=CONFIG_F, config=evaluation_machine()),
            records=RECORDS, aligned=False)
        rows["Sun (uncached), conflicting"] = run_ring(
            Kernel(policy=by_name("Sun"), config=evaluation_machine()),
            records=RECORDS, aligned=False)
        rows["G (global AS)"] = run_ring(
            Kernel(policy=CONFIG_GLOBAL, config=evaluation_machine()),
            records=RECORDS, aligned=False)
        return rows

    rows = once(run_all)
    lines = [
        f"Shared-memory ring, {RECORDS} records producer->consumer:",
        f"{'configuration':<30} {'cyc/record':>11} {'cons faults':>12} "
        f"{'flushes':>8}",
        "-" * 66,
    ]
    for name, r in rows.items():
        lines.append(f"{name:<30} {r.cycles_per_record:>11.1f} "
                     f"{r.consistency_faults:>12} {r.page_flushes:>8}")
    emit("shmem_ring", "\n".join(lines))

    aligned = rows["F, VM-aligned"]
    conflicting = rows["F, conflicting addresses"]
    uncached = rows["Sun (uncached), conflicting"]
    global_as = rows["G (global AS)"]

    # Alignment is worth an order of magnitude at application level.
    assert conflicting.cycles_per_record > 5 * aligned.cycles_per_record
    # Uncached beats the trap path for genuinely unaligned sharing...
    assert uncached.cycles < conflicting.cycles
    # ...but loses to proper alignment (cache-speed accesses).
    assert aligned.cycles < uncached.cycles
    # The global model aligns by construction.
    assert global_as.consistency_faults <= 6
