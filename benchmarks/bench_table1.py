"""Table 1: old-vs-new elapsed time, page flushes, page purges.

Paper values (50 MHz HP 9000/720, full-size workloads):

    afs-bench     66.0s -> 59.4s  (10%)
    latex-paper    5.8s ->  5.5s  (5%)
    kernel-build 678.9s -> 620.9s (8.5%)

Our workloads run at a documented fraction of that scale; the shape
claims asserted here are: the new system wins every benchmark, the gains
fall in the paper's band, and the flush/purge counts collapse by an order
of magnitude.
"""

from conftest import SCALE, emit

from repro.analysis.experiments import run_table1
from repro.analysis.tables import render_table1
from repro.workloads import afs_bench, kernel_build, latex_bench

PAPER = {
    "afs-bench": afs_bench.PAPER,
    "latex-paper": latex_bench.PAPER,
    "kernel-build": kernel_build.PAPER,
}


def test_table1(once):
    rows = once(run_table1, scale=SCALE)
    emit("table1", render_table1(rows))

    for row in rows:
        paper = PAPER[row.workload]
        # Who wins: the new system, on every benchmark.
        assert row.new.seconds < row.old.seconds
        # By roughly what factor: within a factor of ~2.5 of the paper's
        # reported gain for that benchmark.
        assert paper.gain_percent / 2.5 < row.gain_percent \
            < paper.gain_percent * 2.5
        # The mechanism: cache-management operations collapse.
        assert row.new.page_flushes < row.old.page_flushes / 3
        assert row.new.page_purges <= row.old.page_purges
