"""Cache-hierarchy matrix: the architecture × policy grid, farm-swept.

Section 3.3's claim — set-associative L1s, victim caches, and physically
indexed L2s change *nothing* about the software consistency rules — is
verified functionally by the conformance matrix
(:mod:`repro.conformance.matrix`); this bench measures the same grid and
gates the *performance* facts that make the hierarchy model credible:

* **degeneracy** — the explicit ``1way`` geometry spec produces metrics
  bit-identical to no spec at all (the seed direct-mapped machine);
* **lower levels help, never hurt** — adding a victim cache or an L2 to
  a fixed L1 cannot increase total cycles (fills served at 4 or 10
  cycles instead of 20, everything else untouched);
* **the plumbing is live** — victim cells capture and hit, L2 cells
  fill and (without a victim absorbing the re-references) hit.

The L1 is held at 32 KiB so the 256 KiB L2 actually sits *below* it —
an L2 smaller than L1 never hits, which is itself a fact this bench
documents by construction.  Results land in ``BENCH_hierarchy.json``.
Each point is one farm job (``JobSpec.workload`` with a ``geometry``
spec), sharded across ``REPRO_FARM_JOBS`` workers and cached.  Also
runnable standalone (the CI hierarchy job invocation)::

    PYTHONPATH=src python benchmarks/bench_hierarchy_matrix.py
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_hierarchy.json"

if str(REPO_ROOT / "src") not in sys.path:      # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.farm import Executor, JobSpec

WORKLOAD = "latex-paper"
SCALE = 0.1
DCACHE_KIB = 32
POLICIES = ("A", "F")
WAYS = (1, 2, 4)
#: lower-hierarchy variants per L1 shape; None == bare L1 (the baseline
#: the help-never-hurt gate compares against).
LOWER = (None, "victim8", "l2:256k/4", "victim8+l2:256k/4")


def _spec_string(ways: int, lower: str | None) -> str | None:
    tokens = []
    if ways != 1:
        tokens.append(f"{ways}way")
    if lower is not None:
        tokens.append(lower)
    return "+".join(tokens) or None


def _grid() -> list[tuple[str, int, str | None]]:
    return [(policy, ways, lower)
            for policy in POLICIES for ways in WAYS for lower in LOWER]


def measure(executor: Executor | None = None) -> dict:
    executor = executor or Executor(jobs=1)
    grid = _grid()
    specs = [JobSpec.workload(workload=WORKLOAD, policy=policy,
                              scale=SCALE, dcache_kib=DCACHE_KIB,
                              geometry=_spec_string(ways, lower))
             for policy, ways, lower in grid]
    # The degeneracy pair: the explicit "1way" spec (a distinct cache
    # key) must reproduce the no-spec baseline bit for bit.
    degeneracy = [JobSpec.workload(workload=WORKLOAD, policy=policy,
                                   scale=SCALE, dcache_kib=DCACHE_KIB,
                                   geometry="1way")
                  for policy in POLICIES]
    outcomes = executor.run(specs + degeneracy)
    assert all(o.ok for o in outcomes), \
        [str(o.failure) for o in outcomes if not o.ok]
    points = []
    for (policy, ways, lower), outcome in zip(grid, outcomes):
        points.append({
            "policy": policy, "ways": ways, "lower": lower,
            "geometry": _spec_string(ways, lower),
            "cycles": outcome.payload["metrics"]["cycles"],
            "metrics": outcome.payload["metrics"],
            "hierarchy": outcome.payload.get("hierarchy"),
        })
    return {
        "workload": WORKLOAD,
        "scale": SCALE,
        "dcache_kib": DCACHE_KIB,
        "points": points,
        "degeneracy": [
            {"policy": policy, "metrics": outcome.payload["metrics"]}
            for policy, outcome in zip(POLICIES, outcomes[len(grid):])
        ],
        "farm": executor.stats.as_dict(),
    }


def _point(result: dict, policy: str, ways: int,
           lower: str | None) -> dict:
    for p in result["points"]:
        if (p["policy"], p["ways"], p["lower"]) == (policy, ways, lower):
            return p
    raise KeyError((policy, ways, lower))


def render(result: dict) -> str:
    lines = [
        f"Cache-hierarchy matrix: {result['workload']} at scale "
        f"{result['scale']}, {result['dcache_kib']} KiB L1",
        "",
        f"{'policy':>6} {'ways':>5} {'lower hierarchy':>18} "
        f"{'cycles':>10} {'vs bare L1':>10} {'victim h/c':>12} "
        f"{'L2 h/f':>12}",
    ]
    for policy in POLICIES:
        for ways in WAYS:
            base = _point(result, policy, ways, None)["cycles"]
            for lower in LOWER:
                p = _point(result, policy, ways, lower)
                h = p["hierarchy"] or {}
                delta = p["cycles"] - base
                lines.append(
                    f"{policy:>6} {ways:>5} {str(lower or '—'):>18} "
                    f"{p['cycles']:>10} {delta:>+10} "
                    f"{h.get('victim_hits', 0):>5}/"
                    f"{h.get('victim_captures', 0):<6} "
                    f"{h.get('l2_hits', 0):>5}/{h.get('l2_fills', 0):<6}")
    lines.append("")
    lines.append("a victim cache or L2 under the same L1 never costs "
                 "cycles, and the '1way' spec is bit-identical to the "
                 "seed machine (Section 3.3: same rules, cheaper fills)")
    return "\n".join(lines)


def check(result: dict) -> list[str]:
    """The CI gates; returns failure descriptions (empty == pass)."""
    failures = []
    # 1. Degeneracy: geometry="1way" == no geometry, every metric.
    for entry in result["degeneracy"]:
        baseline = _point(result, entry["policy"], 1, None)["metrics"]
        if entry["metrics"] != baseline:
            failures.append(
                f"policy {entry['policy']}: geometry='1way' metrics "
                f"differ from the no-geometry baseline")
    for policy in POLICIES:
        for ways in WAYS:
            base = _point(result, policy, ways, None)
            if base["hierarchy"] is not None:
                failures.append(
                    f"{policy}/{ways}way: bare L1 reports a hierarchy")
            for lower in LOWER[1:]:
                p = _point(result, policy, ways, lower)
                h = p["hierarchy"]
                where = f"{policy}/{p['geometry']}"
                # 2. Lower levels only ever make fills cheaper.
                if p["cycles"] > base["cycles"]:
                    failures.append(
                        f"{where}: {p['cycles']} cycles exceeds the bare "
                        f"L1's {base['cycles']}")
                if h is None:
                    failures.append(f"{where}: no hierarchy counters")
                    continue
                # 3. The configured levels are actually exercised.
                if "victim" in lower:
                    if h["victim_captures"] == 0:
                        failures.append(f"{where}: victim captured nothing")
                    # A victim cache absorbs *conflict* misses, which a
                    # 4-way L1 mostly eliminates (Jouppi's result) — only
                    # the low-associativity cells must actually hit.
                    if ways < 4 and h["victim_hits"] == 0:
                        failures.append(f"{where}: victim never hit")
                if "l2" in lower:
                    if h["l2_fills"] == 0:
                        failures.append(f"{where}: L2 filled nothing")
                    # With a victim cache in front, re-references are
                    # absorbed before reaching the L2 — only gate L2
                    # hits when the L2 is the first lower level.
                    if "victim" not in lower and h["l2_hits"] == 0:
                        failures.append(f"{where}: L2 never hit")
    return failures


def test_hierarchy_matrix(once):
    from conftest import emit, farm_executor
    result = once(measure, farm_executor())
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    emit("hierarchy_matrix", render(result))
    assert check(result) == []


if __name__ == "__main__":
    result = measure()
    JSON_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    failures = check(result)
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    sys.exit(1 if failures else 0)
