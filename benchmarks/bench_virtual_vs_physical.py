"""The paper's closing claim (Section 7), measured.

"An analysis of the operations required to ensure consistency reveals
that a virtually indexed cache need not incur significantly more
overhead than a physically indexed one."

This bench runs the three benchmarks twice: on the virtually indexed
machine under the full lazy system (configuration F), and on a
physically indexed machine of the same size (where alias management is
structurally unnecessary).  The claim holds if the virtually-indexed
overhead beyond the physically-indexed baseline is a small fraction of
execution time — the paper reports 0.22% for its three benchmarks.
"""

from conftest import SCALE, emit

from repro.analysis.experiments import run_workload, make_workload
from repro.hw.params import CacheGeometry, MachineConfig
from repro.vm.policy import CONFIG_F

WORKLOADS = ("afs-bench", "latex-paper", "kernel-build")


def vi_machine():
    return MachineConfig(phys_pages=320)


def pi_machine():
    return MachineConfig(
        dcache=CacheGeometry(size=256 * 1024, physically_indexed=True),
        icache=CacheGeometry(size=128 * 1024, physically_indexed=True),
        phys_pages=320)


def test_virtual_vs_physical(once):
    def run_all():
        vi = [run_workload(make_workload(n, SCALE), CONFIG_F,
                           config=vi_machine()) for n in WORKLOADS]
        pi = [run_workload(make_workload(n, SCALE), CONFIG_F,
                           config=pi_machine()) for n in WORKLOADS]
        return vi, pi

    vi, pi = once(run_all)
    lines = [
        "Section 7: virtually vs physically indexed, configuration F",
        f"{'benchmark':<14} {'VI time':>9} {'PI time':>9} {'VI extra':>9} "
        f"{'VI cons flt':>12} {'PI cons flt':>12}",
        "-" * 72,
    ]
    total_vi = total_pi = 0
    for v, p in zip(vi, pi):
        extra = 100 * (v.seconds - p.seconds) / p.seconds
        total_vi += v.cycles
        total_pi += p.cycles
        lines.append(f"{v.workload_name:<14} {v.seconds:>9.4f} "
                     f"{p.seconds:>9.4f} {extra:>8.2f}% "
                     f"{v.consistency_faults.count:>12} "
                     f"{p.consistency_faults.count:>12}")
    overall = 100 * (total_vi - total_pi) / total_pi
    lines.append(f"{'overall':<14} {'':>9} {'':>9} {overall:>8.2f}%   "
                 "(paper: VI overhead ~0.22% of execution)")
    emit("virtual_vs_physical", "\n".join(lines))

    for v, p in zip(vi, pi):
        # The VI machine is never much slower than the PI one...
        assert v.seconds <= p.seconds * 1.02
        # ...and the PI machine still pays the architecture-independent
        # costs (DMA, d->i copies).
        assert p.dma_read_flushes.count == v.dma_read_flushes.count
        assert p.d_to_i_copies == v.d_to_i_copies
    assert abs(overall) < 2.0
