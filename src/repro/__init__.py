"""repro: a reproduction of Wheeler & Bershad, *Consistency Management
for Virtually Indexed Caches* (ASPLOS 1992).

The package is layered bottom-up:

* :mod:`repro.hw` — the simulated hardware: virtually indexed, physically
  tagged write-back caches with flush/purge, TLB, physical memory, and a
  non-snooping DMA engine (the HP 9000 Series 700 model of Section 1.1).
* :mod:`repro.core` — the paper's contribution: the four-state consistency
  model (Table 2), the per-page state encoding (Table 3), the Figure 1
  ``CacheControl`` algorithm, the Section 3.3 architectural variants, and
  the staleness oracle that makes the correctness condition executable.
* :mod:`repro.vm` — the Mach-style virtual memory substrate: address
  spaces, VM objects with copy-on-write, page tables, the free page list,
  the policy configurations (A–F and the Table 5 systems), and the
  machine-dependent ``pmap`` hosting the policies.
* :mod:`repro.kernel` — the OS services that generate the evaluation's
  events: IPC page transfer, buffer cache with write-behind, file system,
  DMA disk, exec loader (data-to-instruction copies) and the user-level
  Unix server with shared syscall channels.
* :mod:`repro.workloads` — the three benchmark programs plus the
  Section 2.5 alignment microbenchmark and a random-operation stressor.
* :mod:`repro.analysis` — the experiment harness regenerating every table
  in the paper's evaluation.
* :mod:`repro.obs` — observability: the structured event bus, the
  hierarchical cycle-attribution profiler, and the JSON/Prometheus
  metrics exporter (see docs/observability.md).

Quickstart::

    from repro import Kernel, NEW_SYSTEM, OLD_SYSTEM
    from repro.workloads import afs_bench

    kernel = Kernel(policy=NEW_SYSTEM)
    afs_bench.run(kernel)
    print(kernel.elapsed_seconds, kernel.machine.counters.snapshot())
"""

from repro.errors import (ConfigurationError, KernelError, ProtectionError,
                          ReproError, StaleDataError)
from repro.hw.machine import Machine
from repro.hw.params import (CacheGeometry, CostModel, MachineConfig,
                             small_machine)
from repro.kernel.kernel import Kernel
from repro.obs import CycleProfiler, EventBus, profile_run
from repro.vm.policy import (CONFIG_GLOBAL, CONFIG_LADDER, NEW_SYSTEM,
                             OLD_SYSTEM, TABLE5_SYSTEMS, PolicyConfig,
                             by_name)

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry", "CostModel", "MachineConfig", "Machine", "Kernel",
    "PolicyConfig", "CONFIG_GLOBAL", "CONFIG_LADDER", "TABLE5_SYSTEMS", "OLD_SYSTEM",
    "NEW_SYSTEM", "by_name", "small_machine",
    "ReproError", "ConfigurationError", "KernelError", "ProtectionError",
    "StaleDataError",
    "EventBus", "CycleProfiler", "profile_run",
]
