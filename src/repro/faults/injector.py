"""The deterministic fault injector.

A :class:`FaultInjector` owns a seeded RNG and a :class:`FaultPlan` — a
set of :class:`FaultRule` entries, each naming one *injection point* from
the catalog below.  Components that host an injection point hold an
optional ``injector`` attribute (``None`` by default, so the hot path
costs one identity check) and ask :meth:`FaultInjector.fires` whether the
fault materializes this time.  Every firing appends an
:class:`InjectionRecord` to the audit trail with the simulated-clock
timestamp, so a chaos run can be replayed and every consequence
attributed.

Injection-point catalog (``detail`` keys each point records):

====================== ==================================================
``pmap.flush.drop``     a cache-page flush silently does nothing
                        (``ppage``, ``cache_page``)
``pmap.flush.duplicate``a flush runs twice (idempotency witness)
``pmap.purge.drop``     a cache-page purge silently does nothing
``pmap.purge.duplicate``a purge runs twice
``pmap.dma_read_prep.skip``   ``prepare_dma_read`` returns without
                        flushing (``ppage``)
``pmap.dma_write_prep.skip``  ``prepare_dma_write`` returns without
                        purging (``ppage``)
``dma.transfer.corrupt``a DMA transfer is corrupted on the wire and the
                        device's completion status reports it (``ppage``,
                        ``direction``)
``dma.transfer.partial``only a prefix of the page is transferred
                        (``ppage``, ``direction``, ``words``)
``disk.read.transient`` a disk read fails at the device (``file_id``,
                        ``page``, ``ppage``)
``disk.write.transient``a disk write fails at the device
``disk.read.missing``   a platter block has vanished (terminal)
``tlb.entry.corrupt``   a TLB entry is corrupted; parity catches it
                        (``asid``, ``vpage``)
``kernel.fault.stall``  the fault handler makes no progress once
                        (``asid``, ``vaddr``)
``smp.snoop.invalidate.drop``  a store's invalidation snoop never
                        reaches a resident peer copy (``ppage``, ``cpu``,
                        ``victim``)
``smp.snoop.writeback.stale``  a read snoop finds a dirty peer copy but
                        the write-back is lost: the reader fills from
                        stale memory (``ppage``, ``cpu``, ``victim``)
``smp.snoop.writeback.lost``  an invalidation snoop drops a dirty peer
                        copy *without* writing it back (``ppage``,
                        ``cpu``, ``victim``)
``smp.snoop.invalidate.misroute``  the invalidation is delivered to the
                        wrong equivalent line — one cache page over — so
                        the intended copy survives (``ppage``, ``cpu``,
                        ``victim``)
====================== ==================================================

Determinism: decisions are drawn from ``random.Random(plan.seed)`` in
simulation order, and rule activation windows are expressed in simulated
clock cycles.  Nothing reads wall time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hw.stats import Clock

# ---- the catalog -----------------------------------------------------------

#: injections that attack the consistency algorithm itself; the chaos
#: invariant is that each is oracle-detected or provably harmless
CONSISTENCY_POINTS = frozenset({
    "pmap.flush.drop", "pmap.flush.duplicate",
    "pmap.purge.drop", "pmap.purge.duplicate",
    "pmap.dma_read_prep.skip", "pmap.dma_write_prep.skip",
    "smp.snoop.invalidate.drop", "smp.snoop.writeback.stale",
    "smp.snoop.writeback.lost", "smp.snoop.invalidate.misroute",
})

#: the subset of consistency injections that can leave memory, cache, or
#: bookkeeping divergent (duplicates are pure idempotency witnesses)
DIVERGENCE_POINTS = frozenset({
    "pmap.flush.drop", "pmap.purge.drop",
    "pmap.dma_read_prep.skip", "pmap.dma_write_prep.skip",
    "smp.snoop.invalidate.drop", "smp.snoop.writeback.stale",
    "smp.snoop.writeback.lost", "smp.snoop.invalidate.misroute",
})

#: snoop-race injections: only consulted on a multiprocessor, and only
#: when a peer copy makes the race observable (so every firing is
#: consequential by construction)
SNOOP_POINTS = frozenset({
    "smp.snoop.invalidate.drop", "smp.snoop.writeback.stale",
    "smp.snoop.writeback.lost", "smp.snoop.invalidate.misroute",
})

#: injections absorbed by an explicit recovery path (retry, parity refill,
#: fault-loop retry); final state must be correct when the budget holds
RECOVERABLE_POINTS = frozenset({
    "dma.transfer.corrupt", "dma.transfer.partial",
    "disk.read.transient", "disk.write.transient",
    "tlb.entry.corrupt", "kernel.fault.stall",
})

#: terminal device failures: always detected, never recovered
TERMINAL_POINTS = frozenset({"disk.read.missing"})

ALL_POINTS = CONSISTENCY_POINTS | RECOVERABLE_POINTS | TERMINAL_POINTS

#: one-line description per point, for ``--list-points`` (kept in lockstep
#: with ALL_POINTS by an assertion test)
POINT_DESCRIPTIONS = {
    "pmap.flush.drop": "a cache-page flush silently does nothing",
    "pmap.flush.duplicate": "a flush runs twice (idempotency witness)",
    "pmap.purge.drop": "a cache-page purge silently does nothing",
    "pmap.purge.duplicate": "a purge runs twice (idempotency witness)",
    "pmap.dma_read_prep.skip": "prepare_dma_read returns without flushing",
    "pmap.dma_write_prep.skip": "prepare_dma_write returns without purging",
    "dma.transfer.corrupt": "a DMA transfer is corrupted on the wire "
                            "(device status reports it)",
    "dma.transfer.partial": "only a prefix of the page is transferred",
    "disk.read.transient": "a disk read fails at the device (retryable)",
    "disk.write.transient": "a disk write fails at the device (retryable)",
    "disk.read.missing": "a platter block has vanished (terminal)",
    "tlb.entry.corrupt": "a TLB entry is corrupted; parity catches it",
    "kernel.fault.stall": "the fault handler makes no progress once",
    "smp.snoop.invalidate.drop": "a store's invalidation snoop never "
                                 "reaches a resident peer copy",
    "smp.snoop.writeback.stale": "a read snoop loses the dirty peer "
                                 "write-back; the reader fills stale memory",
    "smp.snoop.writeback.lost": "an invalidation drops a dirty peer copy "
                                "without writing it back",
    "smp.snoop.invalidate.misroute": "the invalidation hits the wrong "
                                     "equivalent line; the real copy "
                                     "survives",
}


def classify_point(point: str) -> str:
    """The catalog class of a point, for display and reporting."""
    if point in SNOOP_POINTS:
        return "snoop-race"
    if point in CONSISTENCY_POINTS:
        return "consistency"
    if point in RECOVERABLE_POINTS:
        return "recoverable"
    if point in TERMINAL_POINTS:
        return "terminal"
    raise ConfigurationError(f"unknown injection point {point!r}")


# ---- plans -----------------------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault source.

    Args:
        point: injection-point name (must be in :data:`ALL_POINTS`).
        rate: probability the fault fires per opportunity.
        max_fires: cap on rate-triggered firings (burst continuations are
            not counted against it), None for unlimited.
        burst: consecutive opportunities that fail once triggered — e.g.
            ``burst=2`` on a disk transient makes the first retry fail too.
        start_cycles / stop_cycles: activation window on the simulated
            clock (half-open; ``stop_cycles=None`` means never stops).
    """

    point: str
    rate: float = 1.0
    max_fires: int | None = None
    burst: int = 1
    start_cycles: int = 0
    stop_cycles: int | None = None

    def __post_init__(self) -> None:
        if self.point not in ALL_POINTS:
            raise ConfigurationError(
                f"unknown injection point {self.point!r}; "
                f"known: {sorted(ALL_POINTS)}")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")
        if self.burst < 1:
            raise ConfigurationError("burst must be at least 1")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules drawn against it."""

    seed: int
    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``"point[:rate[:burst]],point..."`` into a plan.

        Example: ``"disk.read.transient:0.1:2,pmap.flush.drop:0.05"``.
        A bare point name means ``rate=1.0``.
        """
        rules = []
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            parts = item.split(":")
            point = parts[0]
            rate = float(parts[1]) if len(parts) > 1 else 1.0
            burst = int(parts[2]) if len(parts) > 2 else 1
            rules.append(FaultRule(point, rate=rate, burst=burst))
        if not rules:
            raise ConfigurationError(f"empty fault plan spec {spec!r}")
        return cls(seed=seed, rules=tuple(rules))


# ---- audit trail -----------------------------------------------------------


@dataclass
class InjectionRecord:
    """One fault the injector actually delivered."""

    seq: int                    # position in the audit trail
    point: str
    cycles: int                 # simulated clock at injection
    detail: dict = field(default_factory=dict)
    #: for divergence points: did the omission matter at injection time?
    #: (e.g. a dropped flush of an already-clean frame is harmless)
    consequential: bool | None = None
    #: how the system disposed of the fault: "recovered" (a retry or
    #: refill absorbed it), "detected" (a typed error propagated),
    #: "raised" (a transient error is in flight), "harmless" (provably
    #: no observable effect), or None for latent consistency faults whose
    #: disposition the harness settles at end of run
    resolution: str | None = None

    @property
    def ppage(self) -> int | None:
        return self.detail.get("ppage")

    def resolve(self, resolution: str) -> None:
        self.resolution = resolution

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        tail = f" -> {self.resolution}" if self.resolution else ""
        return f"#{self.seq} @{self.cycles} {self.point}({extra}){tail}"


class _RuleState:
    __slots__ = ("fires", "pending_burst")

    def __init__(self) -> None:
        self.fires = 0
        self.pending_burst = 0


# ---- the injector ----------------------------------------------------------


class FaultInjector:
    """Seeded, clock-scheduled fault source shared by the whole stack.

    The injector is *attached* to components (each gains an ``injector``
    attribute); detached components never pay more than a None check.
    ``enabled`` gates all points at once so a harness can scope injection
    to the measured phase (setup and end-of-run verification run clean).
    """

    def __init__(self, plan: FaultPlan, clock: Clock):
        self.plan = plan
        self.clock = clock
        self.rng = random.Random(plan.seed)
        self.enabled = True
        self.audit: list[InjectionRecord] = []
        # Observability: attach_kernel/attach pick up the machine's
        # EventBus so every delivered injection doubles as a trace event.
        self.bus = None
        self._rules_by_point: dict[str, list[tuple[FaultRule, _RuleState]]] = {}
        for rule in plan.rules:
            self._rules_by_point.setdefault(rule.point, []).append(
                (rule, _RuleState()))

    # ---- wiring ------------------------------------------------------------

    def attach_kernel(self, kernel) -> "FaultInjector":
        """Wire the injector into every injection point of a booted kernel."""
        kernel.fault_injector = self
        kernel.pmap.injector = self
        kernel.disk.injector = self
        kernel.machine.dma.injector = self
        kernel.machine.tlb.injector = self
        if getattr(kernel.machine, "cluster", None) is not None:
            kernel.machine.cluster.injector = self
        self.bus = kernel.machine.bus
        return self

    def attach(self, *, pmap=None, disk=None, dma=None, tlb=None,
               cluster=None, kernel=None) -> "FaultInjector":
        """Wire the injector into individual components (for rigs that
        assemble a machine without a full kernel)."""
        if pmap is not None:
            pmap.injector = self
        if cluster is not None:
            cluster.injector = self
        if disk is not None:
            disk.injector = self
        if dma is not None:
            dma.injector = self
        if tlb is not None:
            tlb.injector = self
        if kernel is not None:
            kernel.fault_injector = self
            self.bus = kernel.machine.bus
        elif self.bus is None:
            for component in (dma, tlb):
                if component is not None and getattr(component, "bus", None):
                    self.bus = component.bus
                    break
        return self

    # ---- scoping -----------------------------------------------------------

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    class _Paused:
        def __init__(self, injector: "FaultInjector"):
            self.injector = injector

        def __enter__(self):
            self.injector.enabled = False
            return self.injector

        def __exit__(self, *exc):
            self.injector.enabled = True
            return False

    def paused(self) -> "_Paused":
        """Context manager: suppress all injection inside the block."""
        return self._Paused(self)

    # ---- the decision ------------------------------------------------------

    def fires(self, point: str, **detail) -> InjectionRecord | None:
        """Decide whether ``point`` faults at this opportunity.

        Returns the audit record when the fault fires (the caller then
        *delivers* the fault — skips the operation, corrupts the data,
        raises the typed error) or None when the operation proceeds
        normally.
        """
        if not self.enabled:
            return None
        entries = self._rules_by_point.get(point)
        if not entries:
            return None
        now = self.clock.cycles
        for rule, state in entries:
            if state.pending_burst > 0:
                state.pending_burst -= 1
                return self._record(point, detail)
            if rule.max_fires is not None and state.fires >= rule.max_fires:
                continue
            if now < rule.start_cycles:
                continue
            if rule.stop_cycles is not None and now >= rule.stop_cycles:
                continue
            if rule.rate >= 1.0 or self.rng.random() < rule.rate:
                state.fires += 1
                state.pending_burst = rule.burst - 1
                return self._record(point, detail)
        return None

    def _record(self, point: str, detail: dict) -> InjectionRecord:
        record = InjectionRecord(seq=len(self.audit), point=point,
                                 cycles=self.clock.cycles, detail=detail)
        self.audit.append(record)
        if self.bus is not None and self.bus.enabled:
            self.bus.publish("injection", point=point,
                             injection_seq=record.seq, **detail)
        return record

    # ---- audit helpers -----------------------------------------------------

    def records(self, *points: str) -> list[InjectionRecord]:
        wanted = set(points)
        return [r for r in self.audit if not wanted or r.point in wanted]

    def consistency_frames(self) -> set[int]:
        """Frames targeted by consistency-affecting injections — the set
        any oracle violation must be attributable to."""
        return {r.ppage for r in self.audit
                if r.point in CONSISTENCY_POINTS and r.ppage is not None}

    def fired(self, point: str) -> int:
        return sum(1 for r in self.audit if r.point == point)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FaultInjector(seed={self.plan.seed}, "
                f"rules={len(self.plan.rules)}, fired={len(self.audit)})")
