"""Deterministic fault injection and chaos testing.

The subsystem has two halves:

* :mod:`repro.faults.injector` — a seeded, deterministic
  :class:`FaultInjector` with named injection points registered across the
  stack (pmap cache operations, DMA preparation and transfer, disk I/O,
  TLB entries, the kernel fault handler).  Components query the injector
  at their injection points; every decision is drawn from an injected RNG
  and scheduled against the simulated clock — never wall time — so a
  (plan, seed, workload) triple replays exactly.
* :mod:`repro.faults.harness` — the chaos harness: runs witness workloads
  under randomized fault plans and checks the core invariant that every
  consistency-affecting injection is either observed by the staleness
  oracle or provably harmless, and that transient device faults are
  absorbed by the kernel's retry paths with correct final state.

See ``docs/fault-injection.md`` for the injection-point catalog, the plan
format, and the determinism guarantees.
"""

from repro.faults.injector import (ALL_POINTS, CONSISTENCY_POINTS,
                                   DIVERGENCE_POINTS, POINT_DESCRIPTIONS,
                                   RECOVERABLE_POINTS, SNOOP_POINTS,
                                   TERMINAL_POINTS, FaultInjector, FaultPlan,
                                   FaultRule, InjectionRecord, classify_point)
from repro.faults.harness import (ChaosReport, build_plan, run_chaos,
                                  run_chaos_suite, verify_report)

__all__ = [
    "FaultInjector", "FaultPlan", "FaultRule", "InjectionRecord",
    "ALL_POINTS", "CONSISTENCY_POINTS", "DIVERGENCE_POINTS",
    "RECOVERABLE_POINTS", "SNOOP_POINTS", "TERMINAL_POINTS",
    "POINT_DESCRIPTIONS", "classify_point",
    "ChaosReport", "build_plan", "run_chaos", "run_chaos_suite",
    "verify_report",
]
