"""The chaos harness: detected-or-harmless, empirically.

A chaos run boots a kernel with the staleness oracle in *recording* mode,
attaches a seeded :class:`~repro.faults.injector.FaultInjector`, and
drives the randomized alias/remap/DMA stressor (the witness workload of
the no-stale-data property tests) through a fault plan.  The harness then
checks the core invariant the paper's correctness condition demands under
faults:

**every consistency-affecting injection is observed by the oracle or
provably harmless, and every transient device fault is absorbed by a
recovery path — a run never silently completes with stale data.**

Concretely, :func:`verify_report` asserts, per run:

1. *typed failure only* — a run either completes or ends in a
   :class:`~repro.errors.ReproError` subclass (fail-stop detection);
2. *attribution* — every oracle violation lands on a frame some
   consistency injection targeted (the system itself adds no staleness);
   likewise every divergence the lockstep conformance shadow records
   lands on a frame a divergence-creating injection targeted — with no
   such injection, the shadow must agree with the Table 2 model exactly
   (see docs/conformance.md for the conformance/chaos interaction);
3. *immediate detection* — a skipped DMA-read preparation that was
   consequential (memory truly lagged program order) is observed by the
   very next device read, unless that transfer itself failed and was
   retried after a clean preparation;
4. *recovery correctness* — when no divergence-creating injection fired,
   the run must be violation-free, and once it completes the platter and
   memory contents of every file block match program order exactly
   (checked word-for-word after a clean sync);
5. *visible recovery cost* — absorbed retries appear in the counters and
   their backoff is charged to the simulated clock.

Determinism: a (seed, preset, steps) triple fully determines the run —
plans are drawn from ``random.Random(seed)``, the stressor from its own
seeded RNG, and all scheduling is in simulated cycles.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.conformance.lockstep import (ConformanceMonitor,
                                        SmpConformanceMonitor)
from repro.errors import ConfigurationError, ReproError
from repro.faults.injector import (CONSISTENCY_POINTS, DIVERGENCE_POINTS,
                                   SNOOP_POINTS, FaultInjector, FaultPlan,
                                   FaultRule)
from repro.hw.params import MachineConfig, small_machine
from repro.kernel.kernel import Kernel
from repro.policy import ConsistencyPolicy
from repro.vm.policy import NEW_SYSTEM, PolicyConfig
from repro.workloads.random_ops import AliasStressor

#: preset name -> (point, base rate, max burst) triples the plan builder
#: samples from.  Bursts stay below the disk's four-attempt budget so
#: transient faults are recoverable by construction; the harness also
#: exercises exhaustion separately via dedicated unit tests.
PRESETS: dict[str, tuple[tuple[str, float, int], ...]] = {
    "control": (),
    "transient": (
        ("disk.read.transient", 0.10, 2),
        ("disk.write.transient", 0.10, 2),
        ("dma.transfer.corrupt", 0.06, 1),
        ("dma.transfer.partial", 0.06, 1),
    ),
    "consistency": (
        ("pmap.flush.drop", 0.05, 1),
        ("pmap.flush.duplicate", 0.05, 1),
        ("pmap.purge.drop", 0.05, 1),
        ("pmap.purge.duplicate", 0.05, 1),
        ("pmap.dma_read_prep.skip", 0.15, 1),
        ("pmap.dma_write_prep.skip", 0.15, 1),
    ),
    "recovery": (
        ("tlb.entry.corrupt", 0.02, 1),
        ("kernel.fault.stall", 0.10, 3),
        ("dma.transfer.corrupt", 0.06, 2),
    ),
    "mixed": (
        ("disk.read.transient", 0.06, 2),
        ("disk.write.transient", 0.06, 2),
        ("dma.transfer.corrupt", 0.04, 1),
        ("dma.transfer.partial", 0.04, 1),
        ("pmap.flush.drop", 0.04, 1),
        ("pmap.purge.drop", 0.04, 1),
        ("pmap.flush.duplicate", 0.04, 1),
        ("pmap.purge.duplicate", 0.04, 1),
        ("pmap.dma_read_prep.skip", 0.10, 1),
        ("pmap.dma_write_prep.skip", 0.10, 1),
        ("tlb.entry.corrupt", 0.02, 1),
        ("kernel.fault.stall", 0.08, 3),
    ),
    # Snoop races only matter on a cluster (the points are consulted per
    # resident/dirty peer copy, so a uniprocessor run leaves them
    # silent).  Rates are high relative to the device presets because
    # every consultation is consequential by construction — the cluster
    # only asks the injector when a racing copy actually exists.
    "snoop": (
        ("smp.snoop.invalidate.drop", 0.15, 2),
        ("smp.snoop.writeback.stale", 0.20, 2),
        ("smp.snoop.writeback.lost", 0.15, 2),
        ("smp.snoop.invalidate.misroute", 0.15, 2),
    ),
}


def build_plan(seed: int, preset: str = "mixed") -> FaultPlan:
    """Draw a randomized fault plan: which points of the preset are armed,
    at what rate and burst, is itself decided by the seed."""
    if preset not in PRESETS:
        return FaultPlan.parse(preset, seed=seed)
    rng = random.Random(seed)
    rules = []
    for point, base_rate, max_burst in PRESETS[preset]:
        if rng.random() < 0.25:
            continue  # this run leaves the point dormant
        rate = base_rate * (0.5 + rng.random())
        burst = rng.randint(1, max_burst)
        rules.append(FaultRule(point, rate=min(rate, 1.0), burst=burst))
    return FaultPlan(seed=seed, rules=tuple(rules))


def chaos_machine(**overrides) -> MachineConfig:
    """A compact machine for chaos runs: small caches so aliases collide
    often, enough frames that the stressor can churn mappings."""
    return small_machine(phys_pages=overrides.pop("phys_pages", 192),
                         **overrides)


@dataclass
class ChaosReport:
    """Everything one chaos run produced, plus the verification verdict."""

    seed: int
    preset: str
    steps: int
    completed: bool
    error: str | None                 # "ErrorType: message" when fail-stop
    injections: int
    resolutions: Counter = field(default_factory=Counter)
    points_fired: Counter = field(default_factory=Counter)
    violations: int = 0
    unattributed_violations: int = 0
    conform_events: int = 0           # events the lockstep shadow replayed
    conform_divergences: int = 0
    conform_unattributed: int = 0
    n_cpus: int = 1
    #: cpu -> divergence count from the per-CPU lockstep shadows (empty on
    #: a uniprocessor run, and for reports from before the SMP harness)
    conform_per_cpu: dict = field(default_factory=dict)
    cycles: int = 0
    disk_retries: int = 0
    tlb_parity_recoveries: int = 0
    frames_quarantined: int = 0
    oracle_checks: int = 0
    deep_verified: bool = False       # final platter/memory sweep ran clean
    failures: list[str] = field(default_factory=list)
    #: per-kind counts from the structured event bus (only populated when
    #: the run was traced; injections and divergences appear here too)
    event_summary: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        """A JSON-safe encoding that :meth:`from_dict` inverts exactly —
        the farm ships chaos reports across process and cache boundaries,
        and the serial-vs-parallel equivalence tests compare reports via
        this encoding."""
        out = asdict(self)
        out["resolutions"] = dict(self.resolutions)
        out["points_fired"] = dict(self.points_fired)
        # JSON turns int keys into strings; encode as strings here so the
        # dict survives a dumps/loads round-trip unchanged.
        out["conform_per_cpu"] = {str(k): v
                                  for k, v in self.conform_per_cpu.items()}
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosReport":
        data = dict(data)
        data["resolutions"] = Counter(data.get("resolutions", {}))
        data["points_fired"] = Counter(data.get("points_fired", {}))
        data["failures"] = list(data.get("failures", []))
        data["event_summary"] = dict(data.get("event_summary", {}))
        data["conform_per_cpu"] = {int(k): v for k, v in
                                   data.get("conform_per_cpu", {}).items()}
        return cls(**data)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "ok" if self.ok else "FAIL(" + "; ".join(self.failures) + ")"
        end = "completed" if self.completed else f"stopped[{self.error}]"
        return (f"seed={self.seed} preset={self.preset} {end} "
                f"inj={self.injections} viol={self.violations} "
                f"conform={self.conform_divergences} "
                f"retries={self.disk_retries} quarantined="
                f"{self.frames_quarantined} cycles={self.cycles} {status}")


def run_chaos(seed: int, preset: str = "mixed", steps: int = 200,
              n_tasks: int = 3, n_pages: int = 4,
              policy: PolicyConfig | ConsistencyPolicy | str = NEW_SYSTEM,
              config: MachineConfig | None = None,
              conform: bool = True, trace: bool = False,
              n_cpus: int = 1) -> ChaosReport:
    """One seeded chaos run over the witness workload; returns the report
    with invariant verification already applied.  ``policy`` accepts a
    flag configuration, a registered policy name, or a
    :class:`~repro.policy.ConsistencyPolicy` instance — external
    strategies (``rlt``, ``vespa``) run under the same invariant.  With ``conform`` the
    lockstep conformance shadow records divergences alongside the value
    oracle (see invariant 2 for how they are attributed).  With ``trace``
    the structured event bus records the run, so every injection and
    divergence is also a clock-stamped trace event
    (``report.event_summary``).  With ``n_cpus > 1`` the run boots a
    :class:`~repro.hw.smp.CoherentCluster`, the stressor's tasks spread
    over the CPUs, the ``smp.snoop.*`` race points arm, and the
    conformance shadow becomes one lockstep oracle *per CPU*
    (divergences name the CPU that diverged)."""
    plan = build_plan(seed, preset)
    kernel = Kernel(policy=policy,
                    config=config or chaos_machine(n_cpus=n_cpus),
                    buffer_cache_pages=24)
    cluster = kernel.machine.cluster
    n_cpus = 1 if cluster is None else len(cluster)
    oracle = kernel.machine.oracle
    oracle.record_only = True
    if trace:
        kernel.machine.bus.enable()
    monitor = None
    if conform:
        if n_cpus > 1:
            monitor = SmpConformanceMonitor(kernel, record_only=True,
                                            max_events=512).attach()
        else:
            monitor = ConformanceMonitor(kernel, record_only=True,
                                         max_events=512).attach()
    injector = FaultInjector(plan, kernel.machine.clock)
    injector.attach_kernel(kernel)

    # Setup runs clean: faults are scoped to the measured chaos window.
    with injector.paused():
        stressor = AliasStressor(kernel, n_tasks=n_tasks, n_pages=n_pages,
                                 seed=seed)

    completed, error = True, None
    try:
        stressor.run(steps)
    except ReproError as exc:
        completed, error = False, f"{type(exc).__name__}: {exc}"

    # End-of-run verification also runs clean.
    injector.disable()
    deep_verified = False
    if completed:
        kernel.shutdown()
        deep_verified = _deep_verify_possible(injector)
        if deep_verified:
            _verify_final_state(kernel)
    if monitor is not None:
        monitor.detach()

    counters = kernel.machine.counters
    report = ChaosReport(
        seed=seed, preset=preset, steps=steps, completed=completed,
        error=error, injections=len(injector.audit),
        resolutions=Counter(r.resolution or "latent"
                            for r in injector.audit),
        points_fired=Counter(r.point for r in injector.audit),
        violations=len(oracle.violations),
        conform_events=monitor.events_seen if monitor else 0,
        conform_divergences=len(monitor.divergences) if monitor else 0,
        n_cpus=n_cpus,
        conform_per_cpu=(monitor.per_cpu_divergences()
                         if isinstance(monitor, SmpConformanceMonitor)
                         else {}),
        cycles=kernel.machine.clock.cycles,
        disk_retries=counters.disk_retries,
        tlb_parity_recoveries=counters.tlb_parity_recoveries,
        frames_quarantined=counters.frames_quarantined,
        oracle_checks=oracle.checks,
        deep_verified=deep_verified,
        event_summary=kernel.machine.bus.summary() if trace else {},
    )
    verify_report(report, injector, kernel, monitor)
    return report


def _deep_verify_possible(injector: FaultInjector) -> bool:
    """The word-for-word final sweep only applies when no injection could
    have legitimately diverged state (dropped flushes/purges and skipped
    preparations leave latent divergence by design)."""
    return not any(r.point in DIVERGENCE_POINTS for r in injector.audit)


def _verify_final_state(kernel: Kernel) -> None:
    """After a clean sync: every resident file block's frame must match
    program order in memory, and the platter must hold the same words."""
    oracle = kernel.machine.oracle
    memory = kernel.machine.memory
    for (file_id, page), entry in kernel.buffer_cache._entries.items():
        expected = oracle.expected_page(memory.page_base(entry.ppage))
        got = memory.read_page(entry.ppage)
        if not np.array_equal(got, expected):
            raise ReproError(
                f"final memory sweep: frame {entry.ppage} of block "
                f"({file_id}, {page}) diverges from program order")
        if kernel.disk.has_block(file_id, page) and not entry.dirty:
            platter = kernel.disk.block(file_id, page)
            if not np.array_equal(platter, expected):
                raise ReproError(
                    f"final platter sweep: block ({file_id}, {page}) "
                    f"diverges from program order")


def verify_report(report: ChaosReport, injector: FaultInjector,
                  kernel: Kernel,
                  monitor: ConformanceMonitor | None = None) -> ChaosReport:
    """Apply the detected-or-harmless invariant; failures are appended to
    ``report.failures`` (empty list == the run upholds the invariant)."""
    oracle = kernel.machine.oracle

    # 2. Attribution: the system itself must add no staleness.
    frames = injector.consistency_frames()
    page_size = kernel.machine.page_size
    for violation in oracle.violations:
        if violation.paddr // page_size not in frames:
            report.unattributed_violations += 1
            report.failures.append(
                f"violation at paddr {violation.paddr:#x} not attributable "
                f"to any injected consistency fault")

    # 2b. Conformance attribution: every divergence the lockstep shadow
    # recorded must land on a frame a divergence-creating injection
    # targeted; with no such injection the shadow must agree exactly.
    if monitor is not None:
        diverged_frames = {r.ppage for r in injector.audit
                           if r.point in DIVERGENCE_POINTS
                           and r.ppage is not None}
        for divergence in monitor.divergences:
            if divergence.frame not in diverged_frames:
                report.conform_unattributed += 1
                where = ("" if divergence.cpu is None
                         else f"cpu{divergence.cpu}: ")
                report.failures.append(
                    f"{where}conformance divergence on frame "
                    f"{divergence.frame} ({divergence.kind}) not "
                    f"attributable to any injected divergence-creating "
                    f"fault")

    # 2c. Snoop races are consequential by construction (the cluster only
    # consults the injector when a peer copy is resident or dirty), so
    # each record is settled here: *observed* when the value oracle or a
    # per-CPU lockstep shadow caught the frame, else *harmless* — the
    # oracle checks every read, so silence means no stale value was ever
    # delivered (the racing line was evicted, overwritten, or re-snooped
    # before anyone read through it).
    observed_frames = ({v.paddr // page_size for v in oracle.violations}
                       | ({d.frame for d in monitor.divergences}
                          if monitor is not None else set()))
    for record in injector.audit:
        if record.point in SNOOP_POINTS and record.resolution is None:
            record.resolve("observed" if record.ppage in observed_frames
                           else "harmless")

    # 3. Immediate detection: a consequential skipped DMA-read preparation
    # is observed by the device read that follows it — unless that very
    # transfer failed (and the retry re-ran a clean preparation).
    violated_frames = {v.paddr // page_size for v in oracle.violations
                       if v.kind == "dma-read"}
    for record in injector.records("pmap.dma_read_prep.skip"):
        if not record.consequential:
            record.resolution = record.resolution or "harmless"
            continue
        transfer_failed_later = any(
            r.point.startswith("dma.transfer.") and r.ppage == record.ppage
            and r.seq > record.seq for r in injector.audit)
        if record.ppage in violated_frames:
            record.resolution = "observed"
        elif transfer_failed_later:
            record.resolution = "masked-by-retry"
        else:
            report.failures.append(
                f"consequential dma_read_prep.skip on frame {record.ppage} "
                f"was never observed by the oracle")

    # 4. Recovery correctness: without divergence injections the run must
    # be violation-free (duplicates, transients, TLB parity and fault
    # stalls are all absorbed) and, when it completed, deep-verified.
    if _deep_verify_possible(injector):
        if report.violations:
            report.failures.append(
                "violations recorded although no divergence-creating "
                "fault was injected")
        if report.completed and not report.deep_verified:
            report.failures.append("final state sweep did not run")

    # 1. Typed failure only is enforced structurally: run_chaos catches
    # ReproError; anything else propagates out of the harness.

    # Re-count dispositions: verification above settles resolutions
    # (snoop races, skipped preparations) after the report was built.
    report.resolutions = Counter(r.resolution or "latent"
                                 for r in injector.audit)
    return report


def run_chaos_suite(seeds, preset: str = "mixed", steps: int = 200,
                    jobs: int = 1, executor=None, n_cpus: int = 1,
                    **kwargs) -> list[ChaosReport]:
    """Run one chaos run per seed; every report must uphold the invariant
    (callers assert ``all(r.ok for r in reports)``).

    With ``jobs > 1`` (or an explicit farm ``executor``) the suite runs
    as a sharded spec batch on the simulation farm — identical reports
    in seed order, sharding and caching per the executor — which only
    covers the (seed, preset, steps, n_cpus, policy-by-name) surface:
    custom kernels or machines (``**kwargs``) are not
    content-addressable and stay serial.
    """
    if jobs <= 1 and executor is None:
        return [run_chaos(seed, preset=preset, steps=steps, n_cpus=n_cpus,
                          **kwargs)
                for seed in seeds]
    policy = kwargs.pop("policy", None)
    if policy is not None and not isinstance(policy, str):
        raise ConfigurationError(
            "the farmed chaos suite shards policies by registered name; "
            "pass a string (or run jobs=1 for a policy object)")
    if kwargs:
        raise ConfigurationError(
            f"the farmed chaos suite shards only (seed, preset, steps, "
            f"n_cpus, policy); run jobs=1 for custom arguments "
            f"{sorted(kwargs)}")
    from repro.farm import Executor, farm_chaos_suite

    if executor is None:
        executor = Executor(jobs=jobs)
    return farm_chaos_suite(seeds, preset, steps, executor, n_cpus=n_cpus,
                            policy=policy)


def render_suite(reports: list[ChaosReport]) -> str:
    """A compact text summary of a chaos suite (the CLI's output)."""
    lines = []
    by_preset: dict[str, list[ChaosReport]] = {}
    for report in reports:
        by_preset.setdefault(report.preset, []).append(report)
    total_failures = 0
    for preset, group in sorted(by_preset.items()):
        injections = sum(r.injections for r in group)
        violations = sum(r.violations for r in group)
        unattributed = sum(r.unattributed_violations
                           + r.conform_unattributed for r in group)
        conform = sum(r.conform_divergences for r in group)
        retries = sum(r.disk_retries for r in group)
        quarantined = sum(r.frames_quarantined for r in group)
        parity = sum(r.tlb_parity_recoveries for r in group)
        completed = sum(1 for r in group if r.completed)
        failed = [r for r in group if not r.ok]
        total_failures += len(failed)
        lines.append(
            f"{preset:>12}: {len(group):4d} plans, {completed:4d} completed, "
            f"{injections:5d} injections, {violations:4d} oracle-observed, "
            f"{conform:4d} conform-observed ({unattributed} unattributed), "
            f"{retries:4d} retries, "
            f"{parity:3d} TLB refills, {quarantined:2d} quarantined, "
            f"{len(failed)} invariant failures")
        for report in failed:
            lines.append(f"              FAIL {report}")
    verdict = ("all plans detected-or-harmless" if total_failures == 0
               else f"{total_failures} PLANS VIOLATED THE INVARIANT")
    lines.append(f"{'verdict':>12}: {verdict}")
    return "\n".join(lines)
