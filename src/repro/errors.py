"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.

Two orthogonal distinctions matter to the fault-injection subsystem:

* *transient* vs *terminal* — a :class:`TransientError` models a device
  fault that a bounded retry may clear (a busy disk, a corrupted DMA
  transfer caught by the device's completion status); everything else is
  terminal for the operation that raised it.
* *detected* vs *silent* — every error in this hierarchy is a detection.
  The chaos harness treats a run that ends in a typed ``ReproError`` as a
  *detected* fault; only a run that completes with stale data and no
  record anywhere would violate the paper's correctness condition.
"""

from __future__ import annotations


def _render_context(context: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in context.items() if v is not None)


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class AddressError(ReproError):
    """An address was out of range or mis-aligned for the requested operation."""


class ProtectionError(ReproError):
    """An access violated the currently installed protection and could not be
    resolved by the fault handler."""


class StaleDataError(ReproError):
    """The staleness oracle observed the memory system transferring a stale
    value to the CPU or a DMA device.

    This is the executable form of the paper's correctness condition: a
    correct consistency policy must never cause this error to be raised.
    """

    def __init__(self, message: str, *, paddr: int | None = None,
                 expected: int | None = None, actual: int | None = None):
        super().__init__(message)
        self.paddr = paddr
        self.expected = expected
        self.actual = actual


class ConformanceError(ReproError):
    """The lockstep conformance engine observed the simulator diverge from
    the Table 2 model (see docs/conformance.md).

    Either the implementation performed an access for which the model still
    required a consistency action (``kind="missed-action"``), or the
    bookkeeping state contradicts the model in a dangerous direction
    (``kind="state-divergence"``: the model says a line is STALE or DIRTY
    and the implementation disagrees).  Carries the observed event prefix
    leading up to the divergence so the failure can be replayed.
    """

    def __init__(self, message: str, *, kind: str | None = None,
                 frame: int | None = None, cache_page: int | None = None,
                 event_index: int | None = None, cpu: int | None = None,
                 prefix: tuple = ()):
        rendered = _render_context({"kind": kind, "frame": frame,
                                    "cache_page": cache_page,
                                    "event": event_index, "cpu": cpu})
        super().__init__(f"{message} [{rendered}]" if rendered else message)
        self.kind = kind
        self.frame = frame
        self.cache_page = cache_page
        self.event_index = event_index
        self.cpu = cpu
        #: the observed events leading up to (and including) the divergence;
        #: may be a bounded tail when the monitor caps its event log
        self.prefix = tuple(prefix)


class FaultLoopError(ReproError):
    """A memory access kept faulting after repeated resolution attempts,
    indicating a broken consistency policy or fault handler.

    Carries the diagnostics of the stuck access so the failure can be
    attributed without reproducing it: the address space, virtual address,
    access kind, and how many resolution attempts the hardware made.
    """

    def __init__(self, message: str, *, asid: int | None = None,
                 vaddr: int | None = None, access: str | None = None,
                 attempts: int | None = None):
        self.context = {"asid": asid, "vaddr": vaddr, "access": access,
                        "attempts": attempts}
        rendered = _render_context({"asid": asid,
                                    "vaddr": hex(vaddr) if vaddr is not None
                                    else None,
                                    "access": access, "attempts": attempts})
        super().__init__(f"{message} [{rendered}]" if rendered else message)
        self.asid = asid
        self.vaddr = vaddr
        self.access = access
        self.attempts = attempts


class OutOfMemoryError(ReproError):
    """The physical free page list was exhausted."""


class KernelError(ReproError):
    """An operating-system level operation failed (bad task, bad file...).

    Optional keyword context (e.g. ``file_id=3, page=7``) is rendered into
    the message and kept on :attr:`context` for structured handling.
    """

    def __init__(self, message: str, **context):
        rendered = _render_context(context)
        super().__init__(f"{message} [{rendered}]" if rendered else message)
        self.context = context


class TransientError(ReproError):
    """A device-level fault that a bounded retry may clear.

    Raisers attach enough context for the retry loop to re-issue the
    operation; the loop charges each retry's backoff to the simulated
    clock so recovery shows up in cycle counts.
    """

    def __init__(self, message: str, **context):
        rendered = _render_context(context)
        super().__init__(f"{message} [{rendered}]" if rendered else message)
        self.context = context
        #: attempts consumed when the retry budget was exhausted (set by
        #: the retry loop before re-raising), else None
        self.attempts: int | None = None
        #: the audit record of the injection that caused this error, when
        #: fault injection is active (lets the retry loop resolve it)
        self.record = None


class DiskIOError(TransientError, KernelError):
    """A disk read or write failed at the device (busy, media CRC...).

    Transient: the disk's retry loop re-issues the transfer with backoff.
    If the retry budget is exhausted the last instance propagates with
    :attr:`TransientError.attempts` set.
    """


class DmaTransferError(TransientError):
    """A DMA transfer failed verification at completion (corrupted or
    partial data, as reported by the device's completion status).

    The caller must treat the target frame's contents as undefined and
    either retry the transfer or quarantine the frame.
    """

    def __init__(self, message: str, *, ppage: int | None = None,
                 kind: str | None = None, words: int | None = None,
                 **context):
        super().__init__(message, ppage=ppage, kind=kind, words=words,
                         **context)
        self.ppage = ppage
        self.kind = kind
        self.words = words
