"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class AddressError(ReproError):
    """An address was out of range or mis-aligned for the requested operation."""


class ProtectionError(ReproError):
    """An access violated the currently installed protection and could not be
    resolved by the fault handler."""


class StaleDataError(ReproError):
    """The staleness oracle observed the memory system transferring a stale
    value to the CPU or a DMA device.

    This is the executable form of the paper's correctness condition: a
    correct consistency policy must never cause this error to be raised.
    """

    def __init__(self, message: str, *, paddr: int | None = None,
                 expected: int | None = None, actual: int | None = None):
        super().__init__(message)
        self.paddr = paddr
        self.expected = expected
        self.actual = actual


class FaultLoopError(ReproError):
    """A memory access kept faulting after repeated resolution attempts,
    indicating a broken consistency policy or fault handler."""


class OutOfMemoryError(ReproError):
    """The physical free page list was exhausted."""


class KernelError(ReproError):
    """An operating-system level operation failed (bad task, bad file...)."""
