"""Observability: structured events, cycle attribution, metrics export.

Three co-operating pieces, all off by default so the batched hot path
keeps its speedup:

* :mod:`repro.obs.events` — the machine-wide :class:`EventBus` that the
  caches, TLB, DMA engine, disk, fault dispatcher, fault injector, and
  conformance monitor publish into;
* :mod:`repro.obs.profiler` — the hierarchical
  :class:`CycleProfiler` charging every simulated cycle to a stack of
  named scopes, reconciling exactly against :class:`Counters`;
* :mod:`repro.obs.export` — JSON / Prometheus-text snapshots of the
  complete counter state, assertion-reconciled on every export.
"""

from repro.obs.events import (DEFAULT_CAPACITY, Event, EventBus, load_jsonl,
                              write_jsonl)
from repro.obs.export import (metrics_dict, parse_prometheus, to_json,
                              to_prometheus, verify_export)
from repro.obs.profiler import (CycleProfiler, ProfileReport, ReconcileCheck,
                                ScopeNode, instrument_kernel, profile_run)

__all__ = [
    "DEFAULT_CAPACITY",
    "Event",
    "EventBus",
    "load_jsonl",
    "write_jsonl",
    "metrics_dict",
    "parse_prometheus",
    "to_json",
    "to_prometheus",
    "verify_export",
    "CycleProfiler",
    "ProfileReport",
    "ReconcileCheck",
    "ScopeNode",
    "instrument_kernel",
    "profile_run",
]
