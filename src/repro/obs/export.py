"""Metrics export: JSON and Prometheus-text snapshots of a run.

The tables of the paper are all derived from :class:`Counters`; this
module serializes the *complete* counter state — every scalar field,
every per-(cache, reason) flush/purge breakdown, every per-kind fault
split — so any external system (a dashboard, a CI assertion, a
regression diff) can rebuild them without importing the simulator.

Two formats:

* :func:`to_json` — a nested dict (``counters`` flat snapshot plus
  ``flushes`` / ``purges`` / ``faults`` breakdown sections and the
  elapsed ``cycles``), serialized deterministically;
* :func:`to_prometheus` — the Prometheus text exposition format, with
  the breakdowns as labeled samples
  (``repro_page_flushes_total{cache="dcache",reason="dma-read"} 4``).

:func:`parse_prometheus` is a minimal parser for the subset this module
emits, used by the CI smoke job and by :func:`verify_export`, which
asserts that both formats reconcile *exactly* with the live counters —
the acceptance gate for any table built from an export.
"""

from __future__ import annotations

import json

from repro.hw.stats import Clock, Counters, FaultKind

#: metric-name prefix for the Prometheus exposition.
PROM_PREFIX = "repro"

#: Counters scalar fields exported one-to-one (name == field name).
SCALAR_FIELDS = (
    "read_hits", "read_misses", "write_hits", "write_misses",
    "write_backs", "tlb_hits", "tlb_misses", "dma_reads", "dma_writes",
    "coherence_invalidations", "coherence_writebacks",
    "d_to_i_copies", "ipc_page_moves", "pages_zero_filled",
    "pages_copied", "pages_made_uncached", "disk_retries",
    "tlb_parity_recoveries", "frames_quarantined",
)


def metrics_dict(counters: Counters, clock: Clock | None = None,
                 extra: dict | None = None) -> dict:
    """The complete counter state as one nested plain dict."""

    def breakdown(counts, cycles) -> dict:
        out: dict[str, dict] = {}
        for (cache, reason) in sorted(set(counts) | set(cycles), key=str):
            out.setdefault(cache, {})[str(reason)] = {
                "count": counts[(cache, reason)],
                "cycles": cycles[(cache, reason)],
            }
        return out

    data = {
        "counters": counters.snapshot(),
        "flushes": breakdown(counters.page_flushes, counters.flush_cycles),
        "purges": breakdown(counters.page_purges, counters.purge_cycles),
        "faults": {str(kind): {"count": counters.faults[kind],
                               "cycles": counters.fault_cycles[kind]}
                   for kind in FaultKind},
    }
    if clock is not None:
        data["cycles"] = clock.cycles
    if extra:
        data.update(extra)
    return data


def to_json(counters: Counters, clock: Clock | None = None,
            extra: dict | None = None, indent: int | None = 2) -> str:
    return json.dumps(metrics_dict(counters, clock, extra),
                      sort_keys=True, indent=indent)


# ---- Prometheus text exposition ---------------------------------------------


def _labels(**labels) -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}" if inner else ""


def to_prometheus(counters: Counters, clock: Clock | None = None) -> str:
    """The counter state in the Prometheus text exposition format."""
    lines: list[str] = []

    def emit(name: str, value: int, help_text: str,
             samples: list[tuple[str, int]] | None = None) -> None:
        full = f"{PROM_PREFIX}_{name}"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} counter")
        if samples is None:
            lines.append(f"{full} {value}")
        else:
            for labels, sample_value in samples:
                lines.append(f"{full}{labels} {sample_value}")

    if clock is not None:
        emit("cycles_total", clock.cycles, "Elapsed simulated cycles.")
    for field in SCALAR_FIELDS:
        emit(f"{field}_total", getattr(counters, field),
             f"Counters.{field}.")
    for op, cycle_name, counts, cycles in (
            ("page_flushes", "flush_cycles",
             counters.page_flushes, counters.flush_cycles),
            ("page_purges", "purge_cycles",
             counters.page_purges, counters.purge_cycles)):
        keys = sorted(set(counts) | set(cycles), key=str)
        emit(f"{op}_total", 0, f"Cache {op} by cache and reason.",
             samples=[(_labels(cache=c, reason=str(r)), counts[(c, r)])
                      for (c, r) in keys])
        emit(f"{cycle_name}_total", 0,
             f"Cycles spent in {op} by cache and reason.",
             samples=[(_labels(cache=c, reason=str(r)), cycles[(c, r)])
                      for (c, r) in keys])
    emit("faults_total", 0, "Faults by Section 5.1 classification.",
         samples=[(_labels(kind=str(k)), counters.faults[k])
                  for k in FaultKind])
    emit("fault_cycles_total", 0, "Fault-handling cycles by classification.",
         samples=[(_labels(kind=str(k)), counters.fault_cycles[k])
                  for k in FaultKind])
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[tuple, int]:
    """Parse the subset of the exposition format :func:`to_prometheus`
    emits: ``(metric_name, ((label, value), ...)) -> sample``.

    Raises ``ValueError`` on any malformed line, so it doubles as the
    CI validation that the output *is* parseable Prometheus text.
    """
    samples: dict[tuple, int] = {}
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge"):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment: {line!r}")
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("} ", 1)
            labels = []
            if label_text:
                for pair in label_text.split(","):
                    key, _, raw = pair.partition("=")
                    if not (raw.startswith('"') and raw.endswith('"')):
                        raise ValueError(
                            f"line {lineno}: unquoted label value: {line!r}")
                    labels.append((key, raw[1:-1]))
        else:
            name, _, value_text = line.rpartition(" ")
            labels = []
        if not name or name not in typed:
            raise ValueError(f"line {lineno}: sample before TYPE: {line!r}")
        try:
            value = int(value_text)
        except ValueError:
            raise ValueError(f"line {lineno}: non-integer sample: {line!r}")
        samples[(name, tuple(labels))] = value
    return samples


# ---- reconciliation ---------------------------------------------------------


def verify_export(counters: Counters, clock: Clock | None = None) -> None:
    """Assert both export formats reconcile exactly with ``counters``.

    Raises ``AssertionError`` naming the first mismatching quantity.
    This is cheap (one serialization round trip per format) and is run
    by the CLI ``metrics`` command on every invocation.
    """
    data = metrics_dict(counters, clock)
    snap = counters.snapshot()
    assert data["counters"] == snap, "JSON snapshot diverges from Counters"
    for op, counts, cycles, total_fn, cycles_fn in (
            ("flushes", counters.page_flushes, counters.flush_cycles,
             counters.total_flushes, counters.total_flush_cycles),
            ("purges", counters.page_purges, counters.purge_cycles,
             counters.total_purges, counters.total_purge_cycles)):
        exported = data[op]
        count_total = sum(entry["count"] for per_reason in exported.values()
                          for entry in per_reason.values())
        cycle_total = sum(entry["cycles"] for per_reason in exported.values()
                          for entry in per_reason.values())
        assert count_total == total_fn(), f"JSON {op} count total diverges"
        assert cycle_total == cycles_fn(), f"JSON {op} cycle total diverges"
    for kind in FaultKind:
        assert data["faults"][str(kind)]["count"] == counters.faults[kind], \
            f"JSON fault count diverges for {kind}"

    samples = parse_prometheus(to_prometheus(counters, clock))
    prefix = PROM_PREFIX
    for field in SCALAR_FIELDS:
        got = samples[(f"{prefix}_{field}_total", ())]
        assert got == getattr(counters, field), \
            f"prom {field} diverges: {got} != {getattr(counters, field)}"
    if clock is not None:
        assert samples[(f"{prefix}_cycles_total", ())] == clock.cycles
    flush_total = sum(v for (name, _), v in samples.items()
                      if name == f"{prefix}_page_flushes_total")
    purge_total = sum(v for (name, _), v in samples.items()
                      if name == f"{prefix}_page_purges_total")
    assert flush_total == counters.total_flushes(), "prom flush total diverges"
    assert purge_total == counters.total_purges(), "prom purge total diverges"
    flush_cycles = sum(v for (name, _), v in samples.items()
                       if name == f"{prefix}_flush_cycles_total")
    purge_cycles = sum(v for (name, _), v in samples.items()
                       if name == f"{prefix}_purge_cycles_total")
    assert flush_cycles == counters.total_flush_cycles(), \
        "prom flush cycle total diverges"
    assert purge_cycles == counters.total_purge_cycles(), \
        "prom purge cycle total diverges"
    for kind in FaultKind:
        got = samples[(f"{prefix}_faults_total", (("kind", str(kind)),))]
        assert got == counters.faults[kind], f"prom faults[{kind}] diverges"
