"""The structured event bus: one stream for everything the system does.

Every layer of the simulator publishes into a single
:class:`EventBus` owned by the machine: the caches (flushes and purges,
with the frame, cache page, reason, and cycle cost), the TLB (parity
recoveries), the DMA engine (transfers and transfer faults), the disk
(retries), the kernel's fault dispatcher (faults with their Section 5.1
classification), the fault injector (every delivered injection), and the
lockstep conformance monitor (every divergence).  A trace of a run is
therefore *attributable*: an oracle violation, a divergence, or a cycle
spike can be lined up against the exact sequence of operations — on the
simulated clock — that led to it.

Design constraints (the PR-1 batched hot path must keep its speedup):

* **off by default** — publishers guard with ``if bus is not None and
  bus.enabled``, so a disabled bus costs the hot paths one attribute
  check and nothing else (and the word/block access paths publish no
  events at all — only management operations do);
* **ring-buffered** — the in-memory log is a bounded deque, so an
  arbitrarily long run keeps the most recent events instead of growing
  without bound;
* **subscribable** — callbacks see every event as it happens (the CLI's
  ``run --trace-events`` subscribes a JSONL writer; tests subscribe
  asserting lambdas), independent of the ring's retention.

Event vocabulary (the ``kind`` field):

=======================  ====================================================
``flush`` / ``purge``     a cache-page management operation
                          (``cache``, ``cache_page``, ``frame``, ``reason``,
                          ``resident``, ``cost_cycles``)
``fault``                 the kernel's fault dispatcher ran
                          (``asid``, ``vpage``, ``access``, ``classified``)
``dma-read``/``dma-write``  a DMA transfer completed (``frame``)
``dma-fault``             a transfer failed verification
                          (``frame``, ``direction``, ``fault``)
``disk-retry``            a transient device fault was absorbed
                          (``op``, ``file_id``, ``page``, ``attempt``)
``tlb-parity-recovery``   a corrupted TLB entry was refilled
                          (``asid``, ``vpage``)
``injection``             the fault injector delivered a fault
                          (``point``, ``injection_seq``, plus point detail)
``divergence``            the lockstep shadow disagreed with the model
                          (``divergence``, ``frame``, ``cache_page``,
                          ``detail``)
=======================  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections import Counter, deque
from typing import Callable

from repro.hw.stats import Clock

#: default ring capacity; enough for the interesting tail of a long run
#: without letting a paper-scale trace dominate memory.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class Event:
    """One published event, stamped with the simulated clock."""

    seq: int
    cycles: int
    kind: str
    detail: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({"seq": self.seq, "cycles": self.cycles,
                           "kind": self.kind, **self.detail},
                          sort_keys=True, default=str)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.cycles:>10}] {self.kind:<12} {detail}"


class EventBus:
    """Ring-buffered, subscribable event stream, disabled by default.

    One instance is shared by the whole machine (and the kernel built on
    it); ``enable()`` turns publication on for a run, ``events()``
    returns the retained ring, and subscribers observe everything
    published while they are attached regardless of ring retention.
    """

    __slots__ = ("clock", "enabled", "seq", "published", "tap", "_ring",
                 "_subscribers")

    def __init__(self, clock: Clock, capacity: int = DEFAULT_CAPACITY):
        self.clock = clock
        self.enabled = False
        self.seq = 0              # next sequence number
        self.published = 0        # total events ever published
        # Pre-publication hook: called as ``tap(kind, detail)`` before the
        # event is stamped, only while enabled.  The trace recorder uses
        # it to observe publishes without wrapping the (slotted) bus.
        self.tap: Callable[[str, dict], None] | None = None
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._subscribers: list[Callable[[Event], None]] = []

    # ---- lifecycle ---------------------------------------------------------

    def enable(self, capacity: int | None = None) -> "EventBus":
        if capacity is not None and capacity != self._ring.maxlen:
            self._ring = deque(self._ring, maxlen=capacity)
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._ring.clear()

    # ---- subscription ------------------------------------------------------

    def subscribe(self, callback: Callable[[Event], None]) -> Callable:
        """Attach ``callback`` to every future event; returns it (so the
        caller can later :meth:`unsubscribe` the same object)."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    # ---- publication -------------------------------------------------------

    def publish(self, kind: str, **detail) -> Event | None:
        """Publish one event (no-op while disabled).

        Publishers on warm paths should guard with ``bus.enabled`` before
        building the detail kwargs, keeping the disabled path to a single
        attribute check.
        """
        if not self.enabled:
            return None
        if self.tap is not None:
            self.tap(kind, detail)
        event = Event(self.seq, self.clock.cycles, kind, detail)
        self.seq += 1
        self.published += 1
        self._ring.append(event)
        for callback in self._subscribers:
            callback(event)
        return event

    # ---- consumption -------------------------------------------------------

    def events(self, kind: str | None = None) -> list[Event]:
        """The retained ring (optionally filtered by ``kind``), oldest
        first."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e.kind == kind]

    def summary(self) -> dict[str, int]:
        """Retained event counts by kind."""
        return dict(Counter(e.kind for e in self._ring))

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return (f"EventBus({state}, retained={len(self._ring)}, "
                f"published={self.published})")


def write_jsonl(events, path) -> int:
    """Write events (any iterable of :class:`Event`) as JSON lines;
    returns the event count."""
    count = 0
    with open(path, "w") as handle:
        for event in events:
            handle.write(event.to_json() + "\n")
            count += 1
    return count


def load_jsonl(path) -> list[dict]:
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]
