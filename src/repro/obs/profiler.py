"""The hierarchical cycle-attribution profiler: where did the cycles go?

The paper's evaluation is an attribution exercise — Section 5.1 carves a
run's time into fault handling, flushing, purging, DMA, and ordinary
computation.  :class:`CycleProfiler` reproduces that discipline for any
run: a stack of named scopes (workload → kernel op → hw op) charges
every advance of the shared :class:`~repro.hw.stats.Clock` to the
scope that was active when it happened, producing a top-down "cycle
flamegraph" whose per-scope cycles sum *exactly* to the clock.

The profiler samples the clock at scope entry and exit rather than
hooking :meth:`Clock.advance`, so it also captures the fast paths that
bump ``clock.cycles`` directly and costs nothing when not attached.

:func:`instrument_kernel` installs the standard scope set on a booted
kernel (fault dispatcher, disk transfers, page preparation, buffer
cache, pageout, cache flush/purge, DMA), and :func:`profile_run`
profiles one workload end to end, returning a :class:`ProfileReport`
whose :meth:`~ProfileReport.reconcile` cross-checks the scope totals
against :class:`~repro.hw.stats.Counters` — the flush/purge scopes must
agree with the counters *to the cycle*.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.hw.stats import Clock, Counters, FaultKind

#: scope names used by :func:`instrument_kernel`; hw scopes reconcile
#: exactly against the corresponding cycle counters.
SCOPE_FAULT = "kernel.fault"
SCOPE_DISK_READ = "kernel.disk.read"
SCOPE_DISK_WRITE = "kernel.disk.write"
SCOPE_BUFFER_CACHE = "kernel.buffer-cache"
SCOPE_PAGEOUT = "kernel.pageout"
SCOPE_PREP_ZERO = "kernel.prepare.zero-fill"
SCOPE_PREP_COPY = "kernel.prepare.copy"


def _hw_scope(op: str, cache: str) -> str:
    return f"hw.{op}.{cache}"


class ScopeNode:
    """One node of the scope tree; ``cycles`` is inclusive."""

    __slots__ = ("name", "children", "cycles", "count")

    def __init__(self, name: str):
        self.name = name
        self.children: dict[str, "ScopeNode"] = {}
        self.cycles = 0
        self.count = 0

    def child(self, name: str) -> "ScopeNode":
        node = self.children.get(name)
        if node is None:
            node = ScopeNode(name)
            self.children[name] = node
        return node

    @property
    def self_cycles(self) -> int:
        """Cycles charged to this scope itself, excluding children."""
        return self.cycles - sum(c.cycles for c in self.children.values())

    def walk(self, depth: int = 0):
        yield depth, self
        for child in sorted(self.children.values(),
                            key=lambda n: -n.cycles):
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ScopeNode({self.name!r}, cycles={self.cycles}, "
                f"count={self.count}, children={len(self.children)})")


class CycleProfiler:
    """Charge simulated cycles to a stack of named scopes.

    Usage::

        profiler = CycleProfiler(machine.clock)
        profiler.start("workload:afs-bench")
        with profiler.scope("execute"):
            ...                      # cycles land under execute (or
            ...                      # deeper, if nested scopes open)
        profiler.stop()
        print(profiler.render())

    Invariant (assertion-tested): after ``stop()``, the root's inclusive
    cycles equal the clock delta over the profiled window, and the sum
    of every scope's *self* cycles equals the same delta — no cycle is
    lost or double-charged.
    """

    def __init__(self, clock: Clock):
        self.clock = clock
        self.root: ScopeNode | None = None
        self.start_cycles = 0
        # (node, cycles at entry); index 0 is the root sentinel.
        self._stack: list[tuple[ScopeNode, int]] = []

    # ---- lifecycle ---------------------------------------------------------

    def start(self, name: str = "run") -> "CycleProfiler":
        if self._stack:
            raise RuntimeError("profiler already started")
        self.root = ScopeNode(name)
        self.root.count = 1
        self.start_cycles = self.clock.cycles
        self._stack = [(self.root, self.start_cycles)]
        return self

    def stop(self) -> ScopeNode:
        """Close all open scopes and seal the root; returns the tree."""
        if not self._stack:
            raise RuntimeError("profiler not started")
        while len(self._stack) > 1:
            self.pop()
        root, entry = self._stack.pop()
        root.cycles += self.clock.cycles - entry
        return root

    @property
    def running(self) -> bool:
        return bool(self._stack)

    # ---- the scope stack ---------------------------------------------------

    def push(self, name: str) -> None:
        node = self._stack[-1][0].child(name)
        node.count += 1
        self._stack.append((node, self.clock.cycles))

    def pop(self) -> None:
        node, entry = self._stack.pop()
        node.cycles += self.clock.cycles - entry

    @contextmanager
    def scope(self, name: str):
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    # ---- aggregation -------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        """Inclusive cycles of the whole profiled window (after stop)."""
        return self.root.cycles if self.root is not None else 0

    def self_cycles_sum(self) -> int:
        return sum(node.self_cycles for _, node in self.root.walk())

    def aggregate(self) -> dict[str, tuple[int, int]]:
        """name -> (inclusive cycles, calls), summed across the tree.

        Sound for leaf scopes (the hw operations), which never nest
        under themselves.
        """
        totals: dict[str, tuple[int, int]] = {}
        for _, node in self.root.walk():
            cycles, count = totals.get(node.name, (0, 0))
            totals[node.name] = (cycles + node.cycles, count + node.count)
        return totals

    # ---- rendering ---------------------------------------------------------

    def render(self, min_percent: float = 0.0) -> str:
        """The top-down cycle flamegraph table."""
        if self.root is None:
            return "(profiler never started)"
        total = max(self.root.cycles, 1)
        lines = [f"{'scope':<44} {'cycles':>12} {'%':>6} "
                 f"{'self':>12} {'calls':>8}"]
        for depth, node in self.root.walk():
            percent = 100.0 * node.cycles / total
            if percent < min_percent and depth > 0:
                continue
            label = "  " * depth + node.name
            lines.append(f"{label:<44} {node.cycles:>12} {percent:>6.1f} "
                         f"{node.self_cycles:>12} {node.count:>8}")
        return "\n".join(lines)


# ---- kernel instrumentation -------------------------------------------------


class _Instrumentation:
    """The installed wrapper set; ``detach()`` restores everything."""

    def __init__(self, profiler: CycleProfiler, kernel):
        self.profiler = profiler
        self.kernel = kernel
        self._originals: list[tuple[object, str, object]] = []

    def _wrap(self, owner, attr: str, scope_name: str) -> None:
        original = getattr(owner, attr)
        profiler = self.profiler

        def wrapped(*args, **kwargs):
            profiler.push(scope_name)
            try:
                return original(*args, **kwargs)
            finally:
                profiler.pop()

        self._originals.append((owner, attr, original))
        setattr(owner, attr, wrapped)
        return wrapped

    def detach(self) -> None:
        for owner, attr, original in reversed(self._originals):
            setattr(owner, attr, original)
        self._originals.clear()
        # the machine holds a bound reference to the fault handler
        self.kernel.machine.fault_handler = self.kernel.handle_fault


def instrument_kernel(profiler: CycleProfiler, kernel) -> _Instrumentation:
    """Install the standard workload → kernel op → hw op scope set.

    Wrapping happens at the instance-attribute level (the same technique
    the tracer and the conformance monitor use), so it composes with
    both and detaches cleanly.
    """
    inst = _Instrumentation(profiler, kernel)
    machine = kernel.machine
    wrapped_fault = inst._wrap(kernel, "handle_fault", SCOPE_FAULT)
    machine.fault_handler = wrapped_fault
    inst._wrap(kernel.disk, "read_block", SCOPE_DISK_READ)
    inst._wrap(kernel.disk, "write_block", SCOPE_DISK_WRITE)
    inst._wrap(kernel.buffer_cache, "read_block", SCOPE_BUFFER_CACHE)
    inst._wrap(kernel.pageout, "maybe_reclaim", SCOPE_PAGEOUT)
    inst._wrap(kernel.pmap, "zero_fill_page", SCOPE_PREP_ZERO)
    inst._wrap(kernel.pmap, "copy_page", SCOPE_PREP_COPY)
    for cache in (machine.dcache, machine.icache):
        inst._wrap(cache, "flush_page_frame", _hw_scope("flush", cache.name))
        inst._wrap(cache, "purge_page_frame", _hw_scope("purge", cache.name))
    inst._wrap(machine.dma, "dma_read", _hw_scope("dma", "read"))
    inst._wrap(machine.dma, "dma_write", _hw_scope("dma", "write"))
    return inst


# ---- whole-run profiling ----------------------------------------------------


@dataclass(frozen=True)
class ReconcileCheck:
    """One cross-check between the scope tree and the counters."""

    name: str
    scope_value: int
    counter_value: int

    @property
    def ok(self) -> bool:
        return self.scope_value == self.counter_value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "ok" if self.ok else "MISMATCH"
        return (f"{self.name}: scopes={self.scope_value} "
                f"counters={self.counter_value} [{verdict}]")


class ProfileReport:
    """A profiled run: the scope tree plus the counter delta."""

    def __init__(self, workload_name: str, policy_name: str,
                 profiler: CycleProfiler, counters: Counters,
                 before: Counters | None = None):
        self.workload_name = workload_name
        self.policy_name = policy_name
        self.profiler = profiler
        self.counters = counters
        self.before = before

    # ---- reconciliation ----------------------------------------------------

    def _delta_cycles(self, counter_name: str, cache: str) -> int:
        after = getattr(self.counters, counter_name)
        total = sum(n for (c, _), n in after.items() if c == cache)
        if self.before is not None:
            prior = getattr(self.before, counter_name)
            total -= sum(n for (c, _), n in prior.items() if c == cache)
        return total

    def reconcile(self) -> list[ReconcileCheck]:
        """The scope tree vs the counters, exact to the cycle.

        * every ``hw.flush.*`` / ``hw.purge.*`` scope total equals the
          corresponding flush/purge cycle counter (the scope brackets
          exactly the cache operation that records the cost);
        * the per-scope self cycles sum to the profiled clock delta
          (no cycle escapes attribution).
        """
        totals = self.profiler.aggregate()
        checks = []
        for cache in ("dcache", "icache"):
            for op, counter in (("flush", "flush_cycles"),
                                ("purge", "purge_cycles")):
                scope_cycles = totals.get(_hw_scope(op, cache), (0, 0))[0]
                checks.append(ReconcileCheck(
                    f"{op}_cycles[{cache}]", scope_cycles,
                    self._delta_cycles(counter, cache)))
        checks.append(ReconcileCheck(
            "total_cycles == sum(self cycles)",
            self.profiler.self_cycles_sum(), self.profiler.total_cycles))
        return checks

    # ---- rendering ---------------------------------------------------------

    def render_breakdown(self) -> str:
        """The Section 5.1 per-reason breakdown from the counters."""
        counters = self.counters
        lines = [f"{'operation':<34} {'count':>8} {'cycles':>12} "
                 f"{'share':>7}"]

        def share(cycles: int) -> str:
            total = max(self.profiler.total_cycles, 1)
            return f"{100.0 * cycles / total:>6.2f}%"

        for kind in FaultKind:
            n = counters.faults[kind]
            cycles = counters.fault_cycles[kind]
            lines.append(f"{'fault:' + str(kind):<34} {n:>8} {cycles:>12} "
                         f"{share(cycles)}")
        for op, counts, cycle_counter in (
                ("flush", counters.page_flushes, counters.flush_cycles),
                ("purge", counters.page_purges, counters.purge_cycles)):
            for (cache, reason) in sorted(counts, key=str):
                n = counts[(cache, reason)]
                cycles = cycle_counter[(cache, reason)]
                lines.append(
                    f"{op + ':' + cache + ':' + str(reason):<34} "
                    f"{n:>8} {cycles:>12} {share(cycles)}")
        return "\n".join(lines)

    def render(self) -> str:
        header = (f"cycle attribution: {self.workload_name} under "
                  f"configuration {self.policy_name} "
                  f"({self.profiler.total_cycles} cycles)")
        checks = "\n".join(f"  {c}" for c in self.reconcile())
        return (f"{header}\n\n{self.profiler.render()}\n\n"
                f"per-reason breakdown (counters):\n"
                f"{self.render_breakdown()}\n\n"
                f"reconciliation:\n{checks}")

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.reconcile())


def profile_run(workload_name: str, policy=None, scale: float | None = None,
                config=None) -> ProfileReport:
    """Profile one paper workload end to end.

    Boots a kernel, installs the standard scope set, runs setup /
    execute / shutdown under their own scopes, and returns the report.
    """
    import copy

    from repro.analysis.experiments import (DEFAULT_SCALE,
                                            evaluation_machine,
                                            make_workload)
    from repro.kernel.kernel import Kernel
    from repro.vm.policy import NEW_SYSTEM

    policy = policy if policy is not None else NEW_SYSTEM
    workload = make_workload(workload_name,
                             DEFAULT_SCALE if scale is None else scale)
    kernel = Kernel(policy=policy, config=config or evaluation_machine(),
                    buffer_cache_pages=48)
    before = copy.deepcopy(kernel.machine.counters)
    profiler = CycleProfiler(kernel.machine.clock)
    profiler.start(f"workload:{workload_name}")
    inst = instrument_kernel(profiler, kernel)
    try:
        with profiler.scope("setup"):
            workload.setup(kernel)
        with profiler.scope("execute"):
            workload.execute(kernel)
        with profiler.scope("shutdown"):
            kernel.shutdown()
    finally:
        inst.detach()
        profiler.stop()
    return ProfileReport(workload_name, policy.name, profiler,
                         kernel.machine.counters, before=before)
