"""The lower cache hierarchy: victim cache and unified L2 below the L1s.

The paper's machine has a single-level cache; Section 3.3 argues the
consistency rules transfer *unchanged* to richer hierarchies because
the alias problem lives entirely in the virtually indexed L1.  This
module supplies the two lower levels that claim is tested against:

* a small **fully associative victim cache** (Jouppi-style) that
  captures lines evicted from the L1 and satisfies later misses to
  them cheaply, and
* an optional **unified, physically indexed L2** that holds clean
  copies of lines fetched from memory.

Both levels are *physically tagged* and hold **clean copies only**:
a dirty L1 write-back goes all the way to physical memory exactly as
in the seed simulator, and only then may the (now clean) line be
captured below.  This "clean-copy invariant" is what keeps the derived
Table 2 tables unchanged — the lower levels can never hold the only
up-to-date copy of anything, so no new consistency state is needed and
flush/purge semantics at the L1 are untouched.

One subtlety *is* handled here: a clean L1 line can still be **stale**
under the paper's lazy-purge discipline (memory was updated through a
different virtual alias, by another CPU, or by DMA, and the purge of
this alias is deferred until its next use).  Capturing such a line into
the victim cache would let it outlive the purge that software
eventually issues, because the victim cache is physically tagged and
invisible to virtual-address purges.  The hierarchy therefore keeps a
per-line *epoch* counter, bumped on **every** write to that line of
physical memory that happens outside a capture (dirty write-backs,
write-through stores, DMA writes, uncached stores); the L1 stamps each
fill with its line's epoch and only clean lines whose stamp is still
current may be captured.  Dirty victims are written back first, which
re-stamps them, so they are always capture-current by construction.
The invariant this maintains — *every line resident below the L1s
equals current physical memory* — is exactly what makes the lower
levels invisible to Table 2: a fill served from the victim cache or
the L2 returns bit-for-bit what a fill from memory would have.

Cycle accounting: :meth:`CacheHierarchy.fetch_line` charges the clock
itself — ``cost.victim_hit`` or ``cost.l2_hit`` on a lower-level hit,
``cost.line_fill`` on a fall-through to memory — so the degenerate
hierarchy (no victim entries, no L2) charges exactly what the seed
simulator charges and is bit-identical to it.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.hw.params import WORD_SIZE, CostModel, L2Geometry
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters

_INVALID = -1


class VictimCache:
    """A small fully associative, physically tagged cache of clean lines.

    Replacement is FIFO over insertion order (deterministic, documented):
    a capture of a new tag evicts the oldest entry when full; re-capturing
    a resident tag refreshes its data but *not* its queue position; a hit
    removes the entry (the line moves back up into the L1 — a swap, as in
    Jouppi's design).
    """

    def __init__(self, n_lines: int, words_per_line: int):
        self.n_lines = n_lines
        self.words_per_line = words_per_line
        self._lines: OrderedDict[int, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._lines)

    def capture(self, tag: int, data: np.ndarray) -> None:
        if self.n_lines == 0:
            return
        if tag in self._lines:
            self._lines[tag][:] = data          # refresh, keep FIFO position
            return
        if len(self._lines) >= self.n_lines:
            self._lines.popitem(last=False)     # evict the oldest entry
        self._lines[tag] = np.array(data, dtype=np.uint64, copy=True)

    def take(self, tag: int) -> np.ndarray | None:
        """Remove and return the line for ``tag``, or None on a miss."""
        return self._lines.pop(tag, None)

    def invalidate(self, tag: int) -> None:
        self._lines.pop(tag, None)

    def invalidate_range(self, first_tag: int, last_tag: int) -> None:
        for tag in [t for t in self._lines if first_tag <= t <= last_tag]:
            del self._lines[tag]

    def resident_tags(self) -> list[int]:
        return list(self._lines)


class L2Cache:
    """A unified, physically indexed, set-associative cache of clean lines.

    Indexed by ``line_tag % num_sets`` — pure physical indexing, so the
    virtual-alias problem cannot arise at this level (Section 3.3).
    Replacement is LRU with the same deterministic tie-break as the L1:
    the lowest-numbered invalid way first, else the least recently
    touched way.
    """

    def __init__(self, geo: L2Geometry, words_per_line: int):
        self.geo = geo
        self.words_per_line = words_per_line
        shape = (geo.associativity, geo.num_sets)
        self._tags = np.full(shape, _INVALID, dtype=np.int64)
        self._lru = np.zeros(shape, dtype=np.int64)
        self._data = np.zeros(shape + (words_per_line,), dtype=np.uint64)
        self._tick = 0

    def _set_of(self, tag: int) -> int:
        return tag % self.geo.num_sets

    def _touch(self, way: int, set_index: int) -> None:
        self._tick += 1
        self._lru[way, set_index] = self._tick

    def lookup(self, tag: int) -> np.ndarray | None:
        """Return (a copy of) the line for ``tag``, or None on a miss."""
        set_index = self._set_of(tag)
        ways = np.flatnonzero(self._tags[:, set_index] == tag)
        if ways.size == 0:
            return None
        way = int(ways[0])
        self._touch(way, set_index)
        return self._data[way, set_index].copy()

    def insert(self, tag: int, data: np.ndarray) -> None:
        set_index = self._set_of(tag)
        ways = np.flatnonzero(self._tags[:, set_index] == tag)
        if ways.size:
            way = int(ways[0])                  # refresh in place
        else:
            empties = np.flatnonzero(self._tags[:, set_index] == _INVALID)
            if empties.size:
                way = int(empties[0])
            else:
                way = int(np.argmin(self._lru[:, set_index]))
        self._tags[way, set_index] = tag
        self._data[way, set_index] = data
        self._touch(way, set_index)

    def invalidate(self, tag: int) -> None:
        set_index = self._set_of(tag)
        ways = np.flatnonzero(self._tags[:, set_index] == tag)
        for way in ways:
            self._tags[way, set_index] = _INVALID
            self._lru[way, set_index] = 0

    def invalidate_range(self, first_tag: int, last_tag: int) -> None:
        mask = (self._tags >= first_tag) & (self._tags <= last_tag)
        self._tags[mask] = _INVALID
        self._lru[mask] = 0

    def resident_tags(self) -> list[int]:
        return sorted(int(t) for t in self._tags[self._tags != _INVALID])


class CacheHierarchy:
    """The shared lower levels: victim cache and/or L2 in front of memory.

    One instance sits below *all* the machine's first-level caches (the
    per-CPU data caches and the instruction cache): the victim cache
    and L2 are physically addressed, so sharing them is safe and mirrors
    a real unified lower hierarchy.

    The L1s interact with it through four calls:

    * :meth:`fetch_line` — serve an L1 miss (victim, then L2, then
      memory), charging the clock for whichever source supplied it;
    * :meth:`capture` — offer an evicted L1 line for caching below
      (callers pass only epoch-current lines; see module docstring);
    * :meth:`note_memory_write` / :meth:`note_memory_write_range` — a
      line of physical memory was just (re)written (dirty write-back,
      write-through store): drop any lower-level copy and bump the
      line's epoch;
    * :meth:`invalidate_page` / :meth:`invalidate_span` — memory was
      written behind the caches entirely (DMA, uncached stores): the
      page/span form of the same notification.
    """

    def __init__(self, memory: PhysicalMemory, cost: CostModel,
                 clock: Clock, counters: Counters, line_size: int,
                 victim_lines: int = 0, l2: L2Geometry | None = None):
        self.memory = memory
        self.cost = cost
        self.clock = clock
        self.counters = counters
        self.line_size = line_size
        self.lines_per_page = memory.page_size // line_size
        words_per_line = line_size // WORD_SIZE
        self.victim = (VictimCache(victim_lines, words_per_line)
                       if victim_lines else None)
        self.l2 = L2Cache(l2, words_per_line) if l2 is not None else None
        # One epoch counter per physical memory line; bumped on every
        # write to that line of memory outside a capture.  L1 fills are
        # stamped with it and only clean lines whose stamp is still
        # current may be captured (module docstring).
        self._epochs = np.zeros(memory.num_pages * self.lines_per_page,
                                dtype=np.int64)

    # ---- epoch bookkeeping -------------------------------------------------

    def epoch_of(self, tag: int) -> int:
        """Current epoch of memory line ``tag``."""
        return int(self._epochs[tag])

    def epochs_of(self, tags: np.ndarray) -> np.ndarray:
        return self._epochs[tags]

    # ---- the L1-facing surface ---------------------------------------------

    def fetch_line(self, tag: int) -> np.ndarray:
        """Serve an L1 line fill, charging for whichever level supplied it."""
        if self.victim is not None:
            line = self.victim.take(tag)
            if line is not None:
                self.counters.victim_hits += 1
                self.clock.advance(self.cost.victim_hit)
                return line
        if self.l2 is not None:
            line = self.l2.lookup(tag)
            if line is not None:
                self.counters.l2_hits += 1
                self.clock.advance(self.cost.l2_hit)
                return line
        line = self.memory.read_line(tag * self.line_size,
                                     self.line_size // WORD_SIZE)
        if self.l2 is not None:
            self.l2.insert(tag, line)
            self.counters.l2_fills += 1
        self.clock.advance(self.cost.line_fill)
        return line

    def capture(self, tag: int, data: np.ndarray) -> None:
        """Cache an evicted (already written-back, hence clean) L1 line."""
        if self.victim is not None:
            self.victim.capture(tag, data)
            self.counters.victim_captures += 1
        elif self.l2 is not None:
            self.l2.insert(tag, data)

    def note_memory_write(self, tag: int) -> None:
        """Memory line ``tag`` was just written (write-back, wt store):
        any lower-level copy is now stale; drop it and bump the epoch."""
        self._epochs[tag] += 1
        if self.victim is not None:
            self.victim.invalidate(tag)
        if self.l2 is not None:
            self.l2.invalidate(tag)

    def note_memory_write_range(self, first_tag: int, last_tag: int) -> None:
        self._epochs[first_tag:last_tag + 1] += 1
        if self.victim is not None:
            self.victim.invalidate_range(first_tag, last_tag)
        if self.l2 is not None:
            self.l2.invalidate_range(first_tag, last_tag)

    # ---- memory-written-behind-the-caches notifications --------------------

    def invalidate_page(self, ppage: int) -> None:
        """Memory frame ``ppage`` was written directly (DMA / pageout)."""
        first = ppage * self.lines_per_page
        self.note_memory_write_range(first, first + self.lines_per_page - 1)

    def invalidate_span(self, paddr: int, n_words: int) -> None:
        """A span of memory was written directly (uncached stores)."""
        first = paddr // self.line_size
        last = (paddr + max(n_words, 1) * WORD_SIZE - 1) // self.line_size
        self.note_memory_write_range(first, last)

    # ---- inspection --------------------------------------------------------

    def resident_tags(self) -> dict[str, list[int]]:
        out: dict[str, list[int]] = {}
        if self.victim is not None:
            out["victim"] = sorted(self.victim.resident_tags())
        if self.l2 is not None:
            out["l2"] = self.l2.resident_tags()
        return out
