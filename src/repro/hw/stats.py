"""Event counters shared by the hardware components and the OS layers.

The paper's evaluation (Tables 1 and 4) is expressed almost entirely in
terms of counts: page flushes, page purges, mapping faults, consistency
faults, DMA-read flushes, and data-to-instruction-space copies, together
with the cycles each class of event consumed.  :class:`Counters` records
exactly those quantities, tagged by the *reason* the event occurred so the
Section 5.1 breakdown (9% of purges for DMA-writes, 17.5% for copies into
instruction space, ~80% for new mappings) can be regenerated.
"""

from __future__ import annotations

import enum
import numbers
from collections import Counter
from dataclasses import dataclass, field


class Clock:
    """A shared cycle counter.

    Every component of the simulated machine (CPU paths, caches, TLB, DMA
    engine, fault handling) advances the same clock, so ``clock.cycles`` is
    the elapsed machine time of a run and converts to seconds through
    :meth:`repro.hw.params.CostModel.seconds`.
    """

    __slots__ = ("cycles",)

    def __init__(self) -> None:
        self.cycles = 0

    def advance(self, cycles: int) -> None:
        # A negative or fractional delta would silently corrupt every
        # cycle attribution downstream (counters, profiler scopes, the
        # seconds conversion), so reject it at the source.  Integral
        # covers both Python ints and numpy integer scalars; bool is an
        # Integral but a delta of True is always a bug.
        if type(cycles) is int:
            # Exact-type fast path: the batched access engine advances the
            # clock once per run, and the two isinstance checks below are
            # measurable there.  Plain non-negative ints skip them.
            if cycles >= 0:
                self.cycles += cycles
                return
            raise ValueError(
                f"clock delta must be non-negative, got {cycles!r}")
        if (not isinstance(cycles, numbers.Integral)
                or isinstance(cycles, bool)):
            raise ValueError(
                f"clock delta must be an integer, got {cycles!r}")
        if cycles < 0:
            raise ValueError(
                f"clock delta must be non-negative, got {cycles!r}")
        self.cycles += int(cycles)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clock(cycles={self.cycles})"


class Reason(enum.Enum):
    """Why a cache-management operation (flush/purge) was performed."""

    NEW_MAPPING = "new-mapping"        # a physical page gained a new, unaligned mapping
    ALIAS_WRITE = "alias-write"        # a write through one alias invalidated another
    ALIAS_READ = "alias-read"          # a read forced a dirty alias out of the cache
    DMA_READ = "dma-read"              # flushed so a device reads fresh memory
    DMA_WRITE = "dma-write"            # purged so device data is not shadowed/overwritten
    D_TO_I_COPY = "d-to-i-copy"        # copying data space into instruction space
    UNMAP_EAGER = "unmap-eager"        # eager policy cleaning the cache at unmap time
    PAGEOUT = "pageout"                # page being evicted to backing store
    EXPLICIT = "explicit"              # direct request (tests, examples)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FaultKind(enum.Enum):
    """Classification of memory-management faults (Section 5.1).

    Mapping faults occur regardless of cache architecture (first touch of a
    virtual page, copy-on-write...).  Consistency faults exist only because
    the cache is virtually indexed and are counted as bookkeeping overhead.
    """

    MAPPING = "mapping"
    CONSISTENCY = "consistency"
    PROTECTION = "protection"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Counters:
    """Mutable event counters with cycle attribution.

    One instance is shared by the machine, its caches, the DMA engine and
    the kernel so that a single object describes a whole run.
    """

    # cache traffic
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    write_backs: int = 0

    # cache management, split per cache name ("dcache"/"icache") and reason
    page_flushes: Counter = field(default_factory=Counter)   # (cache, Reason) -> n
    page_purges: Counter = field(default_factory=Counter)    # (cache, Reason) -> n
    flush_cycles: Counter = field(default_factory=Counter)   # (cache, Reason) -> cycles
    purge_cycles: Counter = field(default_factory=Counter)   # (cache, Reason) -> cycles

    # faults
    faults: Counter = field(default_factory=Counter)         # FaultKind -> n
    fault_cycles: Counter = field(default_factory=Counter)   # FaultKind -> cycles

    # TLB
    tlb_hits: int = 0
    tlb_misses: int = 0

    # DMA
    dma_reads: int = 0        # device reads memory (disk write / pageout)
    dma_writes: int = 0       # device writes memory (disk read / pagein)

    # SMP snoop coherence (zero on a uniprocessor)
    coherence_invalidations: int = 0  # remote copies invalidated by a store
    coherence_writebacks: int = 0     # dirty remote copies written back by a snoop

    # lower cache hierarchy (zero without a victim cache / L2)
    victim_hits: int = 0      # L1 miss satisfied by the victim cache
    victim_captures: int = 0  # L1 victim lines captured by the victim cache
    l2_hits: int = 0          # L1 miss satisfied by the unified L2
    l2_fills: int = 0         # lines installed in the L2 from memory

    # OS-level events of interest to the evaluation
    d_to_i_copies: int = 0    # pages copied from data space into instruction space
    ipc_page_moves: int = 0
    pages_zero_filled: int = 0
    pages_copied: int = 0
    pages_made_uncached: int = 0  # Sun-style alias sets converted to uncached

    # external consistency policies (zero under the paper's ladder)
    rlt_lookups: int = 0      # reverse-lookup-table consults (rlt policy)
    rlt_skipped_ops: int = 0  # flush/purge proven unnecessary by the RLT
    superpage_mappings: int = 0  # superpage regions entered (vespa et al.)

    # fault recovery (all zero unless faults occur or are injected)
    disk_retries: int = 0           # disk/DMA transfers re-issued after a
                                    # transient failure (backoff charged)
    tlb_parity_recoveries: int = 0  # corrupted TLB entries caught by parity
                                    # and refilled from the page tables
    frames_quarantined: int = 0     # frames retired after failing DMA
                                    # transfer verification repeatedly

    def __repr__(self) -> str:
        return (f"Counters(reads={self.read_hits}h/{self.read_misses}m, "
                f"writes={self.write_hits}h/{self.write_misses}m, "
                f"write_backs={self.write_backs}, "
                f"tlb={self.tlb_hits}h/{self.tlb_misses}m, "
                f"flushes={self.total_flushes()}, "
                f"purges={self.total_purges()}, "
                f"faults={sum(self.faults.values())})")

    def record_flush(self, cache: str, reason: Reason, cycles: int) -> None:
        self.page_flushes[(cache, reason)] += 1
        self.flush_cycles[(cache, reason)] += cycles

    def record_purge(self, cache: str, reason: Reason, cycles: int) -> None:
        self.page_purges[(cache, reason)] += 1
        self.purge_cycles[(cache, reason)] += cycles

    def record_fault(self, kind: FaultKind, cycles: int) -> None:
        self.faults[kind] += 1
        self.fault_cycles[kind] += cycles

    # ---- aggregation helpers used by the analysis layer -------------------

    def total_flushes(self, cache: str | None = None,
                      reason: Reason | None = None) -> int:
        return self._total(self.page_flushes, cache, reason)

    def total_purges(self, cache: str | None = None,
                     reason: Reason | None = None) -> int:
        return self._total(self.page_purges, cache, reason)

    def total_flush_cycles(self, cache: str | None = None,
                           reason: Reason | None = None) -> int:
        return self._total(self.flush_cycles, cache, reason)

    def total_purge_cycles(self, cache: str | None = None,
                           reason: Reason | None = None) -> int:
        return self._total(self.purge_cycles, cache, reason)

    @staticmethod
    def _total(counter: Counter, cache: str | None, reason: Reason | None) -> int:
        # A cluster's per-CPU caches record under "cpu{i}.dcache"; a query
        # for "dcache" aggregates them so the analysis layer is agnostic
        # to how many CPUs produced the traffic.
        return sum(n for (c, r), n in counter.items()
                   if (cache is None or c == cache
                       or c.endswith("." + cache))
                   and (reason is None or r == reason))

    def snapshot(self) -> dict:
        """A plain-dict summary convenient for table rendering.

        Complete by construction: every public field of the dataclass is
        represented (assertion-tested), so a table built from a snapshot
        can never silently under-report a run — the protection-fault and
        fault-recovery counters used to be dropped here, hiding exactly
        the events chaos runs exist to count.
        """
        return {
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
            "write_backs": self.write_backs,
            "page_flushes": self.total_flushes(),
            "page_purges": self.total_purges(),
            "flush_cycles": self.total_flush_cycles(),
            "purge_cycles": self.total_purge_cycles(),
            "mapping_faults": self.faults[FaultKind.MAPPING],
            "consistency_faults": self.faults[FaultKind.CONSISTENCY],
            "protection_faults": self.faults[FaultKind.PROTECTION],
            "fault_cycles": sum(self.fault_cycles.values()),
            "tlb_hits": self.tlb_hits,
            "tlb_misses": self.tlb_misses,
            "dma_reads": self.dma_reads,
            "dma_writes": self.dma_writes,
            "coherence_invalidations": self.coherence_invalidations,
            "coherence_writebacks": self.coherence_writebacks,
            "victim_hits": self.victim_hits,
            "victim_captures": self.victim_captures,
            "l2_hits": self.l2_hits,
            "l2_fills": self.l2_fills,
            "d_to_i_copies": self.d_to_i_copies,
            "ipc_page_moves": self.ipc_page_moves,
            "pages_zero_filled": self.pages_zero_filled,
            "pages_copied": self.pages_copied,
            "pages_made_uncached": self.pages_made_uncached,
            "rlt_lookups": self.rlt_lookups,
            "rlt_skipped_ops": self.rlt_skipped_ops,
            "superpage_mappings": self.superpage_mappings,
            "disk_retries": self.disk_retries,
            "tlb_parity_recoveries": self.tlb_parity_recoveries,
            "frames_quarantined": self.frames_quarantined,
        }
