"""A virtually indexed, physically tagged cache simulator.

This models the HP PA-RISC style cache assumed throughout the paper:

* the *virtual* address selects the set (cache line), so the same physical
  datum can live in several lines at once when accessed through unaligned
  aliases — the paper's central consistency hazard;
* the tag stores the *physical* line number, so aligned aliases hit the
  same line and are resolved without going to memory (Section 2.2);
* the data cache is write-back: a dirty line reaches memory only on a
  victim replacement or an explicit ``flush`` (Section 2.2);
* the two software-visible management operations are ``flush`` (write back
  if dirty, then invalidate) and ``purge`` (invalidate without write-back)
  (Section 1.1).

The simulator moves real word values, so every hazard the paper describes
(stale reads through one alias after writes through another, lost
write-backs from doubly-dirty lines, cached data shadowing fresh DMA data)
is observable as a wrong value, not merely as a flag.

Variants used by Section 3.3 are supported: physical indexing, write-
through stores, and set associativity (hardware keeps a physical line
unique within a set).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AddressError, ConfigurationError
from repro.hw.params import WORD_SIZE, CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters, Reason

_INVALID = -1

# Runs shorter than this take the scalar word loop: the fixed cost of the
# vectorized run path only pays for itself on longer runs.
RUN_FALLBACK_WORDS = 8


class Cache:
    """One cache (data or instruction) with full content simulation.

    Word-level operations (:meth:`read`, :meth:`write`) model individual
    CPU accesses.  Page-level operations (:meth:`read_page`,
    :meth:`write_page`, :meth:`flush_page_frame`, :meth:`purge_page_frame`)
    are vectorized fast paths with identical semantics to the equivalent
    word/line loops; the kernel uses them for page preparation and cache
    management, exactly as Mach's machine-dependent layer loops FDC/PDC
    over a page.
    """

    def __init__(self, geometry: CacheGeometry, memory: PhysicalMemory,
                 cost: CostModel, clock: Clock, counters: Counters,
                 name: str = "dcache", is_icache: bool = False,
                 hierarchy=None):
        if geometry.page_size != memory.page_size:
            raise ConfigurationError("cache and memory disagree on page size")
        self.geo = geometry
        self.memory = memory
        self.cost = cost
        self.clock = clock
        self.counters = counters
        self.name = name
        self.is_icache = is_icache
        # The shared lower hierarchy (victim cache / L2), or None for the
        # seed machine's L1-over-memory arrangement.  With a hierarchy,
        # fills go through it (it charges the clock for whichever level
        # supplied the line) and evicted lines may be captured below; see
        # :mod:`repro.hw.hierarchy` for the clean-copy/epoch discipline.
        self.hierarchy = hierarchy
        # Observability: the machine attaches its EventBus here; standalone
        # caches (unit tests) run without one.  Only the management
        # operations publish — never the word/run/page access paths.
        self.bus = None
        # Exact-management mode (the reverse-lookup-table policy): a
        # hardware table names the resident lines of the target frame, so
        # flush/purge touch only those lines — the per-line miss-scan
        # term of the cost model disappears.  Contents are unaffected;
        # only the charged cycles change.
        self.exact_management = False

        ways, sets = geometry.associativity, geometry.num_sets
        self._tags = np.full((ways, sets), _INVALID, dtype=np.int64)
        self._dirty = np.zeros((ways, sets), dtype=bool)
        self._data = np.zeros((ways, sets, geometry.words_per_line),
                              dtype=np.uint64)
        self._lru = np.zeros((ways, sets), dtype=np.int64)
        self._tick = 0
        # Epoch stamp of each line's fill (hierarchy mode only): a clean
        # line may be captured below on eviction iff its stamp still
        # matches its memory line's epoch, i.e. memory has not been
        # rewritten since the fill.
        self._fill_epoch = (np.zeros((ways, sets), dtype=np.int64)
                            if hierarchy is not None else None)
        # pa_page_base -> read-only line-tag array (see _page_tags)
        self._page_tags_cache: dict[int, np.ndarray] = {}

    # ---- index helpers -----------------------------------------------------

    def _set_of(self, vaddr: int, paddr: int) -> int:
        addr = paddr if self.geo.physically_indexed else vaddr
        return self.geo.set_index(addr)

    def _check_word(self, vaddr: int, paddr: int) -> None:
        if vaddr % WORD_SIZE or paddr % WORD_SIZE:
            raise AddressError("cache word access must be word aligned")
        if vaddr % self.geo.page_size != paddr % self.geo.page_size:
            raise AddressError(
                "virtual and physical addresses must share the page offset")

    def _find_way(self, set_idx: int, tag: int) -> int | None:
        for way in range(self.geo.associativity):
            if self._tags[way, set_idx] == tag:
                return way
        return None

    def _victim_way(self, set_idx: int) -> int:
        """The way a miss in ``set_idx`` will replace.

        Deterministic by construction, in two stages:

        1. the *lowest-numbered invalid* way, if any (ways fill in index
           order from a purged cache);
        2. otherwise the way with the *smallest LRU stamp* — true LRU,
           since :meth:`_touch` assigns stamps from a strictly increasing
           tick, so stamps within a set are unique and ``argmin`` never
           needs a tie-break.

        Pinned by the eviction-order regression tests at 2 and 4 ways
        (``tests/hw/test_cache.py``).
        """
        tags = self._tags[:, set_idx]
        empties = np.flatnonzero(tags == _INVALID)
        if len(empties):
            return int(empties[0])
        return int(np.argmin(self._lru[:, set_idx]))

    def _touch(self, way: int, set_idx: int) -> None:
        self._tick += 1
        self._lru[way, set_idx] = self._tick

    def _write_back_line(self, way: int, set_idx: int) -> None:
        tag = int(self._tags[way, set_idx])
        self.memory.write_line(tag * self.geo.line_size,
                               self._data[way, set_idx])
        self.counters.write_backs += 1
        self.clock.advance(self.cost.write_back)
        if self.hierarchy is not None:
            # Memory just changed: stale lower copies must go.  This line
            # now equals memory again, so re-stamp it capture-current.
            self.hierarchy.note_memory_write(tag)
            self._fill_epoch[way, set_idx] = self.hierarchy.epoch_of(tag)

    def _evict(self, way: int, set_idx: int) -> None:
        dirty = bool(self._dirty[way, set_idx])
        if dirty:
            self._write_back_line(way, set_idx)
        if self.hierarchy is not None:
            tag = int(self._tags[way, set_idx])
            # Capture the victim below iff its data equals memory: always
            # true after a dirty write-back (which re-stamps), and for a
            # clean line iff memory has not moved since its fill.
            if tag != _INVALID and self._fill_epoch[way, set_idx] \
                    == self.hierarchy.epoch_of(tag):
                self.hierarchy.capture(tag, self._data[way, set_idx])
        self._tags[way, set_idx] = _INVALID
        self._dirty[way, set_idx] = False

    def _fill(self, way: int, set_idx: int, tag: int) -> None:
        self._tags[way, set_idx] = tag
        if self.hierarchy is None:
            self._data[way, set_idx] = self.memory.read_line(
                tag * self.geo.line_size, self.geo.words_per_line)
            self.clock.advance(self.cost.line_fill)
        else:
            # The hierarchy charges the clock itself (victim/L2/memory
            # fills cost differently) and the fill is epoch-stamped.
            self._data[way, set_idx] = self.hierarchy.fetch_line(tag)
            self._fill_epoch[way, set_idx] = self.hierarchy.epoch_of(tag)
        self._dirty[way, set_idx] = False

    # ---- word access -------------------------------------------------------

    def read(self, vaddr: int, paddr: int) -> int:
        """CPU load of the word at (vaddr -> paddr); returns its value."""
        geo = self.geo
        if geo.associativity == 1:
            # Direct-mapped fast path: no way search, and ndarray.item()
            # avoids boxing the tag/value into numpy scalars.
            if vaddr % WORD_SIZE or paddr % WORD_SIZE:
                raise AddressError("cache word access must be word aligned")
            if vaddr % geo.page_size != paddr % geo.page_size:
                raise AddressError(
                    "virtual and physical addresses must share the page offset")
            addr = paddr if geo.physically_indexed else vaddr
            set_idx = (addr // geo.line_size) % geo.num_sets
            tag = paddr // geo.line_size
            if self._tags.item(0, set_idx) == tag:
                self.counters.read_hits += 1
                self.clock.cycles += self.cost.cache_hit
            else:
                self.counters.read_misses += 1
                self._evict(0, set_idx)
                self._fill(0, set_idx, tag)
            self._tick += 1
            self._lru[0, set_idx] = self._tick
            return self._data.item(0, set_idx,
                                   (paddr % geo.line_size) // WORD_SIZE)
        self._check_word(vaddr, paddr)
        set_idx = self._set_of(vaddr, paddr)
        tag = paddr // geo.line_size
        way = self._find_way(set_idx, tag)
        if way is None:
            self.counters.read_misses += 1
            way = self._victim_way(set_idx)
            self._evict(way, set_idx)
            self._fill(way, set_idx, tag)
        else:
            self.counters.read_hits += 1
            self.clock.advance(self.cost.cache_hit)
        self._touch(way, set_idx)
        word = (paddr % geo.line_size) // WORD_SIZE
        return int(self._data[way, set_idx, word])

    def write(self, vaddr: int, paddr: int, value: int) -> None:
        """CPU store of the word at (vaddr -> paddr).

        Write-back mode allocates on miss and marks the line dirty;
        write-through mode propagates the store to memory immediately and
        never dirties a line (the Section 3.3 write-through variant).
        """
        geo = self.geo
        if geo.associativity == 1:
            if vaddr % WORD_SIZE or paddr % WORD_SIZE:
                raise AddressError("cache word access must be word aligned")
            if vaddr % geo.page_size != paddr % geo.page_size:
                raise AddressError(
                    "virtual and physical addresses must share the page offset")
            addr = paddr if geo.physically_indexed else vaddr
            set_idx = (addr // geo.line_size) % geo.num_sets
            tag = paddr // geo.line_size
            if self._tags.item(0, set_idx) == tag:
                self.counters.write_hits += 1
                self.clock.cycles += self.cost.cache_hit
            else:
                self.counters.write_misses += 1
                self._evict(0, set_idx)
                self._fill(0, set_idx, tag)
            self._tick += 1
            self._lru[0, set_idx] = self._tick
            self._data[0, set_idx, (paddr % geo.line_size) // WORD_SIZE] = value
            if geo.write_through:
                self.memory.write_word(paddr, value)
                self.clock.cycles += self.cost.write_back
                if self.hierarchy is not None:
                    self.hierarchy.note_memory_write(tag)
                    self._fill_epoch[0, set_idx] = \
                        self.hierarchy.epoch_of(tag)
            else:
                self._dirty[0, set_idx] = True
            return
        self._check_word(vaddr, paddr)
        set_idx = self._set_of(vaddr, paddr)
        tag = paddr // geo.line_size
        way = self._find_way(set_idx, tag)
        if way is None:
            self.counters.write_misses += 1
            way = self._victim_way(set_idx)
            self._evict(way, set_idx)
            self._fill(way, set_idx, tag)
        else:
            self.counters.write_hits += 1
            self.clock.advance(self.cost.cache_hit)
        self._touch(way, set_idx)
        word = (paddr % geo.line_size) // WORD_SIZE
        self._data[way, set_idx, word] = np.uint64(value)
        if geo.write_through:
            self.memory.write_word(paddr, value)
            self.clock.advance(self.cost.write_back)
            if self.hierarchy is not None:
                self.hierarchy.note_memory_write(tag)
                self._fill_epoch[way, set_idx] = self.hierarchy.epoch_of(tag)
        else:
            self._dirty[way, set_idx] = True

    # ---- contiguous word runs (the batched access engine) --------------------

    def _run_shape(self, vaddr: int, paddr: int, n_words: int):
        """Validate a run and derive its line-level shape.

        Returns ``(sets, want, counts, first_word, n_lines)``: the set
        slice the run covers, the physical line tags it wants, the number
        of run words falling in each line, the word offset of the run's
        first word within its first line, and the line count.
        """
        geo = self.geo
        if vaddr % WORD_SIZE or paddr % WORD_SIZE:
            raise AddressError("cache word access must be word aligned")
        if vaddr % geo.page_size != paddr % geo.page_size:
            raise AddressError(
                "virtual and physical addresses must share the page offset")
        last_off = (n_words - 1) * WORD_SIZE
        if vaddr // geo.page_size != (vaddr + last_off) // geo.page_size:
            raise AddressError("a cache run must stay within one page")
        first_tag = paddr // geo.line_size
        n_lines = (paddr + last_off) // geo.line_size - first_tag + 1
        addr = paddr if geo.physically_indexed else vaddr
        s0 = (addr // geo.line_size) % geo.num_sets
        want = np.arange(first_tag, first_tag + n_lines, dtype=np.int64)
        first_word = (paddr % geo.line_size) // WORD_SIZE
        wpl = geo.words_per_line
        if n_lines == 1:
            counts = np.array([n_words], dtype=np.int64)
        else:
            counts = np.full(n_lines, wpl, dtype=np.int64)
            counts[0] = wpl - first_word
            counts[-1] = n_words - (wpl - first_word) - (n_lines - 2) * wpl
        return slice(s0, s0 + n_lines), want, counts, first_word, n_lines

    def read_run(self, vaddr: int, paddr: int, n_words: int) -> np.ndarray:
        """Read ``n_words`` consecutive words starting at (vaddr -> paddr).

        Observationally equivalent to the word loop
        ``[self.read(vaddr + 4*i, paddr + 4*i) for i in range(n_words)]``:
        identical counters, clock cycles, tag/dirty/data/LRU state, and
        returned values.  The run must stay within one page (within a page
        a victim can never belong to the run's own physical page — a
        matching tag at the page-offset set would be a hit — so victim
        write-backs and line fills touch disjoint memory and commute with
        the word loop's interleaved order).  Associative caches and short
        runs take the word loop directly.
        """
        if self.geo.associativity > 1 or n_words < RUN_FALLBACK_WORDS:
            out = np.empty(n_words, dtype=np.uint64)
            for i in range(n_words):
                off = i * WORD_SIZE
                out[i] = self.read(vaddr + off, paddr + off)
            return out
        sets, want, counts, first_word, n_lines = self._run_shape(
            vaddr, paddr, n_words)
        tags = self._tags[0, sets]
        misses = tags != want
        n_miss = int(misses.sum())
        if self.hierarchy is not None:
            # Per-line servicing in set order (= the word loop's order):
            # fills may come from the victim cache or L2 at differing
            # cost, and evictions may capture below, so the batched
            # evict-all-then-fill-all shape would not be equivalent.
            self._service_lines(sets, want, misses)
            self.clock.advance((n_words - n_miss) * self.cost.cache_hit)
        else:
            victims = misses & (tags != _INVALID) & self._dirty[0, sets]
            self._write_back_victims(sets, victims)
            if n_miss:
                mem_lines = self.memory.read_line(
                    int(want[0]) * self.geo.line_size,
                    n_lines * self.geo.words_per_line,
                ).reshape(n_lines, self.geo.words_per_line)
                self._data[0, sets][misses] = mem_lines[misses]
                self._tags[0, sets] = want
                self._dirty[0, sets][misses] = False
            self.clock.advance((n_words - n_miss) * self.cost.cache_hit
                               + n_miss * self.cost.line_fill)
        self.counters.read_hits += n_words - n_miss
        self.counters.read_misses += n_miss
        self._lru[0, sets] = self._tick + np.cumsum(counts)
        self._tick += n_words
        return self._data[0, sets].reshape(-1)[
            first_word:first_word + n_words].copy()

    def write_run(self, vaddr: int, paddr: int, values: np.ndarray) -> None:
        """Store ``values`` to consecutive words starting at (vaddr -> paddr).

        Word-loop equivalent (see :meth:`read_run`); like the word loop it
        fills every missing line before storing into it, so partially
        overwritten lines keep their memory contents.
        """
        n_words = len(values)
        if self.geo.associativity > 1 or n_words < RUN_FALLBACK_WORDS:
            for i in range(n_words):
                off = i * WORD_SIZE
                self.write(vaddr + off, paddr + off, int(values[i]))
            return
        sets, want, counts, first_word, n_lines = self._run_shape(
            vaddr, paddr, n_words)
        values = np.asarray(values, dtype=np.uint64)
        tags = self._tags[0, sets]
        misses = tags != want
        n_miss = int(misses.sum())
        if self.hierarchy is not None:
            self._service_lines(sets, want, misses)
            cycles = (n_words - n_miss) * self.cost.cache_hit
        else:
            victims = misses & (tags != _INVALID) & self._dirty[0, sets]
            self._write_back_victims(sets, victims)
            if n_miss:
                mem_lines = self.memory.read_line(
                    int(want[0]) * self.geo.line_size,
                    n_lines * self.geo.words_per_line,
                ).reshape(n_lines, self.geo.words_per_line)
                self._data[0, sets][misses] = mem_lines[misses]
                self._tags[0, sets] = want
                self._dirty[0, sets][misses] = False
            cycles = ((n_words - n_miss) * self.cost.cache_hit
                      + n_miss * self.cost.line_fill)
        self._data[0, sets].reshape(-1)[
            first_word:first_word + n_words] = values
        self.counters.write_hits += n_words - n_miss
        self.counters.write_misses += n_miss
        if self.geo.write_through:
            self.memory.write_words(paddr, values)
            cycles += n_words * self.cost.write_back
            if self.hierarchy is not None:
                # Every run line was filled whole before the store, so
                # after the memory write each equals memory: re-stamp.
                self.hierarchy.note_memory_write_range(int(want[0]),
                                                       int(want[-1]))
                self._fill_epoch[0, sets] = self.hierarchy.epochs_of(want)
        else:
            self._dirty[0, sets] = True
        self.clock.advance(cycles)
        self._lru[0, sets] = self._tick + np.cumsum(counts)
        self._tick += n_words

    # ---- page-granularity helpers -------------------------------------------

    def _page_sets(self, cache_page: int) -> slice:
        if not 0 <= cache_page < self.geo.num_cache_pages:
            raise AddressError(f"cache page {cache_page} out of range")
        lpp = self.geo.lines_per_page
        return slice(cache_page * lpp, (cache_page + 1) * lpp)

    def _page_tags(self, pa_page_base: int) -> np.ndarray:
        """Tags of the lines of physical page based at ``pa_page_base``, in
        page-offset order — which is also set order within a cache page,
        because index bits below the page size come from the page offset.

        The arrays are memoized per page base (and returned read-only):
        every flush/purge/page-op of the same frame reuses one allocation.
        """
        tags = self._page_tags_cache.get(pa_page_base)
        if tags is None:
            if pa_page_base % self.geo.page_size:
                raise AddressError("physical page base must be page aligned")
            first = pa_page_base // self.geo.line_size
            tags = np.arange(first, first + self.geo.lines_per_page,
                             dtype=np.int64)
            tags.flags.writeable = False
            self._page_tags_cache[pa_page_base] = tags
        return tags

    def cache_page_of(self, vaddr: int, paddr: int | None = None) -> int:
        """Cache page an address maps to under this cache's indexing mode."""
        if self.geo.physically_indexed:
            if paddr is None:
                raise AddressError("physically indexed cache needs the paddr")
            return self.geo.cache_page(paddr)
        return self.geo.cache_page(vaddr)

    # ---- flush / purge (the two operations the 720 exports, Section 1.1) ---

    def flush_page_frame(self, cache_page: int, pa_page_base: int,
                         reason: Reason = Reason.EXPLICIT) -> int:
        """Flush every line of physical page ``pa_page_base`` resident in
        cache page ``cache_page``: write back the dirty ones, invalidate all
        matches.  Returns the number of resident lines found.

        Cost model: resident lines cost :attr:`CostModel.flush_line_hit`,
        absent ones :attr:`CostModel.flush_line_miss` — the paper's
        "up to seven times slower when the data is in the cache".
        """
        sets = self._page_sets(cache_page)
        want = self._page_tags(pa_page_base)
        match = self._tags[:, sets] == want            # (ways, lines_per_page)
        hits = int(match.sum())
        dirty_match = match & self._dirty[:, sets]
        n_dirty = int(dirty_match.sum())
        if n_dirty:
            # A physical line is unique within a set, so at most one way
            # matches per line index: the scatter targets are distinct and
            # the vectorized write-back is order-independent.
            ways, lines = np.nonzero(dirty_match)
            self.memory.write_lines(want[lines], self._data[:, sets][ways, lines],
                                    self.geo.words_per_line)
            self.counters.write_backs += n_dirty
            if self.hierarchy is not None:
                for tag in want[lines]:
                    self.hierarchy.note_memory_write(int(tag))
        self._tags[:, sets][match] = _INVALID
        self._dirty[:, sets][match] = False
        if self.exact_management:
            cycles = (hits * self.cost.flush_line_hit
                      + n_dirty * self.cost.write_back)
        else:
            lpp = self.geo.lines_per_page
            cycles = (hits * self.cost.flush_line_hit
                      + (lpp - hits) * self.cost.flush_line_miss
                      + n_dirty * self.cost.write_back)
        self.clock.advance(cycles)
        self.counters.record_flush(self.name, reason, cycles)
        if self.bus is not None and self.bus.enabled:
            self.bus.publish("flush", cache=self.name, cache_page=cache_page,
                             frame=pa_page_base // self.geo.page_size,
                             reason=str(reason), resident=hits,
                             cost_cycles=cycles)
        return hits

    def purge_page_frame(self, cache_page: int, pa_page_base: int,
                         reason: Reason = Reason.EXPLICIT) -> int:
        """Invalidate, without write-back, every line of the physical page
        resident in ``cache_page``.  Returns the number of lines discarded.

        The 720's instruction cache purges in constant time regardless of
        contents (Section 5.1); that quirk is modeled here.
        """
        sets = self._page_sets(cache_page)
        want = self._page_tags(pa_page_base)
        match = self._tags[:, sets] == want
        hits = int(match.sum())
        self._tags[:, sets][match] = _INVALID
        self._dirty[:, sets][match] = False
        if self.is_icache:
            cycles = self.cost.icache_purge_page
        elif self.exact_management:
            cycles = hits * self.cost.purge_line_hit
        else:
            lpp = self.geo.lines_per_page
            cycles = (hits * self.cost.purge_line_hit
                      + (lpp - hits) * self.cost.purge_line_miss)
        self.clock.advance(cycles)
        self.counters.record_purge(self.name, reason, cycles)
        if self.bus is not None and self.bus.enabled:
            self.bus.publish("purge", cache=self.name, cache_page=cache_page,
                             frame=pa_page_base // self.geo.page_size,
                             reason=str(reason), resident=hits,
                             cost_cycles=cycles)
        return hits

    # ---- vectorized whole-page data movement --------------------------------

    def read_page(self, va_page_base: int, pa_page_base: int) -> np.ndarray:
        """Read one whole page through the cache (equivalent to a word loop).

        Missing lines are filled (evicting victims); the returned array is
        the page's current contents as the CPU would observe them.
        """
        self._check_page_pair(va_page_base, pa_page_base)
        if self.geo.associativity > 1:
            return self._read_page_slow(va_page_base, pa_page_base)
        cp = self.cache_page_of(va_page_base, pa_page_base)
        sets = self._page_sets(cp)
        want = self._page_tags(pa_page_base)
        tags = self._tags[0, sets]
        match = tags == want
        misses = ~match
        n_miss = int(misses.sum())
        n_hit = self.geo.lines_per_page - n_miss
        if self.hierarchy is not None:
            self._service_lines(sets, want, misses)
            self.clock.advance(n_hit * self.geo.words_per_line
                               * self.cost.cache_hit)
        else:
            # evict dirty victims occupying the sets we are about to fill
            victims = misses & (tags != _INVALID) & self._dirty[0, sets]
            self._write_back_victims(sets, victims)
            # fill the missing lines from memory
            mem_page = self.memory.read_page(pa_page_base // self.geo.page_size)
            lines = mem_page.reshape(self.geo.lines_per_page,
                                     self.geo.words_per_line)
            self._data[0, sets][misses] = lines[misses]
            self._tags[0, sets] = want
            self._dirty[0, sets][misses] = False
            self.clock.advance(n_hit * self.geo.words_per_line
                               * self.cost.cache_hit
                               + n_miss * self.cost.line_fill)
        self.counters.read_hits += n_hit
        self.counters.read_misses += n_miss
        return self._data[0, sets].reshape(-1).copy()

    def write_page(self, va_page_base: int, pa_page_base: int,
                   values: np.ndarray) -> None:
        """Overwrite one whole page through the cache (word-loop equivalent).

        Because every line is written in full, no fill is needed
        (write-allocate without fetch); dirty victims are written back
        first.  In write-through mode the values also reach memory and no
        line is left dirty.
        """
        self._check_page_pair(va_page_base, pa_page_base)
        if len(values) != self.geo.words_per_page:
            raise AddressError("write_page requires exactly one page of words")
        if self.geo.associativity > 1:
            self._write_page_slow(va_page_base, pa_page_base, values)
            return
        cp = self.cache_page_of(va_page_base, pa_page_base)
        sets = self._page_sets(cp)
        want = self._page_tags(pa_page_base)
        tags = self._tags[0, sets]
        if self.hierarchy is not None:
            # Evict (and possibly capture below) every non-matching valid
            # line; matching lines are overwritten in place, needing no
            # fill because the whole line is replaced.
            stale = (tags != want) & (tags != _INVALID)
            for i in np.flatnonzero(stale):
                self._evict(0, sets.start + int(i))
        else:
            victims = (tags != want) & (tags != _INVALID) & self._dirty[0, sets]
            self._write_back_victims(sets, victims)
        self._tags[0, sets] = want
        self._data[0, sets] = np.asarray(values, dtype=np.uint64).reshape(
            self.geo.lines_per_page, self.geo.words_per_line)
        n_words = self.geo.words_per_page
        if self.geo.write_through:
            self._dirty[0, sets] = False
            self.memory.write_page(pa_page_base // self.geo.page_size,
                                   np.asarray(values, dtype=np.uint64))
            if self.hierarchy is not None:
                self.hierarchy.invalidate_page(
                    pa_page_base // self.geo.page_size)
                self._fill_epoch[0, sets] = self.hierarchy.epochs_of(want)
            self.clock.advance(n_words * (self.cost.cache_hit
                                          + self.cost.write_back))
        else:
            self._dirty[0, sets] = True
            self.clock.advance(n_words * self.cost.cache_hit)

    def zero_page(self, va_page_base: int, pa_page_base: int) -> None:
        """Zero-fill one page through the cache (Section 4.1 page prep)."""
        self.write_page(va_page_base, pa_page_base,
                        np.zeros(self.geo.words_per_page, dtype=np.uint64))

    def _service_lines(self, sets: slice, want: np.ndarray,
                       misses: np.ndarray) -> None:
        """Evict and fill the missing lines of a run/page one at a time,
        in set order — the order the word loop would service them.

        Used only in hierarchy mode: fills are charged per source level
        (victim hit / L2 hit / memory) inside :meth:`_fill`, and an
        eviction at one set may capture a line that a later set's fill
        then takes from the victim cache, so the seed's batched
        evict-all-then-fill-all shape would not be equivalent here.
        """
        s0 = sets.start
        for i in np.flatnonzero(misses):
            s = s0 + int(i)
            self._evict(0, s)
            self._fill(0, s, int(want[i]))

    def _write_back_victims(self, sets: slice, victims: np.ndarray) -> None:
        n = int(victims.sum())
        if not n:
            return
        idxs = np.flatnonzero(victims)
        tags = self._tags[0, sets][idxs]
        if n == 1 or len(np.unique(tags)) == n:
            self.memory.write_lines(tags, self._data[0, sets][idxs],
                                    self.geo.words_per_line)
        else:
            # Two sets hold dirty copies of the same physical line (the
            # doubly-dirty alias hazard): preserve the word loop's
            # last-writer-wins order, which a vectorized scatter with
            # duplicate indices would not guarantee.
            for line in idxs:
                tag = int(self._tags[0, sets][line])
                self.memory.write_line(tag * self.geo.line_size,
                                       self._data[0, sets][line])
        self.counters.write_backs += n
        self.clock.advance(n * self.cost.write_back)

    # ---- slow generic paths for associative caches ---------------------------

    def _read_page_slow(self, va_base: int, pa_base: int) -> np.ndarray:
        out = np.empty(self.geo.words_per_page, dtype=np.uint64)
        for i in range(self.geo.words_per_page):
            off = i * WORD_SIZE
            out[i] = self.read(va_base + off, pa_base + off)
        return out

    def _write_page_slow(self, va_base: int, pa_base: int,
                         values: np.ndarray) -> None:
        for i in range(self.geo.words_per_page):
            off = i * WORD_SIZE
            self.write(va_base + off, pa_base + off, int(values[i]))

    def _check_page_pair(self, va_base: int, pa_base: int) -> None:
        if va_base % self.geo.page_size or pa_base % self.geo.page_size:
            raise AddressError("page operations require page-aligned addresses")

    # ---- coherence snooping (the Section 3.3 multiprocessor extension) -------

    def snoop(self, set_idx: int, tag: int, invalidate: bool,
              write_back: bool = True) -> str | None:
        """A coherence probe from another cache in a coherent cluster.

        Looks for the physical line ``tag`` in set ``set_idx`` (the
        "equivalent cache line", Section 3.3).  If found: a dirty copy is
        written back to memory; with ``invalidate`` the copy is dropped
        (another processor is about to write), otherwise it is left clean
        (another processor is about to read).

        ``write_back=False`` suppresses the dirty write-back — no real
        protocol does this; it exists so the fault injector can model a
        lost coherence write-back (``smp.snoop.writeback.lost``).

        Returns None (not resident), "clean" or "dirty" for what was found.
        """
        way = self._find_way(set_idx, tag)
        if way is None:
            return None
        found = "dirty" if self._dirty[way, set_idx] else "clean"
        if self._dirty[way, set_idx]:
            if write_back:
                self._write_back_line(way, set_idx)
            elif self._fill_epoch is not None:
                # Injected lost write-back: the line is about to be marked
                # clean while disagreeing with memory.  Make sure it can
                # never be captured into the lower hierarchy.
                self._fill_epoch[way, set_idx] = -1
            self._dirty[way, set_idx] = False
        if invalidate:
            self._tags[way, set_idx] = _INVALID
        return found

    def probe_run(self, vaddr: int, paddr: int, n_words: int) -> tuple[int, int]:
        """Count (resident, dirty) equivalent lines of a run, mutating
        nothing — the cluster asks this before deciding whether a snoop
        (or an injected snoop race) is even relevant."""
        geo = self.geo
        if geo.associativity > 1:
            found = dirty = 0
            first_tag = paddr // geo.line_size
            last_off = (n_words - 1) * WORD_SIZE
            n_lines = (paddr + last_off) // geo.line_size - first_tag + 1
            base = vaddr - (vaddr % geo.line_size)
            for i in range(n_lines):
                set_idx = self._set_of(base + i * geo.line_size,
                                       (first_tag + i) * geo.line_size)
                way = self._find_way(set_idx, first_tag + i)
                if way is not None:
                    found += 1
                    if self._dirty[way, set_idx]:
                        dirty += 1
            return found, dirty
        sets, want, _counts, _first, _n = self._run_shape(vaddr, paddr, n_words)
        hit = self._tags[0, sets] == want
        return int(hit.sum()), int((hit & self._dirty[0, sets]).sum())

    def snoop_run(self, vaddr: int, paddr: int, n_words: int,
                  invalidate: bool, write_back: bool = True) -> tuple[int, int]:
        """Vectorized coherence probe for a whole run (or page) at once.

        Semantically identical to calling :meth:`snoop` per line of the
        run; returns ``(resident, dirty)`` line counts so the cluster can
        account coherence traffic.  Snoop probes themselves are free on
        the shared clock (the bus runs them in parallel with the access);
        only dirty write-backs cost cycles, exactly as a victim
        write-back does.
        """
        geo = self.geo
        if geo.associativity > 1 or self.hierarchy is not None:
            found = dirty = 0
            first_tag = paddr // geo.line_size
            last_off = (n_words - 1) * WORD_SIZE
            n_lines = (paddr + last_off) // geo.line_size - first_tag + 1
            base = vaddr - (vaddr % geo.line_size)
            for i in range(n_lines):
                set_idx = self._set_of(base + i * geo.line_size,
                                       (first_tag + i) * geo.line_size)
                got = self.snoop(set_idx, first_tag + i, invalidate,
                                 write_back=write_back)
                if got is not None:
                    found += 1
                    if got == "dirty":
                        dirty += 1
            return found, dirty
        sets, want, _counts, _first, _n = self._run_shape(vaddr, paddr, n_words)
        tags = self._tags[0, sets]
        hit = tags == want
        n_found = int(hit.sum())
        if not n_found:
            return 0, 0
        dirty_view = self._dirty[0, sets]
        dirty_mask = hit & dirty_view
        n_dirty = int(dirty_mask.sum())
        if n_dirty:
            if write_back:
                idxs = np.flatnonzero(dirty_mask)
                # want is a strictly increasing arange, so no duplicate
                # tags: the vectorized scatter is order-safe here.
                self.memory.write_lines(want[idxs], self._data[0, sets][idxs],
                                        geo.words_per_line)
                self.counters.write_backs += n_dirty
                self.clock.advance(n_dirty * self.cost.write_back)
            dirty_view[dirty_mask] = False
        if invalidate:
            self._tags[0, sets][hit] = _INVALID
        return n_found, n_dirty

    # ---- inspection (tests, invariant checks) --------------------------------

    def resident_lines(self, cache_page: int, pa_page_base: int) -> int:
        """How many lines of the physical page are resident in ``cache_page``."""
        sets = self._page_sets(cache_page)
        want = self._page_tags(pa_page_base)
        return int((self._tags[:, sets] == want).sum())

    def dirty_lines(self, cache_page: int, pa_page_base: int) -> int:
        sets = self._page_sets(cache_page)
        want = self._page_tags(pa_page_base)
        return int(((self._tags[:, sets] == want)
                    & self._dirty[:, sets]).sum())

    def dirty_cache_pages(self, pa_page_base: int) -> list[int]:
        """Cache pages currently holding dirty lines of the physical page."""
        return [cp for cp in range(self.geo.num_cache_pages)
                if self.dirty_lines(cp, pa_page_base)]

    def line_value(self, cache_page: int, pa_page_base: int,
                   line: int) -> np.ndarray | None:
        """The cached contents of one line, or None if not resident."""
        sets = self._page_sets(cache_page)
        want = self._page_tags(pa_page_base)
        for way in range(self.geo.associativity):
            if self._tags[way, sets][line] == want[line]:
                return self._data[way, sets][line].copy()
        return None

    def invalidate_all(self) -> None:
        """Power-up purge of the whole cache (Section 3.2: initially all
        lines are Empty; 'the cache can be purged to ensure this')."""
        self._tags[:] = _INVALID
        self._dirty[:] = False
