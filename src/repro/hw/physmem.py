"""Word-addressable physical memory.

Memory contents are simulated for real: every CPU store, cache write-back
and DMA transfer moves actual word values, so inconsistencies (stale reads,
lost write-backs, shadowed DMA data) manifest as wrong values rather than
as abstract flags.  The staleness oracle (:mod:`repro.core.oracle`)
exploits this to check the paper's correctness condition directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AddressError
from repro.hw.params import WORD_SIZE


class PhysicalMemory:
    """A flat array of physical page frames holding 32-bit words.

    Addresses given to this class are *physical byte addresses*; they must
    be word aligned for word operations and page aligned for page
    operations.
    """

    def __init__(self, num_pages: int, page_size: int):
        self.num_pages = num_pages
        self.page_size = page_size
        self.words_per_page = page_size // WORD_SIZE
        self.size = num_pages * page_size
        self._words = np.zeros(num_pages * self.words_per_page, dtype=np.uint64)

    # ---- address helpers ---------------------------------------------------

    def _word_index(self, paddr: int) -> int:
        if paddr % WORD_SIZE:
            raise AddressError(f"physical address {paddr:#x} is not word aligned")
        if not 0 <= paddr < self.size:
            raise AddressError(f"physical address {paddr:#x} out of range")
        return paddr // WORD_SIZE

    def _page_word_range(self, ppage: int) -> slice:
        if not 0 <= ppage < self.num_pages:
            raise AddressError(f"physical page {ppage} out of range")
        start = ppage * self.words_per_page
        return slice(start, start + self.words_per_page)

    def page_base(self, ppage: int) -> int:
        """Physical byte address of the first byte of frame ``ppage``."""
        if not 0 <= ppage < self.num_pages:
            raise AddressError(f"physical page {ppage} out of range")
        return ppage * self.page_size

    def page_of(self, paddr: int) -> int:
        """Physical page frame number containing byte address ``paddr``."""
        if not 0 <= paddr < self.size:
            raise AddressError(f"physical address {paddr:#x} out of range")
        return paddr // self.page_size

    # ---- word access -------------------------------------------------------

    def read_word(self, paddr: int) -> int:
        return int(self._words[self._word_index(paddr)])

    def write_word(self, paddr: int, value: int) -> None:
        self._words[self._word_index(paddr)] = np.uint64(value)

    # ---- contiguous runs (used by the block access engine) ------------------

    def read_words(self, paddr: int, n_words: int) -> np.ndarray:
        idx = self._word_index(paddr)
        if idx + n_words > len(self._words):
            raise AddressError(f"run of {n_words} words at {paddr:#x} "
                               "runs off the end of memory")
        return self._words[idx:idx + n_words].copy()

    def write_words(self, paddr: int, values: np.ndarray) -> None:
        idx = self._word_index(paddr)
        if idx + len(values) > len(self._words):
            raise AddressError(f"run of {len(values)} words at {paddr:#x} "
                               "runs off the end of memory")
        self._words[idx:idx + len(values)] = values

    # ---- line access (used by the caches for fills and write-backs) --------

    def read_line(self, paddr: int, words_per_line: int) -> np.ndarray:
        idx = self._word_index(paddr)
        return self._words[idx:idx + words_per_line].copy()

    def write_line(self, paddr: int, values: np.ndarray) -> None:
        idx = self._word_index(paddr)
        self._words[idx:idx + len(values)] = values

    def read_lines(self, tags: np.ndarray, words_per_line: int) -> np.ndarray:
        """Gather whole cache lines by physical line number (vectorized
        fills: one fancy-indexed read instead of a per-line loop)."""
        return self._words.reshape(-1, words_per_line)[tags]

    def write_lines(self, tags: np.ndarray, values: np.ndarray,
                    words_per_line: int) -> None:
        """Scatter whole cache lines by physical line number (vectorized
        write-backs).  With duplicate tags the store order is unspecified;
        callers needing last-writer-wins must deduplicate first."""
        self._words.reshape(-1, words_per_line)[tags] = values

    # ---- page access (used by DMA and by vectorized cache page ops) --------

    def read_page(self, ppage: int) -> np.ndarray:
        return self._words[self._page_word_range(ppage)].copy()

    def write_page(self, ppage: int, values: np.ndarray) -> None:
        rng = self._page_word_range(ppage)
        if len(values) != self.words_per_page:
            raise AddressError("page write requires exactly one page of words")
        self._words[rng] = values

    def zero_page(self, ppage: int) -> None:
        self._words[self._page_word_range(ppage)] = 0

    # ---- views for the oracle ----------------------------------------------

    def page_view(self, ppage: int) -> np.ndarray:
        """A read-only view of a page's words (no copy)."""
        view = self._words[self._page_word_range(ppage)]
        view.flags.writeable = False
        return view
