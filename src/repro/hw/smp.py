"""Cache-coherent multiprocessor extension (Section 3.3).

"The caches in a cache-coherent multiprocessor can be viewed as a
distributed set-associative cache.  Equivalent cache lines from each
processor constitute an element of a set, while hardware ensures
inter-cache (intraset) consistency.  As with set-associative caches, no
changes to the transition rules are required."

:class:`CoherentCluster` implements exactly that hardware: ``n`` per-CPU
virtually indexed, physically tagged, write-back caches over one shared
physical memory, kept coherent by a write-invalidate (MSI-style) snoop
protocol *per equivalent line* — i.e. per (set index, physical tag).

Scope matches the paper's claim precisely: hardware resolves sharing
between processors that access data through **aligned** virtual
addresses (the same set); sharing through *unaligned* aliases remains a
software problem, governed by the unchanged Table 2 rules — on a
multiprocessor just as on a uniprocessor.  The tests demonstrate both
halves.

Two additions make the cluster drivable by the whole stack:

* **Snoop-race injection.**  The cluster holds an optional fault
  ``injector`` and consults it only when a peer copy makes a race
  observable (so every audit record is consequential by construction):
  a dropped invalidation, a lost read-snoop write-back (the reader
  fills from stale memory), a lost coherence write-back (dirty data
  discarded), and a misrouted invalidation that hits the equivalent
  line one cache page over while the real copy survives.
* **:class:`SmpDataCache`** — a facade giving the cluster the single
  ``dcache`` surface the :class:`~repro.hw.machine.Machine` expects, so
  pmap, kernel, oracle and monitors run unchanged; accesses route to
  ``current_cpu`` and management operations act cluster-wide.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.cache import Cache
from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters, Reason


class CoherentCluster:
    """``n`` coherent virtually indexed caches over one memory."""

    def __init__(self, n_cpus: int, geometry: CacheGeometry,
                 memory: PhysicalMemory, cost: CostModel, clock: Clock,
                 counters: Counters, hierarchy=None):
        if n_cpus < 1:
            raise ConfigurationError("a cluster needs at least one CPU")
        self.geometry = geometry
        self.memory = memory
        self.cost = cost
        self.clock = clock
        self.counters = counters
        # One shared lower hierarchy (victim/L2) below all CPUs: it is
        # physically addressed and holds only memory-equal copies, so it
        # needs no per-CPU instance and no snoop protocol of its own.
        self.hierarchy = hierarchy
        self.caches = [Cache(geometry, memory, cost, clock, counters,
                             name=f"cpu{i}.dcache", hierarchy=hierarchy)
                       for i in range(n_cpus)]
        # Fault injection: None by default so the snoop hot path pays one
        # identity check (same contract as pmap/dma/disk/tlb).
        self.injector = None

    def __len__(self) -> int:
        return len(self.caches)

    # Coherence traffic lives in the shared Counters so metrics export,
    # the profiler and chaos reports all see it; these properties keep
    # the original cluster-local read surface.

    @property
    def coherence_invalidations(self) -> int:
        return self.counters.coherence_invalidations

    @property
    def coherence_writebacks(self) -> int:
        return self.counters.coherence_writebacks

    # ---- snoop-race injection ----------------------------------------------------

    def _race(self, cpu: int, victim: int, paddr: int, invalidate: bool,
              dirty: bool) -> str | None:
        """Ask the injector whether this (relevant) snoop races.

        Called only when the victim holds an equivalent copy, so a firing
        always matters: the record is marked consequential and its frame
        joins :meth:`FaultInjector.consistency_frames`.  Returns the race
        kind to deliver, or None for a faithful snoop.
        """
        inj = self.injector
        if inj is None:
            return None
        detail = dict(ppage=paddr // self.geometry.page_size,
                      cpu=cpu, victim=victim)
        if invalidate:
            if dirty:
                rec = inj.fires("smp.snoop.writeback.lost", **detail)
                if rec is not None:
                    rec.consequential = True
                    return "lost"
            rec = inj.fires("smp.snoop.invalidate.drop", **detail)
            if rec is not None:
                rec.consequential = True
                return "drop"
            rec = inj.fires("smp.snoop.invalidate.misroute", **detail)
            if rec is not None:
                rec.consequential = True
                return "misroute"
        elif dirty:
            rec = inj.fires("smp.snoop.writeback.stale", **detail)
            if rec is not None:
                rec.consequential = True
                return "stale"
        return None

    # ---- snoop protocol ----------------------------------------------------------

    def _snoop_others(self, cpu: int, vaddr: int, paddr: int,
                      invalidate: bool) -> None:
        geo = self.geometry
        set_idx = geo.set_index(paddr if geo.physically_indexed else vaddr)
        tag = paddr // geo.line_size
        counters = self.counters
        for i, cache in enumerate(self.caches):
            if i == cpu:
                continue
            race = None
            if self.injector is not None:
                way = cache._find_way(set_idx, tag)
                if way is None:
                    continue        # no copy: nothing to snoop or to race
                race = self._race(cpu, i, paddr, invalidate,
                                  bool(cache._dirty[way, set_idx]))
            if race is None:
                found = cache.snoop(set_idx, tag, invalidate)
                if found == "dirty":
                    counters.coherence_writebacks += 1
                if found is not None and invalidate:
                    counters.coherence_invalidations += 1
            elif race == "lost":
                # Invalidate without the write-back: the dirty words die.
                cache.snoop(set_idx, tag, invalidate, write_back=False)
                counters.coherence_invalidations += 1
            elif race == "misroute":
                # The probe lands one cache page over.  Same physical tag,
                # so it can only hit an unaligned alias of the same line —
                # which it handles faithfully — while the intended copy
                # survives.  (With one cache page the wrong set wraps back
                # to the right one and the race degrades to a clean snoop.)
                wrong = (set_idx + geo.lines_per_page) % geo.num_sets
                found = cache.snoop(wrong, tag, invalidate)
                if found == "dirty":
                    counters.coherence_writebacks += 1
                if found is not None and invalidate:
                    counters.coherence_invalidations += 1
            # "drop" and "stale": the snoop never arrives at this peer.

    def _snoop_run_others(self, cpu: int, vaddr: int, paddr: int,
                          n_words: int, invalidate: bool) -> None:
        counters = self.counters
        for i, cache in enumerate(self.caches):
            if i == cpu:
                continue
            race = None
            if self.injector is not None:
                resident, dirty = cache.probe_run(vaddr, paddr, n_words)
                if not resident:
                    continue
                # One race decision per peer per run — the whole run's
                # snoop is a single bus transaction in this model.
                race = self._race(cpu, i, paddr, invalidate, dirty > 0)
            if race is None:
                found, dirty = cache.snoop_run(vaddr, paddr, n_words,
                                               invalidate)
                counters.coherence_writebacks += dirty
                if invalidate:
                    counters.coherence_invalidations += found
            elif race == "lost":
                found, _ = cache.snoop_run(vaddr, paddr, n_words,
                                           invalidate, write_back=False)
                counters.coherence_invalidations += found
            elif race == "misroute":
                found, dirty = cache.snoop_run(
                    vaddr + self.geometry.page_size, paddr, n_words,
                    invalidate)
                counters.coherence_writebacks += dirty
                if invalidate:
                    counters.coherence_invalidations += found
            # "drop" and "stale": skipped entirely.

    # ---- CPU accesses --------------------------------------------------------------

    def read(self, cpu: int, vaddr: int, paddr: int) -> int:
        """Load on ``cpu``: a remote dirty equivalent line is written back
        (and left clean/shared) before the local access."""
        self._snoop_others(cpu, vaddr, paddr, invalidate=False)
        return self.caches[cpu].read(vaddr, paddr)

    def write(self, cpu: int, vaddr: int, paddr: int, value: int) -> None:
        """Store on ``cpu``: remote equivalent copies are invalidated
        (dirty ones written back first), keeping a single-writer
        invariant per equivalent line."""
        self._snoop_others(cpu, vaddr, paddr, invalidate=True)
        self.caches[cpu].write(vaddr, paddr, value)

    def read_run(self, cpu: int, vaddr: int, paddr: int, n_words: int):
        self._snoop_run_others(cpu, vaddr, paddr, n_words, invalidate=False)
        return self.caches[cpu].read_run(vaddr, paddr, n_words)

    def write_run(self, cpu: int, vaddr: int, paddr: int, values) -> None:
        self._snoop_run_others(cpu, vaddr, paddr, len(values),
                               invalidate=True)
        self.caches[cpu].write_run(vaddr, paddr, values)

    def read_page(self, cpu: int, va_page_base: int, pa_page_base: int):
        self._snoop_run_others(cpu, va_page_base, pa_page_base,
                               self.geometry.words_per_page,
                               invalidate=False)
        return self.caches[cpu].read_page(va_page_base, pa_page_base)

    def write_page(self, cpu: int, va_page_base: int, pa_page_base: int,
                   values) -> None:
        self._snoop_run_others(cpu, va_page_base, pa_page_base,
                               self.geometry.words_per_page,
                               invalidate=True)
        self.caches[cpu].write_page(va_page_base, pa_page_base, values)

    def zero_page(self, cpu: int, va_page_base: int,
                  pa_page_base: int) -> None:
        self._snoop_run_others(cpu, va_page_base, pa_page_base,
                               self.geometry.words_per_page,
                               invalidate=True)
        self.caches[cpu].zero_page(va_page_base, pa_page_base)

    # ---- cluster-wide cache management ------------------------------------------------

    def flush_page_frame(self, cache_page: int, pa_page_base: int,
                         reason) -> int:
        """Flush the physical page out of every cache in the cluster —
        what the unchanged software rules invoke on this hardware."""
        return sum(cache.flush_page_frame(cache_page, pa_page_base, reason)
                   for cache in self.caches)

    def purge_page_frame(self, cache_page: int, pa_page_base: int,
                         reason) -> int:
        return sum(cache.purge_page_frame(cache_page, pa_page_base, reason)
                   for cache in self.caches)

    # ---- invariants --------------------------------------------------------------------

    def dirty_copies(self, set_idx: int, tag: int) -> int:
        """How many caches hold a dirty copy of an equivalent line (the
        hardware invariant says at most one)."""
        count = 0
        for cache in self.caches:
            way = cache._find_way(set_idx, tag)
            if way is not None and cache._dirty[way, set_idx]:
                count += 1
        return count

    def resident_copies(self, set_idx: int, tag: int) -> int:
        return sum(1 for cache in self.caches
                   if cache._find_way(set_idx, tag) is not None)


class SmpDataCache:
    """The cluster behind the machine's single-``dcache`` surface.

    The machine, pmap, kernel, oracle and monitors all speak to one
    ``dcache`` object.  On a multiprocessor this facade stands in for
    it: the machine sets :attr:`current_cpu` from the faulting task's
    CPU binding before each access, access paths snoop the peers and
    delegate to that CPU's cache, and management operations (flush,
    purge, invalidate) act cluster-wide — the kernel's consistency rules
    are CPU-agnostic, exactly as Section 3.3 requires.

    Delegation resolves ``cluster.caches[cpu]`` methods at call time, so
    per-CPU conformance monitors that rebind methods on the underlying
    caches keep intercepting traffic routed through the facade.
    """

    is_icache = False

    def __init__(self, cluster: CoherentCluster):
        self.cluster = cluster
        self.geo = cluster.geometry
        self.memory = cluster.memory
        self.cost = cluster.cost
        self.clock = cluster.clock
        self.counters = cluster.counters
        self.name = "dcache"
        self.current_cpu = 0

    @property
    def bus(self):
        return self.cluster.caches[0].bus

    @bus.setter
    def bus(self, bus) -> None:
        for cache in self.cluster.caches:
            cache.bus = bus

    # ---- accesses (routed to the current CPU) -------------------------------

    def read(self, vaddr: int, paddr: int) -> int:
        return self.cluster.read(self.current_cpu, vaddr, paddr)

    def write(self, vaddr: int, paddr: int, value: int) -> None:
        self.cluster.write(self.current_cpu, vaddr, paddr, value)

    def read_run(self, vaddr: int, paddr: int, n_words: int):
        return self.cluster.read_run(self.current_cpu, vaddr, paddr, n_words)

    def write_run(self, vaddr: int, paddr: int, values) -> None:
        self.cluster.write_run(self.current_cpu, vaddr, paddr, values)

    def read_page(self, va_page_base: int, pa_page_base: int):
        return self.cluster.read_page(self.current_cpu, va_page_base,
                                      pa_page_base)

    def write_page(self, va_page_base: int, pa_page_base: int,
                   values) -> None:
        self.cluster.write_page(self.current_cpu, va_page_base,
                                pa_page_base, values)

    def zero_page(self, va_page_base: int, pa_page_base: int) -> None:
        self.cluster.zero_page(self.current_cpu, va_page_base, pa_page_base)

    # ---- management and inspection (cluster-wide) ---------------------------

    def cache_page_of(self, vaddr: int, paddr: int | None = None) -> int:
        return self.cluster.caches[0].cache_page_of(vaddr, paddr)

    def flush_page_frame(self, cache_page: int, pa_page_base: int,
                         reason: Reason = Reason.EXPLICIT) -> int:
        return self.cluster.flush_page_frame(cache_page, pa_page_base, reason)

    def purge_page_frame(self, cache_page: int, pa_page_base: int,
                         reason: Reason = Reason.EXPLICIT) -> int:
        return self.cluster.purge_page_frame(cache_page, pa_page_base, reason)

    def resident_lines(self, cache_page: int, pa_page_base: int) -> int:
        return sum(cache.resident_lines(cache_page, pa_page_base)
                   for cache in self.cluster.caches)

    def dirty_lines(self, cache_page: int, pa_page_base: int) -> int:
        return sum(cache.dirty_lines(cache_page, pa_page_base)
                   for cache in self.cluster.caches)

    def dirty_cache_pages(self, pa_page_base: int) -> list[int]:
        pages: set[int] = set()
        for cache in self.cluster.caches:
            pages.update(cache.dirty_cache_pages(pa_page_base))
        return sorted(pages)

    def line_value(self, cache_page: int, pa_page_base: int, line: int):
        # The snoop protocol keeps at most one dirty copy; for clean
        # copies any resident one is as good as another.
        for cache in self.cluster.caches:
            value = cache.line_value(cache_page, pa_page_base, line)
            if value is not None:
                return value
        return None

    def invalidate_all(self) -> None:
        for cache in self.cluster.caches:
            cache.invalidate_all()
