"""Cache-coherent multiprocessor extension (Section 3.3).

"The caches in a cache-coherent multiprocessor can be viewed as a
distributed set-associative cache.  Equivalent cache lines from each
processor constitute an element of a set, while hardware ensures
inter-cache (intraset) consistency.  As with set-associative caches, no
changes to the transition rules are required."

:class:`CoherentCluster` implements exactly that hardware: ``n`` per-CPU
virtually indexed, physically tagged, write-back caches over one shared
physical memory, kept coherent by a write-invalidate (MSI-style) snoop
protocol *per equivalent line* — i.e. per (set index, physical tag).

Scope matches the paper's claim precisely: hardware resolves sharing
between processors that access data through **aligned** virtual
addresses (the same set); sharing through *unaligned* aliases remains a
software problem, governed by the unchanged Table 2 rules — on a
multiprocessor just as on a uniprocessor.  The tests demonstrate both
halves.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.cache import Cache
from repro.hw.params import CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters


class CoherentCluster:
    """``n`` coherent virtually indexed caches over one memory."""

    def __init__(self, n_cpus: int, geometry: CacheGeometry,
                 memory: PhysicalMemory, cost: CostModel, clock: Clock,
                 counters: Counters):
        if n_cpus < 1:
            raise ConfigurationError("a cluster needs at least one CPU")
        self.geometry = geometry
        self.memory = memory
        self.cost = cost
        self.clock = clock
        self.counters = counters
        self.caches = [Cache(geometry, memory, cost, clock, counters,
                             name=f"cpu{i}.dcache")
                       for i in range(n_cpus)]
        self.coherence_invalidations = 0
        self.coherence_writebacks = 0

    def __len__(self) -> int:
        return len(self.caches)

    # ---- snoop protocol ----------------------------------------------------------

    def _snoop_others(self, cpu: int, vaddr: int, paddr: int,
                      invalidate: bool) -> None:
        set_idx = self.geometry.set_index(paddr if
                                          self.geometry.physically_indexed
                                          else vaddr)
        tag = paddr // self.geometry.line_size
        for i, cache in enumerate(self.caches):
            if i == cpu:
                continue
            found = cache.snoop(set_idx, tag, invalidate)
            if found == "dirty":
                self.coherence_writebacks += 1
            if found is not None and invalidate:
                self.coherence_invalidations += 1

    # ---- CPU accesses --------------------------------------------------------------

    def read(self, cpu: int, vaddr: int, paddr: int) -> int:
        """Load on ``cpu``: a remote dirty equivalent line is written back
        (and left clean/shared) before the local access."""
        self._snoop_others(cpu, vaddr, paddr, invalidate=False)
        return self.caches[cpu].read(vaddr, paddr)

    def write(self, cpu: int, vaddr: int, paddr: int, value: int) -> None:
        """Store on ``cpu``: remote equivalent copies are invalidated
        (dirty ones written back first), keeping a single-writer
        invariant per equivalent line."""
        self._snoop_others(cpu, vaddr, paddr, invalidate=True)
        self.caches[cpu].write(vaddr, paddr, value)

    # ---- cluster-wide cache management ------------------------------------------------

    def flush_page_frame(self, cache_page: int, pa_page_base: int,
                         reason) -> int:
        """Flush the physical page out of every cache in the cluster —
        what the unchanged software rules invoke on this hardware."""
        return sum(cache.flush_page_frame(cache_page, pa_page_base, reason)
                   for cache in self.caches)

    def purge_page_frame(self, cache_page: int, pa_page_base: int,
                         reason) -> int:
        return sum(cache.purge_page_frame(cache_page, pa_page_base, reason)
                   for cache in self.caches)

    # ---- invariants --------------------------------------------------------------------

    def dirty_copies(self, set_idx: int, tag: int) -> int:
        """How many caches hold a dirty copy of an equivalent line (the
        hardware invariant says at most one)."""
        count = 0
        for cache in self.caches:
            way = cache._find_way(set_idx, tag)
            if way is not None and cache._dirty[way, set_idx]:
                count += 1
        return count

    def resident_copies(self, set_idx: int, tag: int) -> int:
        return sum(1 for cache in self.caches
                   if cache._find_way(set_idx, tag) is not None)
