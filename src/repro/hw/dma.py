"""A DMA engine that bypasses the caches.

On the HP 9000 Series 700, "I/O devices that rely on DMA do not snoop the
cache" (Section 1.1).  The engine therefore reads and writes *physical
memory only*; it is the operating system's job to flush dirty cache data
before a DMA-read and to purge shadowing cache data around a DMA-write
(Section 2.4).  Devices (the disk) call these two entry points.

Naming follows the paper: **DMA-write** transfers data from the device
*into* memory; **DMA-read** transfers data from memory *to* the device.

Transfer verification: the engine models a device whose completion status
reports corrupted or truncated transfers (a checksum over the wire).  A
failed transfer raises :class:`~repro.errors.DmaTransferError`; for a
DMA-write the partial or corrupted data really is in memory (and is noted
to the oracle as such), for a DMA-read no data reaches the device.  The
fault injector drives these failures through the ``dma.transfer.corrupt``
and ``dma.transfer.partial`` points; callers recover by re-issuing the
transfer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AddressError, DmaTransferError
from repro.hw.params import MachineConfig
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters


class DmaEngine:
    """Moves whole pages between devices and physical memory."""

    def __init__(self, memory: PhysicalMemory, config: MachineConfig,
                 clock: Clock, counters: Counters, oracle=None,
                 hierarchy=None):
        self.memory = memory
        self.cost = config.cost
        self.clock = clock
        self.counters = counters
        self.oracle = oracle  # ShadowMemory or None
        # The shared lower cache hierarchy (victim/L2), or None.  DMA does
        # not snoop the L1s (the paper's premise), but the lower levels
        # hold only memory-equal copies, so a DMA-write must drop them —
        # that is physical bookkeeping in the memory system, not the
        # software alias management the paper is about.
        self.hierarchy = hierarchy
        # Optional fault injector (dma.transfer.*); None in normal runs.
        self.injector = None
        # Observability: the machine attaches its EventBus here.
        self.bus = None

    def _charge(self, words: int) -> None:
        self.clock.advance(self.cost.dma_setup + words * self.cost.dma_word)

    def _transfer_fault(self, direction: str,
                        ppage: int) -> tuple["InjectionRecord", str, int] | None:
        """Ask the injector whether this transfer fails; returns
        (record, kind, words transferred) or None."""
        if self.injector is None:
            return None
        wpp = self.memory.words_per_page
        record = self.injector.fires("dma.transfer.corrupt", ppage=ppage,
                                     direction=direction)
        if record is not None:
            return record, "corrupt", wpp
        record = self.injector.fires("dma.transfer.partial", ppage=ppage,
                                     direction=direction)
        if record is not None:
            words = self.injector.rng.randrange(1, wpp)
            record.detail["words"] = words
            return record, "partial", words
        return None

    def dma_write(self, ppage: int, values: np.ndarray) -> None:
        """Device -> memory: deposit one page of device data in frame ``ppage``.

        The caller (the kernel's DMA preparation path) must already have
        ensured no dirty cache line will later overwrite this frame and
        that stale cached copies will not shadow it from the CPU.
        """
        values = np.asarray(values, dtype=np.uint64)
        if len(values) != self.memory.words_per_page:
            raise AddressError("DMA transfers whole pages")
        fault = self._transfer_fault("write", ppage)
        if fault is not None:
            record, kind, words = fault
            delivered = values[:words].copy()
            if kind == "corrupt":
                # Flip bits in one word somewhere in the page.
                index = self.injector.rng.randrange(words)
                delivered[index] ^= np.uint64(
                    self.injector.rng.getrandbits(63) | 1)
            # The damaged prefix really lands in memory; the completion
            # status then reports the failure.  The oracle is told the
            # truth about memory so a later read of the junk (a recovery
            # bug) would not be misreported as a consistency violation.
            pa_base = ppage * self.memory.page_size
            self.memory.write_words(pa_base, delivered)
            if self.hierarchy is not None:
                self.hierarchy.invalidate_page(ppage)
            if self.oracle is not None:
                self.oracle.note_run_write(pa_base, delivered)
            self.counters.dma_writes += 1
            self._charge(words)
            record.resolve("raised")
            if self.bus is not None and self.bus.enabled:
                self.bus.publish("dma-fault", frame=ppage, direction="write",
                                 fault=kind)
            error = DmaTransferError(
                f"DMA-write into frame {ppage} failed verification",
                ppage=ppage, kind=kind,
                words=words if kind == "partial" else None)
            error.record = record
            raise error
        self.memory.write_page(ppage, values)
        if self.hierarchy is not None:
            self.hierarchy.invalidate_page(ppage)
        self.counters.dma_writes += 1
        self._charge(len(values))
        if self.oracle is not None:
            self.oracle.note_dma_write(ppage, values)
        if self.bus is not None and self.bus.enabled:
            self.bus.publish("dma-write", frame=ppage)

    def dma_read(self, ppage: int) -> np.ndarray:
        """Memory -> device: return the page the device observes.

        If the staleness oracle is installed, the observed page is checked
        against the program-order contents: a dirty cache line that was
        never flushed shows up here as a stale transfer (Section 2.4).
        """
        fault = self._transfer_fault("read", ppage)
        if fault is not None:
            record, kind, words = fault
            # The device rejects the transfer at completion; no data is
            # delivered, so there is nothing for the oracle to check.
            self.counters.dma_reads += 1
            self._charge(words)
            record.resolve("raised")
            if self.bus is not None and self.bus.enabled:
                self.bus.publish("dma-fault", frame=ppage, direction="read",
                                 fault=kind)
            error = DmaTransferError(
                f"DMA-read of frame {ppage} failed verification",
                ppage=ppage, kind=kind,
                words=words if kind == "partial" else None)
            error.record = record
            raise error
        values = self.memory.read_page(ppage)
        self.counters.dma_reads += 1
        self._charge(len(values))
        if self.oracle is not None:
            self.oracle.check_dma_read(ppage, values)
        if self.bus is not None and self.bus.enabled:
            self.bus.publish("dma-read", frame=ppage)
        return values
