"""A DMA engine that bypasses the caches.

On the HP 9000 Series 700, "I/O devices that rely on DMA do not snoop the
cache" (Section 1.1).  The engine therefore reads and writes *physical
memory only*; it is the operating system's job to flush dirty cache data
before a DMA-read and to purge shadowing cache data around a DMA-write
(Section 2.4).  Devices (the disk) call these two entry points.

Naming follows the paper: **DMA-write** transfers data from the device
*into* memory; **DMA-read** transfers data from memory *to* the device.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AddressError
from repro.hw.params import MachineConfig
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters


class DmaEngine:
    """Moves whole pages between devices and physical memory."""

    def __init__(self, memory: PhysicalMemory, config: MachineConfig,
                 clock: Clock, counters: Counters, oracle=None):
        self.memory = memory
        self.cost = config.cost
        self.clock = clock
        self.counters = counters
        self.oracle = oracle  # ShadowMemory or None

    def _charge(self, words: int) -> None:
        self.clock.advance(self.cost.dma_setup + words * self.cost.dma_word)

    def dma_write(self, ppage: int, values: np.ndarray) -> None:
        """Device -> memory: deposit one page of device data in frame ``ppage``.

        The caller (the kernel's DMA preparation path) must already have
        ensured no dirty cache line will later overwrite this frame and
        that stale cached copies will not shadow it from the CPU.
        """
        values = np.asarray(values, dtype=np.uint64)
        if len(values) != self.memory.words_per_page:
            raise AddressError("DMA transfers whole pages")
        self.memory.write_page(ppage, values)
        self.counters.dma_writes += 1
        self._charge(len(values))
        if self.oracle is not None:
            self.oracle.note_dma_write(ppage, values)

    def dma_read(self, ppage: int) -> np.ndarray:
        """Memory -> device: return the page the device observes.

        If the staleness oracle is installed, the observed page is checked
        against the program-order contents: a dirty cache line that was
        never flushed shows up here as a stale transfer (Section 2.4).
        """
        values = self.memory.read_page(ppage)
        self.counters.dma_reads += 1
        self._charge(len(values))
        if self.oracle is not None:
            self.oracle.check_dma_read(ppage, values)
        return values
