"""The simulated machine: CPU access paths, TLB, caches, memory, DMA.

The machine implements the HP 9000/700 access pipeline the paper assumes
(Section 1.1): the TLB translates the virtual page in parallel with the
virtually-indexed cache lookup, and the physical frame number is compared
against the cache's physical tag.  In the simulator this appears as:
translate (TLB, falling back to the page tables, falling back to a fault),
then access the cache with both the virtual address (for the index) and
the physical address (for the tag).

The machine knows nothing about consistency policy.  It exposes:

* user-level word accesses (:meth:`read`, :meth:`write`, :meth:`ifetch`)
  that fault into a pluggable handler when the installed protection denies
  the access — the mechanism Section 4 uses to catch state transitions;
* its components (``dcache``, ``icache``, ``memory``, ``dma``, ``tlb``)
  for the machine-dependent OS layer to drive directly.

If consistency checking is enabled, every transferred value is verified
against the staleness oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.oracle import ShadowMemory
from repro.errors import FaultLoopError, ProtectionError
from repro.hw.cache import Cache
from repro.hw.dma import DmaEngine
from repro.hw.hierarchy import CacheHierarchy
from repro.hw.params import WORD_SIZE, MachineConfig
from repro.hw.physmem import PhysicalMemory
from repro.hw.smp import CoherentCluster, SmpDataCache
from repro.hw.stats import Clock, Counters
from repro.hw.tlb import Tlb
from repro.obs.events import EventBus
from repro.prot import AccessKind, Prot

MAX_FAULT_RETRIES = 8


@dataclass(frozen=True)
class FaultInfo:
    """Everything the fault handler learns from the hardware trap."""

    asid: int
    vaddr: int
    access: AccessKind

    @property
    def vpage_addr(self) -> int:
        return self.vaddr  # page derivation needs the page size; handler's job


# (asid, vpage) -> (ppage, prot) or (ppage, prot, uncached) or None
TranslationSource = Callable[[int, int], Optional[tuple]]
FaultHandler = Callable[[FaultInfo], None]


class Machine:
    """A machine with split virtually-indexed I/D caches and DMA.

    ``config.n_cpus == 1`` is the paper's uniprocessor.  With more CPUs
    the data cache becomes a Section 3.3 :class:`CoherentCluster` of
    per-CPU caches behind an :class:`SmpDataCache` facade; accesses are
    routed to the CPU the task's address space is bound to
    (:meth:`bind_cpu`), and the instruction cache stays shared (it is
    never dirty, so it needs no coherence).
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        self.page_size = config.page_size
        self.clock = Clock()
        self.counters = Counters()
        # One event bus for the whole machine (and the kernel built on
        # it); disabled by default so the batched hot paths pay nothing.
        self.bus = EventBus(self.clock)
        self.memory = PhysicalMemory(config.phys_pages, config.page_size)
        self.oracle = (ShadowMemory(config.phys_pages, config.page_size)
                       if config.check_consistency else None)
        # The shared lower hierarchy (victim cache / unified L2), or None
        # for the seed single-level machine.  It is physically addressed,
        # so one instance safely backs all first-level caches.
        self.hierarchy = (CacheHierarchy(self.memory, config.cost,
                                         self.clock, self.counters,
                                         config.dcache.line_size,
                                         victim_lines=config.victim_lines,
                                         l2=config.l2)
                          if config.has_hierarchy else None)
        if config.n_cpus > 1:
            self.cluster = CoherentCluster(config.n_cpus, config.dcache,
                                           self.memory, config.cost,
                                           self.clock, self.counters,
                                           hierarchy=self.hierarchy)
            self.dcache = SmpDataCache(self.cluster)
            # asid -> CPU; unbound address spaces run on CPU 0 (where
            # the kernel's own asid-0 accesses also land).
            self.cpu_bindings: dict[int, int] | None = {}
        else:
            self.cluster = None
            self.cpu_bindings = None
            self.dcache = Cache(config.dcache, self.memory, config.cost,
                                self.clock, self.counters, name="dcache",
                                hierarchy=self.hierarchy)
        self.icache = Cache(config.icache, self.memory, config.cost,
                            self.clock, self.counters, name="icache",
                            is_icache=True, hierarchy=self.hierarchy)
        self.tlb = Tlb(config.tlb_entries, config.cost, self.clock,
                       self.counters)
        self.dma = DmaEngine(self.memory, config, self.clock, self.counters,
                             oracle=self.oracle, hierarchy=self.hierarchy)
        for component in (self.dcache, self.icache, self.tlb, self.dma):
            component.bus = self.bus
        # Installed by the OS layer.
        self.translation_source: TranslationSource | None = None
        self.fault_handler: FaultHandler | None = None
        # Hardware page-modified bit: invoked with (asid, vpage) on every
        # successful store.  Section 4.1's implementation uses the modified
        # bit to set cache_dirty without taking a write fault when a page's
        # mapping is already writable.
        self.write_notifier: Callable[[int, int], None] | None = None

    # ---- CPU scheduling (multiprocessor only) --------------------------------

    def bind_cpu(self, asid: int, cpu: int) -> None:
        """Pin an address space to a CPU; its accesses go through that
        CPU's cache.  (This models which processor the task is scheduled
        on; the simulator executes one access at a time, so binding is
        the whole scheduling interface the hardware needs.)"""
        if self.cluster is None:
            if cpu != 0:
                raise ValueError(f"uniprocessor machine has no CPU {cpu}")
            return
        if not 0 <= cpu < len(self.cluster):
            raise ValueError(f"CPU {cpu} out of range for "
                             f"{len(self.cluster)}-CPU cluster")
        self.cpu_bindings[asid] = cpu

    def cpu_of(self, asid: int) -> int:
        if self.cpu_bindings is None:
            return 0
        return self.cpu_bindings.get(asid, 0)

    # ---- translation with fault retry ---------------------------------------

    def _translate(self, asid: int, vaddr: int,
                   access: AccessKind) -> tuple[int, bool]:
        """Translate a virtual address, faulting into the OS as needed.

        Returns (physical address, uncached).  Raises
        :class:`FaultLoopError` if the handler fails to make progress, and
        :class:`ProtectionError` if no handler is installed.
        """
        if self.cpu_bindings is not None:
            # Route the access to the CPU this address space runs on;
            # every access path translates first, so this one store is
            # the complete SMP routing layer.
            self.dcache.current_cpu = self.cpu_bindings.get(asid, 0)
        vpage = vaddr // self.page_size
        needed = access.required
        for attempt in range(MAX_FAULT_RETRIES + 1):
            entry = self.tlb.lookup(asid, vpage)
            if entry is None and self.translation_source is not None:
                translation = self.translation_source(asid, vpage)
                if translation is not None:
                    ppage, prot, *rest = translation
                    self.tlb.insert(asid, vpage, ppage, prot,
                                    uncached=bool(rest and rest[0]))
                    entry = self.tlb.lookup(asid, vpage)
            if entry is not None and entry.prot.allows(needed):
                return (entry.ppage * self.page_size
                        + vaddr % self.page_size, entry.uncached)
            if attempt == MAX_FAULT_RETRIES:
                break  # the budget of handler invocations is spent
            if self.fault_handler is None:
                raise ProtectionError(
                    f"{access.value} of va {vaddr:#x} in asid {asid} denied "
                    f"and no fault handler installed")
            self.fault_handler(FaultInfo(asid, vaddr, access))
        raise FaultLoopError(
            f"{access.value} of va {vaddr:#x} in asid {asid} still faulting "
            f"after {MAX_FAULT_RETRIES} resolution attempts",
            asid=asid, vaddr=vaddr, access=access.value,
            attempts=MAX_FAULT_RETRIES)

    # ---- user-level CPU accesses ---------------------------------------------

    def read(self, asid: int, vaddr: int) -> int:
        """CPU load through the data cache (or straight from memory for
        an uncached mapping)."""
        paddr, uncached = self._translate(asid, vaddr, AccessKind.READ)
        if uncached:
            value = self.memory.read_word(paddr)
            self.clock.advance(self.config.cost.uncached_word)
        else:
            value = self.dcache.read(vaddr, paddr)
        if self.oracle is not None:
            self.oracle.check_cpu_read(paddr, value)
        return value

    def write(self, asid: int, vaddr: int, value: int) -> None:
        """CPU store through the data cache."""
        paddr, uncached = self._translate(asid, vaddr, AccessKind.WRITE)
        if self.write_notifier is not None:
            self.write_notifier(asid, vaddr // self.page_size)
        if uncached:
            self.memory.write_word(paddr, value)
            if self.hierarchy is not None:
                self.hierarchy.invalidate_span(paddr, 1)
            self.clock.advance(self.config.cost.uncached_word)
        else:
            self.dcache.write(vaddr, paddr, value)
        if self.oracle is not None:
            self.oracle.note_cpu_write(paddr, value)

    def ifetch(self, asid: int, vaddr: int) -> int:
        """Instruction fetch through the instruction cache."""
        paddr, _ = self._translate(asid, vaddr, AccessKind.EXECUTE)
        value = self.icache.read(vaddr, paddr)
        if self.oracle is not None:
            self.oracle.check_cpu_read(paddr, value)
        return value

    def _translate_run(self, asid: int, va: int, n_words: int,
                       access: AccessKind) -> tuple[int, bool]:
        """Translate one page segment of a run and charge the TLB hits the
        equivalent word loop would have taken for its remaining words."""
        paddr, uncached = self._translate(asid, va, access)
        if n_words > 1:
            self.tlb.note_repeat_hits(n_words - 1)
        return paddr, uncached

    # ---- user-level block accesses (the batched access engine) ---------------

    def read_block(self, asid: int, vaddr: int, n_words: int) -> np.ndarray:
        """Read ``n_words`` consecutive words starting at ``vaddr``.

        Observationally equivalent to ``n_words`` calls to :meth:`read`:
        identical clock cycles, counters, cache and TLB state, and values.
        The block is split into per-page segments; each segment translates
        once (taking any fault exactly where the word loop would, at the
        segment's first word) and charges the TLB hits the remaining words
        would have taken.  Mid-segment faults cannot occur because page
        protections only change inside OS entry points, never between the
        user-level accesses of a run.
        """
        out = np.empty(n_words, dtype=np.uint64)
        done = 0
        while done < n_words:
            va = vaddr + done * WORD_SIZE
            room = (self.page_size - va % self.page_size) // WORD_SIZE
            k = min(room, n_words - done)
            paddr, uncached = self._translate_run(asid, va, k, AccessKind.READ)
            if uncached:
                values = self.memory.read_words(paddr, k)
                self.clock.advance(self.config.cost.uncached_word * k)
            else:
                values = self.dcache.read_run(va, paddr, k)
            if self.oracle is not None:
                self.oracle.check_run_read(paddr, values)
            out[done:done + k] = values
            done += k
        return out

    def write_block(self, asid: int, vaddr: int, values) -> None:
        """Store consecutive words starting at ``vaddr``; word-loop
        equivalent (see :meth:`read_block`).  The modified-page notifier
        fires once per page segment (it is idempotent per page, like the
        page-granularity write path)."""
        values = np.asarray(values, dtype=np.uint64)
        n_words = len(values)
        done = 0
        while done < n_words:
            va = vaddr + done * WORD_SIZE
            room = (self.page_size - va % self.page_size) // WORD_SIZE
            k = min(room, n_words - done)
            paddr, uncached = self._translate_run(asid, va, k,
                                                  AccessKind.WRITE)
            if self.write_notifier is not None:
                self.write_notifier(asid, va // self.page_size)
            chunk = values[done:done + k]
            if uncached:
                self.memory.write_words(paddr, chunk)
                if self.hierarchy is not None:
                    self.hierarchy.invalidate_span(paddr, k)
                self.clock.advance(self.config.cost.uncached_word * k)
            else:
                self.dcache.write_run(va, paddr, chunk)
            if self.oracle is not None:
                self.oracle.note_run_write(paddr, chunk)
            done += k

    # ---- user-level page-granularity accesses (vectorized word loops) --------

    def read_page(self, asid: int, va_page_base: int) -> np.ndarray:
        paddr, uncached = self._translate(asid, va_page_base,
                                          AccessKind.READ)
        if uncached:
            values = self.memory.read_page(paddr // self.page_size)
            self.clock.advance(self.config.cost.uncached_word
                               * self.memory.words_per_page)
        else:
            values = self.dcache.read_page(va_page_base, paddr)
        if self.oracle is not None:
            self.oracle.check_page_read(paddr, values)
        return values

    def write_page(self, asid: int, va_page_base: int,
                   values: np.ndarray) -> None:
        paddr, uncached = self._translate(asid, va_page_base,
                                          AccessKind.WRITE)
        if self.write_notifier is not None:
            self.write_notifier(asid, va_page_base // self.page_size)
        if uncached:
            self.memory.write_page(paddr // self.page_size,
                                   np.asarray(values, dtype=np.uint64))
            if self.hierarchy is not None:
                self.hierarchy.invalidate_page(paddr // self.page_size)
            self.clock.advance(self.config.cost.uncached_word
                               * self.memory.words_per_page)
        else:
            self.dcache.write_page(va_page_base, paddr, values)
        if self.oracle is not None:
            self.oracle.note_page_write(paddr, values)

    # ---- time ------------------------------------------------------------------

    def consume(self, cycles: int) -> None:
        """Model computation unrelated to the memory system."""
        self.clock.advance(cycles)

    @property
    def elapsed_seconds(self) -> float:
        return self.config.cost.seconds(self.clock.cycles)

    # ---- convenience ------------------------------------------------------------

    def word_addr(self, vaddr: int, word: int) -> int:
        """Byte address of the ``word``-th word relative to ``vaddr``."""
        return vaddr + word * WORD_SIZE
