"""Hardware parameters: cache geometry, cycle-cost model, machine config.

The defaults model the HP 9000 Series 700 Model 720 used in the paper:
a 50 MHz PA-RISC with separate, direct-mapped, virtually indexed,
physically tagged caches; the data cache is write-back.  The quantitative
quirks the paper reports are encoded in :class:`CostModel`:

* a purge or flush of a virtual address can be *up to seven times slower*
  when the data is resident in the cache (Section 2.3),
* the 720 "appears to purge no more quickly than it flushes" (Section 5.1),
* purging the instruction cache takes *constant time* regardless of its
  contents (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ConfigurationError


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Size and shape of one cache and of the paging system it serves.

    Attributes:
        size: total cache capacity in bytes.
        line_size: cache line size in bytes.
        page_size: virtual-memory page size in bytes.
        associativity: number of ways (1 = direct mapped).
        physically_indexed: select the set with the physical, not virtual,
            address (the Section 3.3 "physically indexed" variant).
        write_through: propagate every store to memory immediately (the
            Section 3.3 "write-through" variant; there is no Dirty state).
    """

    size: int = 256 * 1024
    line_size: int = 32
    page_size: int = 4096
    associativity: int = 1
    physically_indexed: bool = False
    write_through: bool = False

    def __post_init__(self) -> None:
        for name in ("size", "line_size", "page_size", "associativity"):
            if not _is_pow2(getattr(self, name)):
                raise ConfigurationError(f"{name} must be a power of two, "
                                         f"got {getattr(self, name)}")
        if self.line_size % WORD_SIZE:
            raise ConfigurationError("line_size must be a multiple of the word size")
        if self.page_size % self.line_size:
            raise ConfigurationError("page_size must be a multiple of line_size")
        if self.size % (self.line_size * self.associativity):
            raise ConfigurationError("size must divide evenly into ways of lines")
        if self.way_span % self.page_size:
            raise ConfigurationError(
                "each way must span a whole number of pages so that cache "
                "pages are well defined (the paper's first hardware "
                "requirement, Section 4)")

    @cached_property
    def num_lines(self) -> int:
        return self.size // self.line_size

    @cached_property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    @cached_property
    def way_span(self) -> int:
        """Bytes of address space covered by one way before indices repeat."""
        return self.num_sets * self.line_size

    @cached_property
    def num_cache_pages(self) -> int:
        """Number of cache pages: cache-way span divided by the page size.

        All virtual pages whose page numbers are congruent modulo this value
        *align* in the cache (Section 2.2).
        """
        return self.way_span // self.page_size

    @cached_property
    def lines_per_page(self) -> int:
        return self.page_size // self.line_size

    @cached_property
    def words_per_line(self) -> int:
        return self.line_size // WORD_SIZE

    @cached_property
    def words_per_page(self) -> int:
        return self.page_size // WORD_SIZE

    def set_index(self, addr: int) -> int:
        """Set selected by an address (virtual or physical per indexing mode)."""
        return (addr // self.line_size) % self.num_sets

    def cache_page(self, addr: int) -> int:
        """Cache page selected by an address (Section 4: the set of cache
        lines onto which the index function maps all addresses of a page)."""
        return (addr // self.page_size) % self.num_cache_pages

    def aligned(self, addr_a: int, addr_b: int) -> bool:
        """True if two addresses select the same cache page (they *align*)."""
        return self.cache_page(addr_a) == self.cache_page(addr_b)


WORD_SIZE = 4  # bytes per word; the unit of CPU loads/stores in the simulator


@dataclass(frozen=True)
class L2Geometry:
    """Shape of the optional unified, physically indexed second-level cache.

    The L2 sits between the L1s and memory and is *physically* indexed and
    tagged, so it is immune to the paper's virtual-alias problem by
    construction — Section 3.3's "physically indexed" observation applied
    one level down.  It holds only clean copies (the simulated L1 is the
    point of coherence; dirty write-backs go straight to memory), so no
    consistency state is needed for it: the derived Table 2 tables are
    unchanged (see :func:`repro.core.variants.set_associative_note`).
    """

    size: int = 256 * 1024
    line_size: int = 32
    associativity: int = 4

    def __post_init__(self) -> None:
        for name in ("size", "line_size", "associativity"):
            if not _is_pow2(getattr(self, name)):
                raise ConfigurationError(f"L2 {name} must be a power of two, "
                                         f"got {getattr(self, name)}")
        if self.size % (self.line_size * self.associativity):
            raise ConfigurationError(
                "L2 size must divide evenly into ways of lines")

    @cached_property
    def num_lines(self) -> int:
        return self.size // self.line_size

    @cached_property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for memory-system events.

    These are calibrated to reproduce the *relationships* the paper reports,
    not the absolute cycle counts of a real 720 (see DESIGN.md Section 5).
    """

    clock_hz: int = 50_000_000          # Model 720 runs at 50 MHz
    cache_hit: int = 1
    line_fill: int = 20                 # miss penalty: fetch a line from memory
    write_back: int = 20                # store a dirty victim line to memory

    # Lower-level hierarchy fill sources (PR 8).  A miss that hits in the
    # victim cache or the unified L2 is cheaper than a full line fill from
    # memory; a miss that falls through both still costs ``line_fill``.
    victim_hit: int = 4                 # L1 miss satisfied by the victim cache
    l2_hit: int = 10                    # L1 miss satisfied by the unified L2
    tlb_hit: int = 0
    tlb_miss: int = 25                  # software TLB refill walk

    # Flush/purge of a single line.  Resident lines cost ~7x more than
    # non-resident ones (Section 2.3); on the 720 purges are no cheaper
    # than flushes (Section 5.1), so the defaults are identical.
    flush_line_miss: int = 1
    flush_line_hit: int = 7
    purge_line_miss: int = 1
    purge_line_hit: int = 7

    # The 720 purges its instruction cache in constant time regardless of
    # contents (Section 5.1).  Cost per page-sized purge of the icache.
    icache_purge_page: int = 128

    # One reverse-lookup-table consult (the `rlt` policy): indexed by
    # physical page, answered in a handful of cycles by dedicated
    # hardware (arXiv 2108.00444 models it as a small SRAM walk).
    rlt_lookup: int = 4

    uncached_word: int = 20             # word access that bypasses the cache
    fault_overhead: int = 300           # trap + dispatch + return for any fault
    dma_setup: int = 200                # programming a DMA transfer
    dma_word: int = 1                   # per-word device transfer time

    # Recovery costs (the fault-injection subsystem's retry paths charge
    # these to the shared clock so recovery shows up in cycle counts).
    disk_retry_backoff: int = 2_000     # base backoff before re-issuing a
                                        # failed disk/DMA transfer; attempt
                                        # k waits k times this
    tlb_parity_recovery: int = 50       # detect a corrupted TLB entry via
                                        # parity, invalidate, re-walk

    def seconds(self, cycles: int) -> float:
        """Convert a cycle count into seconds of 50 MHz machine time."""
        return cycles / self.clock_hz


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of the simulated machine.

    Attributes:
        dcache: geometry of the data cache (write-back on the 720).
        icache: geometry of the instruction cache (never dirty).
        phys_pages: number of physical page frames.
        tlb_entries: TLB capacity.
        cost: the cycle-cost model.
        check_consistency: install the staleness oracle; every value the
            memory system transfers to the CPU or a device is checked.
        n_cpus: number of CPUs.  1 gives the paper's uniprocessor; >1
            builds a Section 3.3 :class:`~repro.hw.smp.CoherentCluster`
            of per-CPU data caches kept coherent by snooping (the
            instruction cache stays shared — it is never dirty, so it
            needs no coherence protocol).
        victim_lines: number of entries in the small fully associative,
            physically tagged victim cache between the L1s and memory.
            0 (the default) means no victim cache — bit-identical to the
            seed machine.
        l2: geometry of the optional unified physically indexed L2, or
            ``None`` (the default) for none.
    """

    dcache: CacheGeometry = field(default_factory=CacheGeometry)
    icache: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size=128 * 1024))
    phys_pages: int = 2048
    tlb_entries: int = 128
    cost: CostModel = field(default_factory=CostModel)
    check_consistency: bool = True
    n_cpus: int = 1
    victim_lines: int = 0
    l2: L2Geometry | None = None

    def __post_init__(self) -> None:
        if self.dcache.page_size != self.icache.page_size:
            raise ConfigurationError("I and D caches must agree on page size")
        if self.phys_pages <= 0:
            raise ConfigurationError("phys_pages must be positive")
        if self.n_cpus < 1:
            raise ConfigurationError("n_cpus must be at least 1")
        if self.victim_lines < 0:
            raise ConfigurationError("victim_lines must be non-negative")
        if self.l2 is not None and self.l2.line_size != self.dcache.line_size:
            raise ConfigurationError(
                "the L2 must use the L1 line size (lines move between "
                "levels whole)")
        if self.has_hierarchy and self.icache.line_size != self.dcache.line_size:
            raise ConfigurationError(
                "a shared lower hierarchy (victim cache or L2) requires "
                "I and D caches to agree on line size")

    @property
    def has_hierarchy(self) -> bool:
        """True when a victim cache or an L2 sits below the L1s."""
        return self.victim_lines > 0 or self.l2 is not None

    @property
    def page_size(self) -> int:
        return self.dcache.page_size


def small_machine(**overrides) -> MachineConfig:
    """A small configuration convenient for unit tests.

    4 KiB pages, a 16 KiB direct-mapped data cache (4 cache pages) and an
    8 KiB instruction cache (2 cache pages), 64 physical pages.
    """
    params = dict(
        dcache=CacheGeometry(size=16 * 1024),
        icache=CacheGeometry(size=8 * 1024),
        phys_pages=64,
        tlb_entries=16,
    )
    params.update(overrides)
    return MachineConfig(**params)


def _parse_size(text: str, what: str) -> int:
    text = text.lower()
    try:
        if text.endswith("m"):
            return int(text[:-1]) * 1024 * 1024
        if text.endswith("k"):
            return int(text[:-1]) * 1024
        return int(text)
    except ValueError:
        raise ConfigurationError(f"bad {what} size {text!r}") from None


def apply_geometry(config: MachineConfig, spec: str) -> MachineConfig:
    """Apply a compact hierarchy spec to a machine configuration.

    ``spec`` is a ``+``-separated list of tokens, each adjusting one axis
    of the data-side hierarchy (the instruction cache is untouched):

    * ``<N>way`` — make the data cache N-way set associative (LRU),
      keeping its total size; ``1way`` is the seed direct-mapped cache.
    * ``victim<N>`` — add an N-entry fully associative victim cache
      between the L1s and memory (``victim0`` removes it).
    * ``l2`` / ``l2:<SIZE>`` / ``l2:<SIZE>/<WAYS>`` — add a unified
      physically indexed L2 (sizes accept ``k``/``m`` suffixes);
      defaults are :class:`L2Geometry`'s.
    * ``wt`` — make the data cache write-through (Section 3.3 variant).
    * ``pi`` — make the data cache physically indexed (Section 3.3
      variant).

    Examples: ``2way``, ``4way+victim8``, ``2way+l2:256k/8``,
    ``wt+victim4``, ``pi``.  Returns a new :class:`MachineConfig`; the
    input is unchanged.
    """
    from dataclasses import replace

    dcache = config.dcache
    victim_lines = config.victim_lines
    l2 = config.l2
    for token in spec.split("+"):
        token = token.strip().lower()
        if not token:
            continue
        if token.endswith("way") and token[:-3].isdigit():
            dcache = replace(dcache, associativity=int(token[:-3]))
        elif token.startswith("victim") and token[6:].isdigit():
            victim_lines = int(token[6:])
        elif token == "l2" or token.startswith("l2:"):
            size, ways = L2Geometry.size, L2Geometry.associativity
            if token.startswith("l2:"):
                body = token[3:]
                if "/" in body:
                    size_text, ways_text = body.split("/", 1)
                    if not ways_text.isdigit():
                        raise ConfigurationError(
                            f"bad L2 way count in {token!r}")
                    ways = int(ways_text)
                else:
                    size_text = body
                size = _parse_size(size_text, "L2")
            l2 = L2Geometry(size=size, line_size=dcache.line_size,
                            associativity=ways)
        elif token == "wt":
            dcache = replace(dcache, write_through=True)
        elif token == "pi":
            dcache = replace(dcache, physically_indexed=True)
        else:
            raise ConfigurationError(
                f"unknown geometry token {token!r} (expected <N>way, "
                "victim<N>, l2[:SIZE[/WAYS]], wt, or pi)")
    return replace(config, dcache=dcache, victim_lines=victim_lines, l2=l2)
