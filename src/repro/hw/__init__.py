"""The simulated hardware substrate (HP 9000 Series 700 model)."""

from repro.hw.cache import Cache
from repro.hw.dma import DmaEngine
from repro.hw.machine import FaultInfo, Machine
from repro.hw.params import CacheGeometry, CostModel, MachineConfig, small_machine
from repro.hw.physmem import PhysicalMemory
from repro.hw.smp import CoherentCluster
from repro.hw.stats import Clock, Counters, FaultKind, Reason
from repro.hw.tlb import Tlb, TlbEntry

__all__ = [
    "Cache", "DmaEngine", "Machine", "FaultInfo", "CacheGeometry",
    "CostModel", "MachineConfig", "small_machine", "PhysicalMemory",
    "Clock", "Counters", "FaultKind", "Reason", "Tlb", "TlbEntry",
    "CoherentCluster",
]
