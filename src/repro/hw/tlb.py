"""A software-managed translation lookaside buffer.

The TLB caches page-table entries: (address-space id, virtual page) ->
(physical page, effective protection).  The consistency algorithm depends
on being able to *revoke* access to a page (Section 2.3: "other structures,
however, such as TLB and page table entries, must be invalidated to deny
access to the data in the memory system"), so the machine-dependent layer
invalidates TLB entries whenever it changes a mapping or its protection.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.hw.params import CostModel
from repro.hw.stats import Clock, Counters
from repro.prot import Prot


@dataclass(frozen=True)
class TlbEntry:
    """A cached translation with its effective protection.

    ``uncached`` marks a mapping whose accesses bypass the cache entirely
    — the Sun system's fallback for unaligned aliases outside
    well-behaved kernel code (Section 6: "Otherwise, aliases must be
    uncached").
    """

    ppage: int
    prot: Prot
    uncached: bool = False


class Tlb:
    """Fully associative TLB with FIFO replacement.

    Replacement policy is deliberately simple: the evaluation depends on
    TLB *invalidation semantics*, not on TLB hit rates.
    """

    def __init__(self, entries: int, cost: CostModel, clock: Clock,
                 counters: Counters):
        self.capacity = entries
        self.cost = cost
        self.clock = clock
        self.counters = counters
        # Optional fault injector ("tlb.entry.corrupt"); None in normal runs.
        self.injector = None
        # Observability: the machine attaches its EventBus here.  Only the
        # parity-recovery path publishes — never the lookup fast paths.
        self.bus = None
        self._map: OrderedDict[tuple[int, int], TlbEntry] = OrderedDict()
        # One-entry micro-cache over the last successful lookup.  Every
        # mutator clears it, so a micro-hit implies the entry is still
        # present in ``_map`` — the accounting must stay identical to a
        # regular hit.
        self._last_key: tuple[int, int] | None = None
        self._last_entry: TlbEntry | None = None

    def lookup(self, asid: int, vpage: int) -> TlbEntry | None:
        """Return the cached entry, or None on a TLB miss."""
        key = (asid, vpage)
        if (self.injector is not None
                and (key == self._last_key or key in self._map)):
            record = self.injector.fires("tlb.entry.corrupt", asid=asid,
                                         vpage=vpage)
            if record is not None:
                # The entry's parity no longer checks: hardware discards
                # it and the walk refills from the page tables — detected
                # and recovered on the spot, with the recovery charged.
                self.invalidate(asid, vpage)
                self.counters.tlb_parity_recoveries += 1
                self.counters.tlb_misses += 1
                self.clock.advance(self.cost.tlb_parity_recovery
                                   + self.cost.tlb_miss)
                record.resolve("recovered")
                if self.bus is not None and self.bus.enabled:
                    self.bus.publish("tlb-parity-recovery", asid=asid,
                                     vpage=vpage)
                return None
        if key == self._last_key:
            self.counters.tlb_hits += 1
            self.clock.cycles += self.cost.tlb_hit
            return self._last_entry
        entry = self._map.get(key)
        if entry is not None:
            self.counters.tlb_hits += 1
            self.clock.advance(self.cost.tlb_hit)
            self._last_key = key
            self._last_entry = entry
        else:
            self.counters.tlb_misses += 1
            self.clock.advance(self.cost.tlb_miss)
        return entry

    def note_repeat_hits(self, n: int) -> None:
        """Account for ``n`` TLB hits without performing lookups.

        The block access path translates once per page segment and uses
        this to charge the hits the equivalent word loop would have taken
        for the remaining words of the segment.
        """
        if n <= 0:
            return
        self.counters.tlb_hits += n
        # Direct add, like the micro-cache hit path: this runs once per
        # page segment of every block access.
        self.clock.cycles += self.cost.tlb_hit * n

    def insert(self, asid: int, vpage: int, ppage: int, prot: Prot,
               uncached: bool = False) -> None:
        key = (asid, vpage)
        if key in self._map:
            del self._map[key]
        elif len(self._map) >= self.capacity:
            self._map.popitem(last=False)
        self._map[key] = TlbEntry(ppage, prot, uncached)
        self._last_key = None
        self._last_entry = None

    def invalidate(self, asid: int, vpage: int) -> None:
        self._map.pop((asid, vpage), None)
        self._last_key = None
        self._last_entry = None

    def invalidate_asid(self, asid: int) -> None:
        for key in [k for k in self._map if k[0] == asid]:
            del self._map[key]
        self._last_key = None
        self._last_entry = None

    def invalidate_all(self) -> None:
        self._map.clear()
        self._last_key = None
        self._last_entry = None

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._map
