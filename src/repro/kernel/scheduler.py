"""Deterministic round-robin multi-CPU scheduling.

The simulator executes one memory access at a time against a single
shared clock, so "scheduling" needs exactly two decisions: *which CPU a
task's accesses go through* (the machine's per-asid CPU binding — that
is what makes sharing an SMP problem at all) and *in what order the
runnable tasklets interleave* (which determines every snoop, every
coherence write-back, and therefore every counter and cycle of a run).

:class:`Scheduler` makes both deterministically.  Tasklets are plain
Python generators: each ``yield`` is a voluntary preemption point (the
end of a scheduling quantum).  One :meth:`round` visits the CPUs in
order 0..N-1 and runs one quantum of the front tasklet of each CPU's
queue, rotating that queue — the classic per-CPU round-robin.  No RNG,
no wall clock: the same spawn order always produces the same
interleaving, which the chaos harness and the conformance monitors rely
on for replayable failures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


@dataclass
class Tasklet:
    """One schedulable strand of work pinned to a CPU."""

    name: str
    cpu: int
    gen: Iterator = field(repr=False)
    quanta: int = 0
    done: bool = False


class Scheduler:
    """Per-CPU run queues with deterministic round-robin dispatch."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        cluster = kernel.machine.cluster
        self.n_cpus = 1 if cluster is None else len(cluster)
        self.queues: list[deque[Tasklet]] = [deque()
                                             for _ in range(self.n_cpus)]
        self.finished: list[Tasklet] = []
        self._spawned = 0

    # ---- placement ---------------------------------------------------------

    def spawn(self, name: str, gen: Iterator,
              cpu: int | None = None) -> Tasklet:
        """Enqueue a generator as a tasklet.

        Without an explicit ``cpu`` placement is round-robin in spawn
        order — the same rule :meth:`Kernel.create_task` uses for
        address spaces, so a tasklet and its task land together by
        default.
        """
        if cpu is None:
            cpu = self._spawned % self.n_cpus
        if not 0 <= cpu < self.n_cpus:
            raise ConfigurationError(
                f"CPU {cpu} out of range for {self.n_cpus} CPUs")
        self._spawned += 1
        tasklet = Tasklet(name=name, cpu=cpu, gen=iter(gen))
        self.queues[cpu].append(tasklet)
        return tasklet

    def pin(self, task: "Task", cpu: int) -> None:
        """Re-bind a task's address space to a CPU (migration)."""
        self.kernel.machine.bind_cpu(task.asid, cpu)

    # ---- dispatch ----------------------------------------------------------

    @property
    def runnable(self) -> int:
        return sum(len(q) for q in self.queues)

    def round(self) -> int:
        """One scheduling round: each CPU runs one quantum of the tasklet
        at the front of its queue.  Returns the number of quanta run."""
        ran = 0
        for queue in self.queues:
            if not queue:
                continue
            tasklet = queue.popleft()
            tasklet.quanta += 1
            ran += 1
            # Policy hook at the context switch: a no-op for every policy
            # shipped here (the caches are physically tagged), but the
            # decision point exists for strategies that flush on switch.
            self.kernel.cpolicy.on_context_switch(self.kernel, tasklet)
            try:
                next(tasklet.gen)
            except StopIteration:
                tasklet.done = True
                self.finished.append(tasklet)
            else:
                queue.append(tasklet)
        return ran

    def run(self, max_rounds: int | None = None) -> int:
        """Dispatch rounds until every tasklet finishes (or the bound is
        hit); returns the number of rounds run."""
        rounds = 0
        while self.runnable:
            if max_rounds is not None and rounds >= max_rounds:
                break
            self.round()
            rounds += 1
        return rounds
