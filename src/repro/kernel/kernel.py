"""The kernel: machine + VM + services, with the fault dispatcher.

This facade wires the simulated hardware to the machine-dependent pmap
layer and the OS services (disk, buffer cache, file system, exec loader,
Unix server), and classifies faults the way Section 5.1 counts them:

* **mapping faults** — a virtual page's first access by an address space
  (lazy PTE creation), copy-on-write resolution, text loading.  These
  "occur regardless of the cache architecture".
* **consistency faults** — a reference requiring a cache consistency
  state transition that cannot be inferred from some other mapping fault.
  These exist only because the cache is virtually indexed and are counted
  as bookkeeping overhead.
"""

from __future__ import annotations

import itertools

from repro.errors import KernelError, ProtectionError
from repro.hw.machine import FaultInfo, Machine
from repro.hw.params import MachineConfig
from repro.hw.stats import FaultKind
from repro.kernel.buffer_cache import BufferCache
from repro.kernel.disk import Disk
from repro.kernel.exec_loader import ExecLoader
from repro.kernel.filesystem import FileSystem
from repro.kernel.pageout import PageoutDaemon
from repro.kernel.task import Task
from repro.kernel.unix_server import UnixServer
from repro.policy import ConsistencyPolicy, resolve as resolve_policy
from repro.vm.address_space import PageDescriptor, PageKind
from repro.vm.free_list import FreePageList
from repro.vm.pmap import Pmap
from repro.vm.policy import NEW_SYSTEM, PolicyConfig
from repro.vm.prot import AccessKind, Prot
from repro.vm.vm_object import Backing, VMObject


class Kernel:
    """One booted instance of the simulated system."""

    def __init__(self,
                 policy: PolicyConfig | ConsistencyPolicy | str = NEW_SYSTEM,
                 config: MachineConfig | None = None,
                 buffer_cache_pages: int = 64,
                 with_unix_server: bool = True):
        # ``policy`` accepts a registered name ("F", "rlt"), a
        # ConsistencyPolicy, or a bare PolicyConfig (the seed-era API).
        # ``self.cpolicy`` is the hook object the pmap consults;
        # ``self.policy`` stays the flag bag every flag consumer reads.
        self.cpolicy = resolve_policy(policy)
        self.policy = self.cpolicy.flags
        self.machine = Machine(config or MachineConfig())
        self.pmap = Pmap(self.machine, self.cpolicy)
        ncp = self.machine.dcache.geo.num_cache_pages
        self.free_list = FreePageList(range(self.machine.config.phys_pages),
                                      ncp,
                                      colored=self.policy.colored_free_list)
        self.tasks: dict[int, Task] = {}
        self._asids = itertools.count(1)
        self._global_va_cursor = itertools.count(16)
        self.machine.fault_handler = self.handle_fault
        # Optional fault injector (kernel.fault.stall); None in normal runs.
        self.fault_injector = None
        # Frames retired after failing DMA transfer verification; never
        # returned to the free list.
        self.quarantined: set[int] = set()

        self.disk = Disk(self)
        self.pageout = PageoutDaemon(self)
        self.buffer_cache = BufferCache(self, capacity_pages=buffer_cache_pages)
        self.fs = FileSystem(self)
        self.exec_loader = ExecLoader(self)
        self.unix_server = UnixServer(self) if with_unix_server else None

    def global_va_allocator(self, npages: int) -> int:
        """System-wide unique virtual addresses for the Section 2.1
        global-address-space model: every allocation anywhere draws from
        one counter, so an address names the same memory in every task."""
        start = next(self._global_va_cursor)
        for _ in range(npages - 1):
            next(self._global_va_cursor)
        return start

    # ---- frames -----------------------------------------------------------------

    def allocate_frame(self, color: int | None = None) -> int:
        if len(self.free_list) < self.pageout.low_water:
            self.pageout.maybe_reclaim()
        return self.free_list.allocate(color)

    def allocate_frame_run(self, npages: int) -> list[int]:
        """Allocate ``npages`` physically contiguous frames (superpage
        backing).  Reclaims once under memory pressure, like
        :meth:`allocate_frame`."""
        if len(self.free_list) < max(self.pageout.low_water, npages):
            self.pageout.maybe_reclaim()
        return self.free_list.allocate_run(npages)

    def free_frame(self, ppage: int) -> None:
        if ppage in self.quarantined:
            return  # retired hardware never re-enters circulation
        color = self.pmap.frame_freed(ppage)
        self.free_list.free(ppage, color)

    def quarantine_frame(self, ppage: int) -> None:
        """Retire a frame that repeatedly failed DMA transfer verification
        (suspected bad hardware).  Its cached traces are discarded and it
        is never allocated again."""
        self.pmap.quarantine_frame(ppage)
        self.quarantined.add(ppage)
        self.machine.counters.frames_quarantined += 1

    def release_object_if_dead(self, vm_object: VMObject) -> None:
        """Free a VM object's frames once nothing references it."""
        if vm_object.ref_count > 0:
            return
        for obj_page, ppage in list(vm_object.resident_pages().items()):
            vm_object.evict(obj_page)
            self.free_frame(ppage)

    # ---- tasks -------------------------------------------------------------------

    def create_task(self, name: str | None = None,
                    cpu: int | None = None) -> Task:
        task = Task(self, next(self._asids), name)
        self.tasks[task.asid] = task
        if self.machine.cluster is not None:
            # Deterministic round-robin placement unless the caller pins
            # the task; asid 1 (the Unix server) lands on CPU 0.
            if cpu is None:
                cpu = (task.asid - 1) % len(self.machine.cluster)
            self.machine.bind_cpu(task.asid, cpu)
        elif cpu not in (None, 0):
            raise KernelError(f"no CPU {cpu} on a uniprocessor")
        return task

    def destroy_task(self, task: Task) -> None:
        for vpage in task.space.mapped_vpages():
            task.unmap(vpage)
        self.pmap.destroy_page_table(task.asid)
        self.tasks.pop(task.asid, None)
        task.alive = False

    # ---- the fault dispatcher -------------------------------------------------------

    def _publish_fault(self, fault: FaultInfo, classified: str) -> None:
        bus = self.machine.bus
        if bus is not None and bus.enabled:
            bus.publish("fault", asid=fault.asid,
                        vpage=fault.vaddr // self.machine.page_size,
                        access=fault.access.value, classified=classified)

    def handle_fault(self, fault: FaultInfo) -> None:
        cost = self.machine.config.cost.fault_overhead
        self.machine.clock.advance(cost)
        if self.fault_injector is not None:
            record = self.fault_injector.fires("kernel.fault.stall",
                                               asid=fault.asid,
                                               vaddr=fault.vaddr)
            if record is not None:
                # The handler makes no progress this pass; the hardware
                # retry loop re-faults (absorbing a bounded stall) or
                # escalates to FaultLoopError with full diagnostics.
                record.resolve("retried")
                self._publish_fault(fault, "stalled")
                return
        vpage = fault.vaddr // self.machine.page_size
        task = self.tasks.get(fault.asid)
        if task is None:
            raise KernelError(f"fault in unknown asid {fault.asid}")
        descriptor = task.space.descriptor(vpage)
        if descriptor is None:
            self.machine.counters.record_fault(FaultKind.PROTECTION, cost)
            self._publish_fault(fault, "protection")
            raise ProtectionError(
                f"{task.name}: segmentation fault at va "
                f"{fault.vaddr:#x} ({fault.access.value})")
        pte = self.pmap.page_table(fault.asid).lookup(vpage)
        needed = fault.access.required

        if pte is not None:
            if not pte.vm_prot.allows(needed):
                if (descriptor.cow and fault.access is AccessKind.WRITE
                        and descriptor.vm_prot.allows(Prot.WRITE)):
                    self.machine.counters.record_fault(FaultKind.MAPPING, cost)
                    self._publish_fault(fault, "mapping")
                    self._resolve_cow(task, vpage, descriptor)
                    return
                self.machine.counters.record_fault(FaultKind.PROTECTION, cost)
                self._publish_fault(fault, "protection")
                raise ProtectionError(
                    f"{task.name}: {fault.access.value} of va "
                    f"{fault.vaddr:#x} violates VM protection {pte.vm_prot}")
            # The VM protection allows the access but the hardware denied
            # it: the consistency protection is in the way.
            self.machine.counters.record_fault(FaultKind.CONSISTENCY, cost)
            self._publish_fault(fault, "consistency")
            self.pmap.consistency_fault(fault.asid, vpage, fault.access)
            return

        self.machine.counters.record_fault(FaultKind.MAPPING, cost)
        self._publish_fault(fault, "mapping")
        self._resolve_mapping_fault(task, vpage, descriptor, fault.access)

    # ---- fault resolution -----------------------------------------------------------

    def _resolve_mapping_fault(self, task: Task, vpage: int,
                               descriptor: PageDescriptor,
                               access: AccessKind) -> None:
        if descriptor.kind is PageKind.TEXT:
            self.exec_loader.text_fault(task, vpage, descriptor)
            return
        if descriptor.cow and access is AccessKind.WRITE:
            self._resolve_cow(task, vpage, descriptor)
            return
        vm_object = descriptor.vm_object
        frame = vm_object.resident_page(descriptor.obj_page)
        if frame is None:
            frame = self._page_in(vm_object, descriptor.obj_page, vpage)
        vm_prot = descriptor.vm_prot
        if descriptor.cow:
            vm_prot &= ~Prot.WRITE
        self.pmap.enter(task.asid, vpage, frame, vm_prot, access)

    def _resolve_cow(self, task: Task, vpage: int,
                     descriptor: PageDescriptor) -> None:
        """Give the writer a private copy of a copy-on-write page."""
        vm_object = descriptor.vm_object
        src_frame = vm_object.resident_page(descriptor.obj_page)
        if vpage in self.pmap.page_table(task.asid):
            self.pmap.remove(task.asid, vpage)
        private = VMObject(1, Backing.ZERO_FILL)
        never_materialized = (src_frame is None
                              and descriptor.obj_page not in vm_object.swap_slots
                              and vm_object.backing is Backing.ZERO_FILL)
        if never_materialized:
            # Never materialized: the private copy is simply a zero page.
            frame = self._page_in(private, 0, vpage)
        else:
            if src_frame is None:
                # Resident on the swap device; bring it back first.
                src_frame = self._page_in(vm_object, descriptor.obj_page,
                                          vpage)
            # Pin the source so memory pressure cannot swap it out between
            # the allocation below and the copy that reads it.
            self.pageout.pinned.add(src_frame)
            try:
                frame = self.allocate_frame(self._color_hint(vpage))
                self.pmap.copy_page(src_frame, frame, ultimate_vpage=vpage)
            finally:
                self.pageout.pinned.discard(src_frame)
            private.establish(0, frame)
        # Swap the descriptor over to the private object.
        private.reference()
        old_object = vm_object
        descriptor.vm_object = private
        descriptor.obj_page = 0
        descriptor.cow = False
        old_object.dereference()
        self.release_object_if_dead(old_object)
        self.pmap.enter(task.asid, vpage, frame, descriptor.vm_prot,
                        AccessKind.WRITE)

    def _page_in(self, vm_object: VMObject, obj_page: int,
                 ultimate_vpage: int) -> int:
        """Materialize an object page: zero-fill or read through the buffer
        cache, prepared with the ultimate-address hint (Section 4.1)."""
        frame = self.allocate_frame(self._color_hint(ultimate_vpage))
        if obj_page in vm_object.swap_slots:
            self.pageout.swap_in(vm_object, obj_page, frame)
        elif vm_object.backing is Backing.ZERO_FILL:
            self.pmap.zero_fill_page(frame, ultimate_vpage=ultimate_vpage)
        else:
            bc_frame = self.buffer_cache.read_block(vm_object.file_id,
                                                    vm_object.file_offset
                                                    + obj_page)
            self.buffer_cache.tick()
            self.pmap.copy_page(bc_frame, frame, ultimate_vpage=ultimate_vpage)
        vm_object.establish(obj_page, frame)
        if vm_object.backing is Backing.ZERO_FILL:
            self.pageout.track(vm_object, obj_page)
        return frame

    def _color_hint(self, vpage: int) -> int | None:
        if self.policy.colored_free_list:
            return vpage % self.machine.dcache.geo.num_cache_pages
        return None

    # ---- run bookkeeping ----------------------------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        return self.machine.elapsed_seconds

    def shutdown(self) -> None:
        """End-of-run housekeeping: sync the buffer cache to disk."""
        self.buffer_cache.sync()
