"""Program loading: the data-to-instruction-space copy path.

"When a process faults on an instruction page, the file system copies the
faulted page from its buffer cache into a page in the faulting process'
address space.  That copy operation writes into the data cache, yet the
page is needed in the instruction cache.  The page must therefore be
flushed from the data cache before it can be used." (Section 5.1.)

The loader maps a program's text as lazily faulted TEXT pages; each text
fault reads the block through the buffer cache, copies it into a private
frame (writing the data cache), and installs the page with the mandatory
data-cache flush and instruction-cache purge (``pmap.install_text_page``).
This is the dual-cache aliasing problem that exists even with physically
indexed caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import KernelError
from repro.vm.address_space import PageDescriptor, PageKind
from repro.vm.prot import Prot
from repro.vm.vm_object import Backing, VMObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


@dataclass(frozen=True)
class Program:
    """An executable: a file whose first pages are text, plus a bss size."""

    name: str
    file_id: int
    text_pages: int
    data_pages: int


class ExecLoader:
    """Creates program images in task address spaces."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._programs: dict[str, Program] = {}

    def register_program(self, name: str, text_pages: int,
                         data_pages: int) -> Program:
        """Install an executable file (on disk) and describe its layout."""
        meta = self.kernel.fs.create(f"/bin/{name}", size_pages=text_pages,
                                     on_disk=True)
        program = Program(name, meta.file_id, text_pages, data_pages)
        self._programs[name] = program
        return program

    def program(self, name: str) -> Program:
        try:
            return self._programs[name]
        except KeyError:
            raise KernelError(f"no such program: {name!r}") from None

    def exec_into(self, task: "Task", program: Program) -> tuple[int, int]:
        """Map a program into a task: lazily faulted text plus anonymous
        data.  Returns (text start vpage, data start vpage).

        Each exec gets its own text object: as in the paper's system, text
        pages are copied out of the buffer cache per faulting process.
        """
        text_object = VMObject(program.text_pages, Backing.FILE,
                               file_id=program.file_id)
        text_start = task.space.allocate_vpages(program.text_pages)
        for i in range(program.text_pages):
            task.space.map_page(text_start + i, PageDescriptor(
                PageKind.TEXT, text_object, i, Prot.READ_EXEC))
        data_start = task.allocate_anon(max(program.data_pages, 1))
        return text_start, data_start

    def text_fault(self, task: "Task", vpage: int,
                   descriptor: PageDescriptor) -> None:
        """Resolve an instruction fault on a TEXT page."""
        vm_object = descriptor.vm_object
        frame = vm_object.resident_page(descriptor.obj_page)
        if frame is None:
            bc_frame = self.kernel.buffer_cache.read_block(
                vm_object.file_id, descriptor.obj_page)
            self.kernel.buffer_cache.tick()
            frame = self.kernel.allocate_frame(
                color=task.space.cache_page_of(vpage))
            self.kernel.pmap.copy_page(bc_frame, frame, ultimate_vpage=vpage)
            vm_object.establish(descriptor.obj_page, frame)
        self.kernel.pmap.install_text_page(task.asid, vpage, frame)
