"""The pageout daemon: reclaiming frames to backing store.

Paging exercises the consistency machinery end to end: evicting a page
breaks every mapping (lazily or eagerly per policy), pushes the frame to
the swap area with a DMA-read (which must flush dirty cache data —
Section 2.4), and the later page-in is a DMA-write into a recycled frame
(whose stale cache state the new-mapping rules must handle).  The paper's
survey notes the Sun system "uses the fact that a physical page is dirty
to avoid a redundant cache flush" at pageout — here that falls out of the
DMA-read rules for free.

Reclamation runs at operation boundaries (syscalls, buffer-cache ticks),
never in the middle of a page-preparation path, so a copy's source frame
cannot be swapped out from under it.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING

from repro.hw.stats import Reason
from repro.vm.vm_object import VMObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

#: disk "file" holding swapped pages (file-system ids start at 1)
SWAP_FILE_ID = 0


class PageoutDaemon:
    """FIFO reclamation of anonymous pages under memory pressure."""

    def __init__(self, kernel: "Kernel", low_water: int = 8,
                 reclaim_batch: int = 4):
        self.kernel = kernel
        self.low_water = low_water
        self.reclaim_batch = reclaim_batch
        self._candidates: deque[tuple[VMObject, int]] = deque()
        self._swap_slots = itertools.count(0)
        self.pinned: set[int] = set()
        self.pages_swapped_out = 0
        self.pages_swapped_in = 0

    # ---- bookkeeping -------------------------------------------------------------

    def track(self, vm_object: VMObject, obj_page: int) -> None:
        """Register a newly resident anonymous page as reclaimable."""
        self._candidates.append((vm_object, obj_page))

    # ---- reclamation ----------------------------------------------------------------

    def maybe_reclaim(self) -> int:
        """Reclaim a batch of pages if the free list is low; returns the
        number of frames freed."""
        if len(self.kernel.free_list) >= self.low_water:
            return 0
        return self.reclaim(self.reclaim_batch)

    def reclaim(self, target: int) -> int:
        freed = 0
        scanned = 0
        limit = len(self._candidates)
        while freed < target and scanned < limit and self._candidates:
            vm_object, obj_page = self._candidates.popleft()
            scanned += 1
            if vm_object.ref_count == 0:
                continue   # object is dying; its frames free elsewhere
            frame = vm_object.resident_page(obj_page)
            if frame is None:
                continue   # already evicted (or moved)
            if frame in self.pinned:
                # In use by an in-flight kernel operation (e.g. the source
                # of a copy-on-write duplication); try again later.
                self._candidates.append((vm_object, obj_page))
                continue
            self._evict_page(vm_object, obj_page, frame)
            freed += 1
        return freed

    def _evict_page(self, vm_object: VMObject, obj_page: int,
                    frame: int) -> None:
        """Break the mappings, swap the frame out, free it."""
        pmap = self.kernel.pmap
        state = pmap.page_states.get(frame)
        if state is not None:
            for mapping in list(state.mappings):
                pmap.remove(mapping.asid, mapping.vpage,
                            reason=Reason.PAGEOUT)
        slot = next(self._swap_slots)
        # DMA-read to the swap area: the disk path flushes dirty cache
        # data first (prepare_dma_read), so only genuinely dirty pages
        # cost a flush — the "redundant cache flush" avoidance for free.
        self.kernel.disk.write_block(SWAP_FILE_ID, slot, frame)
        vm_object.swap_slots[obj_page] = slot
        vm_object.evict(obj_page)
        self.kernel.free_frame(frame)
        self.pages_swapped_out += 1

    # ---- page-in --------------------------------------------------------------------

    def swap_in(self, vm_object: VMObject, obj_page: int,
                frame: int) -> None:
        """Fill a freshly allocated frame from the swap area."""
        slot = vm_object.swap_slots.pop(obj_page)
        self.kernel.disk.read_block(SWAP_FILE_ID, slot, frame)
        self.pages_swapped_in += 1
