"""IPC page transfer: moving a physical page between address spaces.

"A large number of virtual memory remapping operations correspond to
physical pages being passed as part of interprocess communication
messages.  The kernel's IPC code transfers a physical page from one
virtual address to another ... The kernel is free to select any
destination virtual address, so choosing one that aligns with the source
address guarantees that no cache management operation is necessary."
(Section 4.2.)

Under the original first-fit selection the source and destination rarely
align, so the old address is flushed (it is generally dirty — it holds the
sender's data) and the new address purged.  The ``align_ipc`` policy flag
switches the destination selection to the aligned strategy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import KernelError
from repro.vm.address_space import PageDescriptor, PageKind
from repro.vm.prot import Prot

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


def transfer_page(kernel: "Kernel", src_task: "Task", src_vpage: int,
                  dst_task: "Task",
                  dst_prot: Prot = Prot.READ_WRITE) -> int:
    """Move one mapped page from ``src_task`` to ``dst_task``.

    Returns the destination virtual page.  The physical page is not
    copied; it is remapped, which is precisely the operation that creates
    the "new mapping" consistency problem of Section 2.3.
    """
    descriptor = src_task.space.descriptor(src_vpage)
    if descriptor is None:
        raise KernelError(
            f"IPC: {src_task.name} has nothing mapped at vpage {src_vpage}")

    if kernel.policy.global_address_space:
        # One global address space: the page keeps its address, so the
        # transfer is trivially aligned (Section 2.1).
        dst_vpage = src_vpage
    else:
        color = None
        if kernel.policy.align_ipc:
            color = src_task.space.cache_page_of(src_vpage)
        dst_vpage = dst_task.space.allocate_vpages(1, color=color)

    # Map into the receiver first so the object stays referenced, then
    # tear down the sender side (lazily under the new system: only the
    # translation goes; the cache keeps the data for an aligned reuse).
    dst_task.space.map_page(dst_vpage, PageDescriptor(
        PageKind.IPC, descriptor.vm_object, descriptor.obj_page, dst_prot))
    if src_vpage in kernel.pmap.page_table(src_task.asid):
        kernel.pmap.remove(src_task.asid, src_vpage)
    src_task.space.unmap_page(src_vpage)
    kernel.machine.counters.ipc_page_moves += 1
    return dst_vpage
