"""A minimal file system over the disk and buffer cache.

Just enough structure for the evaluation's workloads: named files with
page-granularity contents, directories as name prefixes, and metadata
operations (stat) that touch server data structures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import KernelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass
class FileMeta:
    """Metadata for one file."""

    file_id: int
    name: str
    size_pages: int


class FileSystem:
    """Name -> file mapping with buffer-cache mediated block access."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._files: dict[str, FileMeta] = {}
        self._ids = itertools.count(1)

    # ---- namespace ---------------------------------------------------------------

    def create(self, name: str, size_pages: int = 0,
               on_disk: bool = False) -> FileMeta:
        """Create a file.  With ``on_disk`` the blocks are synthesized on
        the platter (a file that predates the benchmark); otherwise the
        file starts empty and grows as blocks are written."""
        if name in self._files:
            raise KernelError(f"file {name!r} already exists")
        meta = FileMeta(next(self._ids), name, size_pages)
        self._files[name] = meta
        if on_disk and size_pages:
            self.kernel.disk.preload(meta.file_id, size_pages)
        return meta

    def lookup(self, name: str) -> FileMeta:
        try:
            return self._files[name]
        except KeyError:
            raise KernelError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def remove(self, name: str) -> None:
        meta = self.lookup(name)
        self.kernel.buffer_cache.invalidate_file(meta.file_id)
        self.kernel.disk.discard(meta.file_id)
        del self._files[name]

    def listdir(self, prefix: str) -> list[str]:
        return sorted(n for n in self._files if n.startswith(prefix))

    # ---- block access -----------------------------------------------------------------

    def read_page_frame(self, name: str, page: int) -> int:
        """Frame holding one page of the file (via the buffer cache)."""
        meta = self.lookup(name)
        if page >= meta.size_pages:
            raise KernelError(f"{name!r}: page {page} beyond EOF")
        frame = self.kernel.buffer_cache.read_block(meta.file_id, page)
        self.kernel.buffer_cache.tick()
        return frame

    def write_page_from_frame(self, name: str, page: int,
                              src_ppage: int) -> None:
        """Store one page of data (from a frame) into the file."""
        meta = self.lookup(name)
        self.kernel.buffer_cache.write_block_from_frame(
            meta.file_id, page, src_ppage)
        if page >= meta.size_pages:
            meta.size_pages = page + 1
        self.kernel.buffer_cache.tick()

    def file_count(self) -> int:
        return len(self._files)
