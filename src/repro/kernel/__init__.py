"""OS services: tasks, IPC, buffer cache, file system, disk, Unix server."""

from repro.kernel.buffer_cache import BufferCache
from repro.kernel.disk import Disk
from repro.kernel.exec_loader import ExecLoader, Program
from repro.kernel.filesystem import FileMeta, FileSystem
from repro.kernel.ipc import transfer_page
from repro.kernel.pageout import PageoutDaemon
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess, fresh_tokens
from repro.kernel.scheduler import Scheduler, Tasklet
from repro.kernel.task import Task, fork_task
from repro.kernel.unix_server import Channel, UnixServer

__all__ = [
    "Kernel", "Task", "fork_task", "UserProcess", "fresh_tokens",
    "transfer_page", "BufferCache", "Disk", "FileSystem", "FileMeta",
    "ExecLoader", "Program", "UnixServer", "Channel", "PageoutDaemon",
    "Scheduler", "Tasklet",
]
