"""The file system's buffer cache, with write-behind.

Two behaviours of the paper's evaluation depend on this component:

* "all file system reads are satisfied by the Unix buffer cache" for the
  first two benchmarks (no DMA-writes), and
* "the file system's write-behind policy introduces delays between the
  dirtying and subsequent flushing of a buffer cache block, so the dirty
  lines tend to be written back naturally" — which is why DMA-read
  flushes are cheap (the cost model charges less for flushing
  non-resident lines).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import TYPE_CHECKING

from repro.errors import DmaTransferError, KernelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class BufferEntry:
    """One cached file block."""

    __slots__ = ("ppage", "dirty")

    def __init__(self, ppage: int):
        self.ppage = ppage
        self.dirty = False


class BufferCache:
    """LRU cache of file blocks in physical frames.

    Blocks are written behind: a dirtied block is queued and pushed to
    disk only after ``write_behind_delay`` further cache operations, or at
    eviction/sync time.
    """

    def __init__(self, kernel: "Kernel", capacity_pages: int = 64,
                 write_behind_delay: int = 24):
        self.kernel = kernel
        self.capacity = capacity_pages
        self.write_behind_delay = write_behind_delay
        self._entries: OrderedDict[tuple[int, int], BufferEntry] = OrderedDict()
        self._write_queue: deque[tuple[tuple[int, int], int]] = deque()
        self._op_count = 0
        self.hits = 0
        self.misses = 0

    # ---- block access ------------------------------------------------------------

    def read_block(self, file_id: int, page: int) -> int:
        """Frame holding the block, reading it from disk if necessary.

        If the disk exhausts its retry budget with transfer-verification
        failures against one frame, the frame itself is suspect: it is
        quarantined and the read is re-issued once into a fresh frame.
        A failure against the replacement propagates (fail-stop).
        """
        frame = self._lookup(file_id, page)
        if frame is not None:
            return frame
        entry = self._install(file_id, page)
        try:
            self.kernel.disk.read_block(file_id, page, entry.ppage)
        except DmaTransferError:
            del self._entries[(file_id, page)]
            self.kernel.quarantine_frame(entry.ppage)
            entry = self._install(file_id, page)
            try:
                self.kernel.disk.read_block(file_id, page, entry.ppage)
            except DmaTransferError:
                del self._entries[(file_id, page)]
                self.kernel.free_frame(entry.ppage)
                raise
        return entry.ppage

    def write_block_from_frame(self, file_id: int, page: int,
                               src_ppage: int) -> int:
        """Copy a whole frame into the block (a full-block file write).

        The block need not be read from disk first: it is completely
        overwritten, which is exactly the ``will_overwrite`` situation of
        Section 4.1.
        """
        frame = self._lookup(file_id, page)
        if frame is None:
            entry = self._install(file_id, page)
            frame = entry.ppage
        self.kernel.pmap.copy_page(src_ppage, frame)
        self._mark_dirty(file_id, page)
        return frame

    def dirty_block(self, file_id: int, page: int) -> None:
        """Note that the block's frame was modified through the CPU."""
        self._mark_dirty(file_id, page)

    # ---- write-behind ---------------------------------------------------------------

    def tick(self) -> None:
        """Advance the write-behind clock; called once per file operation."""
        self._op_count += 1
        self.kernel.pageout.maybe_reclaim()
        while (self._write_queue
               and self._op_count - self._write_queue[0][1]
               >= self.write_behind_delay):
            key, _ = self._write_queue.popleft()
            entry = self._entries.get(key)
            if entry is not None and entry.dirty:
                self.kernel.disk.write_block(key[0], key[1], entry.ppage)
                entry.dirty = False

    def sync(self) -> None:
        """Push every dirty block to disk (end-of-run / unmount)."""
        self._write_queue.clear()
        for key, entry in self._entries.items():
            if entry.dirty:
                self.kernel.disk.write_block(key[0], key[1], entry.ppage)
                entry.dirty = False

    def invalidate_file(self, file_id: int) -> None:
        """Drop a deleted file's blocks without writing them back."""
        for key in [k for k in self._entries if k[0] == file_id]:
            entry = self._entries.pop(key)
            self.kernel.free_frame(entry.ppage)

    # ---- internals ---------------------------------------------------------------------

    def _lookup(self, file_id: int, page: int) -> int | None:
        entry = self._entries.get((file_id, page))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end((file_id, page))
        return entry.ppage

    def _install(self, file_id: int, page: int) -> BufferEntry:
        if (file_id, page) in self._entries:
            raise KernelError("block already cached")
        self._evict_to_capacity()
        entry = BufferEntry(self.kernel.allocate_frame())
        self._entries[(file_id, page)] = entry
        return entry

    def _evict_to_capacity(self) -> None:
        while len(self._entries) >= self.capacity:
            key, entry = self._entries.popitem(last=False)
            if entry.dirty:
                self.kernel.disk.write_block(key[0], key[1], entry.ppage)
            self.kernel.free_frame(entry.ppage)

    def _mark_dirty(self, file_id: int, page: int) -> None:
        entry = self._entries.get((file_id, page))
        if entry is None:
            raise KernelError(f"dirtying uncached block ({file_id}, {page})")
        if not entry.dirty:
            entry.dirty = True
        self._write_queue.append(((file_id, page), self._op_count))

    def resident_blocks(self) -> int:
        return len(self._entries)
