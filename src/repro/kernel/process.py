"""User processes: the workload-facing convenience layer.

A :class:`UserProcess` couples a task with its Unix-server channel and
provides the file and process operations the benchmark programs are
written in terms of (open/read/write/stat/close, spawn of a program,
private memory).  All data movement happens through the simulated machine
— CPU loads and stores through the caches, IPC page remaps, buffer-cache
copies and disk DMA — so every consistency obligation of the paper arises
naturally from running a workload.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import KernelError
from repro.kernel.exec_loader import Program
from repro.kernel.task import Task, fork_task

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

_token_counter = itertools.count(0x1000)

# Cycles of user computation charged per "work unit" (e.g. formatting a
# page of text, compiling a chunk of source).
COMPUTE_UNIT_CYCLES = 20_000


def fresh_tokens(words: int) -> np.ndarray:
    """A page of distinguishable data for a write (unique word values so
    the staleness oracle can tell every version apart)."""
    base = np.uint64(next(_token_counter) << 16)
    return base + np.arange(words, dtype=np.uint64)


class UserProcess:
    """A Unix process served by the user-level server."""

    def __init__(self, kernel: "Kernel", name: str | None = None,
                 task: Task | None = None):
        self.kernel = kernel
        self.task = task if task is not None else kernel.create_task(name)
        kernel.unix_server.attach(self.task)
        self.alive = True

    # ---- file operations ---------------------------------------------------------

    def create(self, name: str) -> None:
        self.kernel.unix_server.sys_create(self.task, name)

    def open(self, name: str) -> int:
        return self.kernel.unix_server.sys_open(self.task, name)

    def close(self, fd: int) -> None:
        self.kernel.unix_server.sys_close(self.task, fd)

    def stat(self, name: str) -> None:
        self.kernel.unix_server.sys_stat(self.task, name)

    def remove(self, name: str) -> None:
        self.kernel.unix_server.sys_remove(self.task, name)

    def read_file_page(self, fd: int, page: int) -> np.ndarray:
        """Read one file page: the server IPC-transfers it here, the
        process consumes it as one block run through the cache, then
        releases it."""
        vpage = self.kernel.unix_server.sys_read_page(self.task, fd, page)
        values = self.task.read_block(
            vpage, 0, self.kernel.machine.memory.words_per_page)
        self.task.unmap(vpage)
        return values

    def read_file_pages(self, fd: int, n_pages: int, start: int = 0,
                        compute_units: int = 0) -> list[np.ndarray]:
        """Read ``n_pages`` consecutive file pages, optionally charging
        ``compute_units`` of work after each (the common workload rhythm)."""
        pages = []
        for page in range(start, start + n_pages):
            pages.append(self.read_file_page(fd, page))
            if compute_units:
                self.compute(compute_units)
        return pages

    def write_file_page(self, fd: int, page: int,
                        values: np.ndarray | None = None) -> None:
        """Write one file page: generate the data in private memory, then
        move the page to the server."""
        if values is None:
            values = fresh_tokens(self.kernel.machine.memory.words_per_page)
        vpage = self.task.allocate_anon(1)
        self.task.write_block(vpage, 0, values)
        self.kernel.unix_server.sys_write_page(self.task, fd, page, vpage)

    def write_file_pages(self, fd: int, n_pages: int, start: int = 0,
                         compute_units: int = 0) -> None:
        """Write ``n_pages`` consecutive file pages of fresh tokens."""
        for page in range(start, start + n_pages):
            if compute_units:
                self.compute(compute_units)
            self.write_file_page(fd, page)

    def copy_file(self, src_name: str, dst_name: str) -> None:
        """cp: read every page of one file, write it to another."""
        src_meta = self.kernel.fs.lookup(src_name)
        if not self.kernel.fs.exists(dst_name):
            self.create(dst_name)
        src_fd = self.open(src_name)
        dst_fd = self.open(dst_name)
        for page in range(src_meta.size_pages):
            values = self.read_file_page(src_fd, page)
            vpage = self.task.allocate_anon(1)
            self.task.write_block(vpage, 0, values)
            self.kernel.unix_server.sys_write_page(self.task, dst_fd, page,
                                                   vpage)
        self.close(src_fd)
        self.close(dst_fd)

    # ---- computation -------------------------------------------------------------------

    def compute(self, units: int = 1) -> None:
        self.kernel.machine.consume(units * COMPUTE_UNIT_CYCLES)

    def touch_memory(self, npages: int, writes_per_page: int = 4) -> int:
        """Allocate and dirty private working memory; returns the vpage."""
        start = self.task.allocate_anon(npages)
        for i in range(npages):
            tokens = [next(_token_counter) for _ in range(writes_per_page)]
            self.task.write_block(start + i, 0, tokens)
        return start

    # ---- process operations --------------------------------------------------------------

    def spawn(self, program: Program,
              work_units: int = 1) -> "UserProcess":
        """fork + exec: create a child running ``program``."""
        child_task = fork_task(self.kernel, self.task,
                               name=f"{program.name}")
        child = UserProcess(self.kernel, task=child_task)
        text_start, data_start = self.kernel.exec_loader.exec_into(
            child_task, program)
        # Run the program: fetch each text page (faulting it in through
        # the buffer cache and the d->i copy path) and touch the data.
        for i in range(program.text_pages):
            child_task.ifetch(text_start + i)
            child_task.ifetch(text_start + i, word=7)
        for i in range(max(program.data_pages, 1)):
            child_task.write(data_start + i, 0, next(_token_counter))
        child.compute(work_units)
        return child

    def exit(self) -> None:
        """Terminate: detach from the server and release the task."""
        if not self.alive:
            raise KernelError(f"{self.task.name} already exited")
        self.alive = False
        self.kernel.unix_server.detach(self.task)
        self.kernel.destroy_task(self.task)
