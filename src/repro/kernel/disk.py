"""A DMA disk with bounded, deterministic retry.

The disk moves whole pages between its platters and physical memory using
the DMA engine, which bypasses the caches (Section 1.1: "I/O devices that
rely on DMA do not snoop the cache").  Before each transfer it invokes
the pmap's DMA preparation — the flush-before-DMA-read and
purge-around-DMA-write obligations of Section 2.4.

Platter contents are real word arrays, so a missing flush before a disk
write stores stale data and the oracle (checking what the device reads)
catches it.

Resilience: device-level faults are *transient* — a busy controller, a
transfer the device's completion status rejects — and the disk re-issues
the whole operation (including the pmap preparation) up to
:data:`MAX_TRANSFER_ATTEMPTS` times.  Each retry charges a growing
backoff to the simulated clock, so recovery is visible in cycle counts.
A missing platter block is terminal and raises a structured
:class:`~repro.errors.KernelError` immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import DiskIOError, KernelError, TransientError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

#: total tries per transfer (the first attempt plus the retry budget)
MAX_TRANSFER_ATTEMPTS = 4


def synthetic_block(file_id: int, page: int, words_per_page: int) -> np.ndarray:
    """Deterministic initial contents for a pre-existing file block."""
    base = np.uint64((file_id << 40) | (page << 20) | 0x5A5A)
    return base + np.arange(words_per_page, dtype=np.uint64)


class Disk:
    """Page-granularity storage addressed by (file id, file page)."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._blocks: dict[tuple[int, int], np.ndarray] = {}
        self.reads = 0
        self.writes = 0
        self.retries = 0
        # Optional fault injector (disk.*.transient, disk.read.missing);
        # None in normal runs.
        self.injector = None

    def preload(self, file_id: int, npages: int) -> None:
        """Create a file's blocks directly on the platter (a file that
        existed before the benchmark started)."""
        wpp = self.kernel.machine.memory.words_per_page
        for page in range(npages):
            self._blocks[(file_id, page)] = synthetic_block(file_id, page, wpp)

    # ---- the retry loop --------------------------------------------------------

    def _device_fault(self, point: str, file_id: int, page: int,
                      ppage: int) -> None:
        """Raise an injected transient device error, if one fires."""
        if self.injector is None:
            return
        record = self.injector.fires(point, file_id=file_id, page=page,
                                     ppage=ppage)
        if record is not None:
            record.resolve("raised")
            error = DiskIOError(f"disk: transient {point.split('.')[1]} fault",
                                file_id=file_id, page=page, ppage=ppage)
            error.record = record
            raise error

    def _with_retries(self, kind: str, attempt: Callable[[], None],
                      file_id: int, page: int, ppage: int) -> None:
        """Run ``attempt`` with bounded retry and clock-charged backoff."""
        cost = self.kernel.machine.config.cost
        clock = self.kernel.machine.clock
        absorbed: list[TransientError] = []
        for attempt_no in range(1, MAX_TRANSFER_ATTEMPTS + 1):
            try:
                attempt()
            except TransientError as error:
                if attempt_no == MAX_TRANSFER_ATTEMPTS:
                    error.attempts = attempt_no
                    if error.record is not None:
                        error.record.resolve("detected")
                    raise
                absorbed.append(error)
                self.retries += 1
                self.kernel.machine.counters.disk_retries += 1
                clock.advance(cost.disk_retry_backoff * attempt_no)
                bus = self.kernel.machine.bus
                if bus is not None and bus.enabled:
                    bus.publish("disk-retry", op=kind, file_id=file_id,
                                page=page, attempt=attempt_no)
                continue
            for earlier in absorbed:
                if earlier.record is not None:
                    earlier.record.resolve("recovered")
            return

    # ---- transfers --------------------------------------------------------------

    def read_block(self, file_id: int, page: int, ppage: int) -> None:
        """Disk -> memory: a DMA-write into frame ``ppage``."""
        block = self._blocks.get((file_id, page))
        missing = (self.injector is not None
                   and self.injector.fires("disk.read.missing",
                                           file_id=file_id, page=page))
        if missing:
            missing.resolve("detected")
        if block is None or missing:
            raise KernelError("disk: no such block on the platter",
                              file_id=file_id, page=page)

        def attempt() -> None:
            self._device_fault("disk.read.transient", file_id, page, ppage)
            self.kernel.pmap.prepare_dma_write(ppage)
            self.kernel.machine.dma.dma_write(ppage, block)

        self._with_retries("read", attempt, file_id, page, ppage)
        self.reads += 1

    def write_block(self, file_id: int, page: int, ppage: int) -> None:
        """Memory -> disk: a DMA-read from frame ``ppage``."""
        def attempt() -> None:
            self._device_fault("disk.write.transient", file_id, page, ppage)
            self.kernel.pmap.prepare_dma_read(ppage)
            self._blocks[(file_id, page)] = \
                self.kernel.machine.dma.dma_read(ppage)

        self._with_retries("write", attempt, file_id, page, ppage)
        self.writes += 1

    # ---- platter inspection ------------------------------------------------------

    def has_block(self, file_id: int, page: int) -> bool:
        return (file_id, page) in self._blocks

    def block(self, file_id: int, page: int) -> np.ndarray:
        """Platter contents, for verification in tests."""
        return self._blocks[(file_id, page)].copy()

    def discard(self, file_id: int) -> None:
        for key in [k for k in self._blocks if k[0] == file_id]:
            del self._blocks[key]
