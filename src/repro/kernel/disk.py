"""A DMA disk.

The disk moves whole pages between its platters and physical memory using
the DMA engine, which bypasses the caches (Section 1.1: "I/O devices that
rely on DMA do not snoop the cache").  Before each transfer it invokes
the pmap's DMA preparation — the flush-before-DMA-read and
purge-around-DMA-write obligations of Section 2.4.

Platter contents are real word arrays, so a missing flush before a disk
write stores stale data and the oracle (checking what the device reads)
catches it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import KernelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


def synthetic_block(file_id: int, page: int, words_per_page: int) -> np.ndarray:
    """Deterministic initial contents for a pre-existing file block."""
    base = np.uint64((file_id << 40) | (page << 20) | 0x5A5A)
    return base + np.arange(words_per_page, dtype=np.uint64)


class Disk:
    """Page-granularity storage addressed by (file id, file page)."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._blocks: dict[tuple[int, int], np.ndarray] = {}
        self.reads = 0
        self.writes = 0

    def preload(self, file_id: int, npages: int) -> None:
        """Create a file's blocks directly on the platter (a file that
        existed before the benchmark started)."""
        wpp = self.kernel.machine.memory.words_per_page
        for page in range(npages):
            self._blocks[(file_id, page)] = synthetic_block(file_id, page, wpp)

    def read_block(self, file_id: int, page: int, ppage: int) -> None:
        """Disk -> memory: a DMA-write into frame ``ppage``."""
        block = self._blocks.get((file_id, page))
        if block is None:
            raise KernelError(f"disk: no block for file {file_id} page {page}")
        self.kernel.pmap.prepare_dma_write(ppage)
        self.kernel.machine.dma.dma_write(ppage, block)
        self.reads += 1

    def write_block(self, file_id: int, page: int, ppage: int) -> None:
        """Memory -> disk: a DMA-read from frame ``ppage``."""
        self.kernel.pmap.prepare_dma_read(ppage)
        self._blocks[(file_id, page)] = self.kernel.machine.dma.dma_read(ppage)
        self.writes += 1

    def has_block(self, file_id: int, page: int) -> bool:
        return (file_id, page) in self._blocks

    def block(self, file_id: int, page: int) -> np.ndarray:
        """Platter contents, for verification in tests."""
        return self._blocks[(file_id, page)].copy()

    def discard(self, file_id: int) -> None:
        for key in [k for k in self._blocks if k[0] == file_id]:
            del self._blocks[key]
