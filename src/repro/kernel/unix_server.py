"""The user-level Unix server.

Mach 3.0 provides Unix functionality through a server running at user
level (Section 2.5).  Two of its behaviours matter to the evaluation:

* **Shared syscall channels** — the server "allocates and shares several
  pages of memory with each Unix process ... as a high-bandwidth,
  low-latency channel".  The original server demanded these pages at
  fixed virtual addresses in both spaces, so they did not align and every
  request/reply exchange took consistency faults; the fixed behaviour
  lets the VM system choose (aligned) addresses (Section 4.2).
* **File I/O through IPC page transfer** — file data moves between the
  server and its clients as remapped pages (the Section 4.2 IPC path),
  with the server staging data out of the buffer cache via the page-
  preparation path (copy with an ultimate-address hint).
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import KernelError
from repro.kernel.ipc import transfer_page
from repro.vm.address_space import PageDescriptor, PageKind
from repro.vm.prot import Prot
from repro.vm.vm_object import Backing, VMObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task

# Cycles of server/kernel path length per syscall, independent of the
# memory-system events the simulator charges explicitly.
SYSCALL_BASE_CYCLES = 3000

# Where the original server demanded each process map its channel page.
CHANNEL_FIXED_PROC_VPAGE = 0x40
# Fixed base of the server's own channel region (both old and new).
CHANNEL_SERVER_BASE_VPAGE = 0x2000


@dataclass
class Channel:
    """One process's shared syscall page, mapped in both address spaces."""

    server_vpage: int
    proc_vpage: int


class UnixServer:
    """Serves open/stat/read/write/close for user processes."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.task = kernel.create_task("unix-server")
        self.metadata_vpage = self.task.allocate_anon(8)
        self._channels: dict[int, Channel] = {}
        self._fds: dict[tuple[int, int], str] = {}
        self._fd_counter = itertools.count(3)
        self._seq = itertools.count(1)
        self.syscalls = 0

    # ---- process attachment -----------------------------------------------------

    def attach(self, proc_task: "Task") -> Channel:
        """Create the shared channel page for a new process."""
        if proc_task.asid in self._channels:
            raise KernelError(f"{proc_task.name} already attached")
        channel_object = VMObject(1, Backing.ZERO_FILL)
        if self.kernel.policy.global_address_space:
            server_vpage = self.task.map_shared(channel_object,
                                                Prot.READ_WRITE)
            proc_vpage = proc_task.map_shared(channel_object,
                                              Prot.READ_WRITE)
            channel = Channel(server_vpage, proc_vpage)
            self._channels[proc_task.asid] = channel
            return channel
        server_vpage = CHANNEL_SERVER_BASE_VPAGE + len(self._channels)
        self.task.map_shared(channel_object, Prot.READ_WRITE,
                             fixed_vpage=server_vpage)
        if self.kernel.policy.align_server_pages:
            proc_vpage = proc_task.map_shared(
                channel_object, Prot.READ_WRITE,
                color=self.task.space.cache_page_of(server_vpage))
        else:
            proc_vpage = proc_task.map_shared(
                channel_object, Prot.READ_WRITE,
                fixed_vpage=CHANNEL_FIXED_PROC_VPAGE)
        channel = Channel(server_vpage, proc_vpage)
        self._channels[proc_task.asid] = channel
        return channel

    def detach(self, proc_task: "Task") -> None:
        channel = self._channels.pop(proc_task.asid, None)
        if channel is None:
            return
        self.task.unmap(channel.server_vpage)
        for key in [k for k in self._fds if k[0] == proc_task.asid]:
            del self._fds[key]

    # ---- the request/reply exchange over the shared page ---------------------------

    def _roundtrip(self, proc_task: "Task", opcode: int,
                   args: tuple[int, ...] = ()) -> None:
        """One syscall exchange: the process writes a request into the
        shared page, the server reads it, writes a reply, and the process
        reads the reply.  With unaligned channel pages every direction
        change is a consistency fault."""
        channel = self._channels.get(proc_task.asid)
        if channel is None:
            raise KernelError(f"{proc_task.name} has no syscall channel")
        seq = next(self._seq)
        request = (opcode, seq) + args[:2]
        proc_task.write_block(channel.proc_vpage, 0, request)
        self.task.read_block(channel.server_vpage, 0, len(request))
        # ... the server performs the operation, then replies ...
        self.task.write_block(channel.server_vpage, 8, (seq, 0))
        proc_task.read_block(channel.proc_vpage, 8, 2)
        self.kernel.machine.consume(SYSCALL_BASE_CYCLES)
        self.syscalls += 1
        self.kernel.pageout.maybe_reclaim()

    def _touch_metadata(self, name: str) -> None:
        """Server-internal bookkeeping: hash the name into the metadata
        region and update an entry (inode cache, name cache, ...).

        Uses a stable hash (crc32) so runs are deterministic across
        processes — Python's ``hash()`` is seeded per interpreter.
        """
        h = zlib.crc32(name.encode()) & 0x7FFFFFFF
        page = self.metadata_vpage + (h % 8)
        word = (h >> 3) % 256
        self.task.write(page, word, h)
        self.task.read(page, word)

    # ---- syscalls -----------------------------------------------------------------------

    def sys_create(self, proc_task: "Task", name: str) -> None:
        self._roundtrip(proc_task, 1)
        self.kernel.fs.create(name)
        self._touch_metadata(name)

    def sys_open(self, proc_task: "Task", name: str) -> int:
        self._roundtrip(proc_task, 2)
        self.kernel.fs.lookup(name)
        self._touch_metadata(name)
        fd = next(self._fd_counter)
        self._fds[(proc_task.asid, fd)] = name
        return fd

    def sys_close(self, proc_task: "Task", fd: int) -> None:
        self._roundtrip(proc_task, 3)
        self._fds.pop((proc_task.asid, fd), None)

    def sys_stat(self, proc_task: "Task", name: str) -> None:
        self._roundtrip(proc_task, 4)
        self.kernel.fs.lookup(name)
        self._touch_metadata(name)

    def sys_read_page(self, proc_task: "Task", fd: int, page: int) -> int:
        """Read one page of a file; returns the vpage where the data
        arrives in the process (an IPC-transferred page)."""
        self._roundtrip(proc_task, 5, (fd, page))
        name = self._fd_name(proc_task, fd)
        bc_frame = self.kernel.fs.read_page_frame(name, page)
        staging_vpage = self._stage_outgoing(bc_frame)
        return transfer_page(self.kernel, self.task, staging_vpage, proc_task)

    def sys_write_page(self, proc_task: "Task", fd: int, page: int,
                       src_vpage: int) -> None:
        """Write one page of process data to a file: the page is moved to
        the server by IPC, copied into the buffer cache, and retired."""
        self._roundtrip(proc_task, 6, (fd, page))
        name = self._fd_name(proc_task, fd)
        meta = self.kernel.fs.lookup(name)
        staging_vpage = transfer_page(self.kernel, proc_task, src_vpage,
                                      self.task)
        descriptor = self.task.space.descriptor(staging_vpage)
        frame = descriptor.vm_object.resident_page(descriptor.obj_page)
        if frame is None:
            raise KernelError("written page was never touched by the sender")
        self.kernel.buffer_cache.write_block_from_frame(
            meta.file_id, page, frame)
        if page >= meta.size_pages:
            meta.size_pages = page + 1
        self.kernel.buffer_cache.tick()
        self._retire_staging(staging_vpage)

    def sys_remove(self, proc_task: "Task", name: str) -> None:
        self._roundtrip(proc_task, 7)
        self.kernel.fs.remove(name)
        self._touch_metadata(name)

    # ---- staging helpers ------------------------------------------------------------------

    def _stage_outgoing(self, bc_frame: int) -> int:
        """Copy a buffer-cache block into a fresh message page mapped at a
        server staging address (the preparation aligns with the staging
        address under optimization D, and IPC will align the receiver with
        the staging address under optimization C)."""
        staging_vpage = self.task.space.allocate_vpages(1)
        color = None
        if self.kernel.policy.colored_free_list:
            color = self.task.space.cache_page_of(staging_vpage)
        frame = self.kernel.allocate_frame(color)
        self.kernel.pmap.copy_page(bc_frame, frame,
                                   ultimate_vpage=staging_vpage)
        message_object = VMObject(1, Backing.ZERO_FILL)
        message_object.establish(0, frame)
        self.task.space.map_page(staging_vpage, PageDescriptor(
            PageKind.IPC, message_object, 0, Prot.READ_WRITE))
        return staging_vpage

    def _retire_staging(self, staging_vpage: int) -> None:
        """Release a message page the server has finished consuming.  The
        page was *moved* here (the sender unmapped it at transfer), so the
        server holds the only mapping and can free the frame."""
        descriptor = self.task.space.descriptor(staging_vpage)
        vm_object = descriptor.vm_object
        if staging_vpage in self.kernel.pmap.page_table(self.task.asid):
            self.kernel.pmap.remove(self.task.asid, staging_vpage)
        self.task.space.unmap_page(staging_vpage)
        if vm_object.ref_count == 0:
            self.kernel.release_object_if_dead(vm_object)
        else:
            frame = vm_object.resident_page(descriptor.obj_page)
            if frame is not None:
                vm_object.evict(descriptor.obj_page)
                self.kernel.free_frame(frame)

    def _fd_name(self, proc_task: "Task", fd: int) -> str:
        try:
            return self._fds[(proc_task.asid, fd)]
        except KeyError:
            raise KernelError(
                f"{proc_task.name}: fd {fd} is not open") from None
