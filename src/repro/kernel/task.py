"""Tasks: address-space lifecycle, anonymous memory, fork with
copy-on-write.

The operating system is "a more aggressive client of virtual memory
sharing primitives" than applications (Section 2.2): copy-on-write fork,
IPC page transfer and server shared pages all create the multiple-mapping
patterns the consistency model has to manage.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.errors import KernelError
from repro.vm.address_space import AddressSpace, PageDescriptor, PageKind
from repro.vm.prot import Prot
from repro.vm.vm_object import Backing, VMObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class Task:
    """One Mach task: an address space plus kernel bookkeeping."""

    _names = itertools.count(1)

    def __init__(self, kernel: "Kernel", asid: int, name: str | None = None):
        self.kernel = kernel
        self.asid = asid
        self.name = name or f"task{next(self._names)}"
        shared_allocator = (kernel.global_va_allocator
                            if kernel.policy.global_address_space else None)
        self.space = AddressSpace(
            asid, kernel.machine.dcache.geo.num_cache_pages,
            shared_allocator=shared_allocator)
        self.alive = True

    # ---- memory allocation ------------------------------------------------------

    def allocate_anon(self, npages: int, vm_prot: Prot = Prot.READ_WRITE,
                      color: int | None = None) -> int:
        """Allocate zero-filled private memory; returns the first vpage.

        Pages materialize lazily: the first touch takes a mapping fault
        that zero-fills a frame (the Section 4.1 page-preparation path).
        """
        vm_object = VMObject(npages, Backing.ZERO_FILL)
        start = self.space.allocate_vpages(npages, color=color)
        for i in range(npages):
            self.space.map_page(start + i, PageDescriptor(
                PageKind.ANON, vm_object, i, vm_prot))
        return start

    def map_superpage(self, npages: int,
                      vm_prot: Prot = Prot.READ_WRITE) -> int:
        """Allocate a superpage region: ``npages`` physically contiguous
        frames mapped to an index-aligned virtual run; returns the first
        vpage.

        The region is materialized eagerly (a device buffer must exist
        before the device writes it) and its frames stay wired — they are
        not candidates for pageout.  Because both the frame run and the
        virtual run are consecutive and the bases align modulo the number
        of cache pages, every page satisfies
        ``vpage % ncp == ppage % ncp`` — the property a superpage-aware
        policy (VESPA) exploits; under the paper's policies the region is
        just ``npages`` ordinary mappings.
        """
        kernel = self.kernel
        frames = kernel.allocate_frame_run(npages)
        ncp = kernel.machine.dcache.geo.num_cache_pages
        start = self.space.allocate_vpages(npages, color=frames[0] % ncp)
        vm_object = VMObject(npages, Backing.ZERO_FILL)
        for i in range(npages):
            kernel.pmap.zero_fill_page(frames[i], ultimate_vpage=start + i)
            vm_object.establish(i, frames[i])
            self.space.map_page(start + i, PageDescriptor(
                PageKind.SHARED, vm_object, i, vm_prot))
        kernel.pmap.enter_superpage(self.asid, start, frames[0], npages,
                                    vm_prot)
        kernel.machine.counters.superpage_mappings += 1
        return start

    def map_shared(self, vm_object: VMObject, vm_prot: Prot,
                   fixed_vpage: int | None = None,
                   color: int | None = None) -> int:
        """Map an existing object's pages into this task, either at a fixed
        address (the old Unix-server behaviour) or at a VM-chosen address,
        optionally colored to align (Section 4.2)."""
        if self.kernel.policy.global_address_space:
            # One global address per object: every task maps it at the
            # same virtual page, so sharing always aligns (Section 2.1).
            if vm_object.global_base_vpage is None:
                vm_object.global_base_vpage = self.space.allocate_vpages(
                    vm_object.size_pages)
            start = vm_object.global_base_vpage
            existing = self.space.descriptor(start)
            if existing is not None:
                if existing.vm_object is not vm_object:
                    raise KernelError(
                        f"{self.name}: global address {start} claimed by "
                        f"another object")
                # Already mapped: in a single address space, sharing the
                # same object again is idempotent.
                return start
        elif fixed_vpage is not None:
            start = fixed_vpage
            for i in range(vm_object.size_pages):
                if (start + i) in self.space:
                    raise KernelError(
                        f"{self.name}: fixed mapping at vpage {start + i} "
                        f"collides with an existing mapping")
        else:
            start = self.space.allocate_vpages(vm_object.size_pages,
                                               color=color)
        for i in range(vm_object.size_pages):
            self.space.map_page(start + i, PageDescriptor(
                PageKind.SHARED, vm_object, i, vm_prot))
        return start

    def unmap(self, vpage: int, npages: int = 1) -> None:
        """Remove mappings; frames are released when their object dies."""
        for i in range(vpage, vpage + npages):
            if i in self.kernel.pmap.page_table(self.asid):
                self.kernel.pmap.remove(self.asid, i)
            descriptor = self.space.unmap_page(i)
            self.kernel.release_object_if_dead(descriptor.vm_object)

    # ---- access helpers (what user code does) -------------------------------------

    def va(self, vpage: int, offset: int = 0) -> int:
        return vpage * self.kernel.machine.page_size + offset

    def read(self, vpage: int, word: int = 0) -> int:
        return self.kernel.machine.read(self.asid, self.va(vpage, word * 4))

    def write(self, vpage: int, word: int, value: int) -> None:
        self.kernel.machine.write(self.asid, self.va(vpage, word * 4), value)

    def read_page(self, vpage: int):
        return self.kernel.machine.read_page(self.asid, self.va(vpage))

    def write_page(self, vpage: int, values) -> None:
        self.kernel.machine.write_page(self.asid, self.va(vpage), values)

    def read_block(self, vpage: int, word: int, n_words: int):
        return self.kernel.machine.read_block(
            self.asid, self.va(vpage, word * 4), n_words)

    def write_block(self, vpage: int, word: int, values) -> None:
        self.kernel.machine.write_block(
            self.asid, self.va(vpage, word * 4), values)

    def ifetch(self, vpage: int, word: int = 0) -> int:
        return self.kernel.machine.ifetch(self.asid, self.va(vpage, word * 4))


def fork_task(kernel: "Kernel", parent: Task, name: str | None = None) -> Task:
    """Create a child task sharing the parent's memory copy-on-write.

    Both sides are marked ``cow``; existing writable translations in the
    parent are write-protected so the next store (on either side) faults
    and receives a private copy — the classic multiple-mapping technique
    the paper cites from [Young et al. 87].
    """
    child = kernel.create_task(name or f"{parent.name}-child")
    for vpage in parent.space.mapped_vpages():
        descriptor = parent.space.descriptor(vpage)
        if descriptor.kind is PageKind.SHARED:
            # Server channels and explicitly shared regions are not
            # inherited; the child re-establishes its own (the Unix server
            # attaches a fresh channel page to every process).
            continue
        if descriptor.kind is PageKind.TEXT:
            child.space.map_page(vpage, PageDescriptor(
                descriptor.kind, descriptor.vm_object, descriptor.obj_page,
                descriptor.vm_prot, cow=False))
            continue
        descriptor.cow = True
        child.space.map_page(vpage, PageDescriptor(
            descriptor.kind, descriptor.vm_object, descriptor.obj_page,
            descriptor.vm_prot, cow=True))
        pte = kernel.pmap.page_table(parent.asid).lookup(vpage)
        if pte is not None and pte.vm_prot.allows(Prot.WRITE):
            kernel.pmap.protect(parent.asid, vpage,
                                pte.vm_prot & ~Prot.WRITE)
    return child
