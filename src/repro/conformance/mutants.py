"""Seeded mutants: deliberate consistency bugs the lockstep engine must
catch.

Each mutant patches :class:`~repro.core.cache_control.CacheControl` (the
class, so the pmap's engine instance and the explorer's pair are both
affected) with one of the classic ways a port of Figure 1 goes wrong:

* ``skip-dma-read-flush`` — the DMA-read preparation forgets dirtiness,
  so stanza 2 never flushes and the device reads memory that lags the
  cache (the Section 2.4 hazard).
* ``drop-stale-on-dma-write`` — stanza 4's ``stale |= mapped`` is lost
  for DMA-writes: previously cached copies are unmapped but not marked
  stale, so the bookkeeping decodes EMPTY where the model says STALE and
  a later access can hit the stale resident line without a purge.
* ``unconditional-will-overwrite`` — optimization F applied everywhere:
  the stale-target purge of stanza 3 is skipped even for word accesses
  that do not overwrite the whole page.

The mutation tests assert the lockstep engine flags each of these within
a bounded number of events and shrinks the witness to a short sequence.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.cache_control import CacheControl
from repro.core.states import MemoryOp


def _skip_dma_read_flush(original):
    def patched(self, state, op, target_vpage=None, **kwargs):
        if op is MemoryOp.DMA_READ:
            state.cache_dirty = False   # forget dirtiness: no flush fires
        return original(self, state, op, target_vpage, **kwargs)
    return patched


def _drop_stale_on_dma_write(original):
    def patched(self, state, op, target_vpage=None, **kwargs):
        if op is not MemoryOp.DMA_WRITE:
            return original(self, state, op, target_vpage, **kwargs)
        saved = state.stale
        state.stale = saved.copy()      # stanza 4 marks a throwaway vector
        try:
            return original(self, state, op, target_vpage, **kwargs)
        finally:
            state.stale = saved
    return patched


def _unconditional_will_overwrite(original):
    def patched(self, state, op, target_vpage=None, *, will_overwrite=False,
                **kwargs):
        return original(self, state, op, target_vpage, will_overwrite=True,
                        **kwargs)
    return patched


MUTANTS = {
    "skip-dma-read-flush": _skip_dma_read_flush,
    "drop-stale-on-dma-write": _drop_stale_on_dma_write,
    "unconditional-will-overwrite": _unconditional_will_overwrite,
}


@contextmanager
def apply_mutant(name: str):
    """Install one named mutant for the duration of the context."""
    if name not in MUTANTS:
        raise KeyError(f"unknown mutant {name!r}; "
                       f"known: {', '.join(sorted(MUTANTS))}")
    original = CacheControl.__call__
    CacheControl.__call__ = MUTANTS[name](original)
    try:
        yield
    finally:
        CacheControl.__call__ = original
