"""The lockstep conformance engine: shadow a running kernel with the
Table 2 model.

A :class:`ConformanceMonitor` attaches to a booted kernel the way the
tracer does — pure observation, no behaviour, cost or counter changes —
but at the *hardware* boundary: every data-cache access (word, run, and
page granularity), every data-cache flush/purge, and every DMA transfer
is replayed through one :class:`~repro.core.model.ConsistencyModel` per
physical frame.  Wrapping the cache rather than the pmap callbacks means
*every* path that touches a line is observed, including the quarantine
and uncached-conversion sweeps that bypass the callback layer.

Two judgments run at every CPU/DMA access (never at flush/purge
instants, where the implementation state is legitimately mid-transition):

* **missed action** — replaying the access through the model must demand
  no consistency action: a correct implementation discharged them all
  (observed as flush/purge events) before the access reached the cache.
  One exemption mirrors optimization F: a full-page write may skip the
  purge of its stale *target* page, because the write-allocate overwrites
  every word the purge would have discarded.
* **state divergence** — the bookkeeping (Table 3, folding pending
  hardware modified bits) must agree with the model wherever disagreement
  is dangerous: a model-STALE line must be implementation-STALE (anything
  else can silently deliver stale data), and a model-DIRTY line must be
  implementation-DIRTY (anything else can skip a needed flush).  In the
  other direction the implementation may be *pessimistic* — e.g. PRESENT
  where the model says EMPTY after a flush (Figure 1 keeps ``mapped``
  set), or STALE where the model says EMPTY after a flush-instead-of-
  purge — which is sound and left alone.

A divergence raises a structured
:class:`~repro.errors.ConformanceError` carrying the observed event
prefix for replay, or is recorded when ``record_only`` is set (the chaos
harness shadows fault plans this way and attributes divergences to
injected faults afterwards).  Arc coverage is tracked against
*pre-action* states (see :mod:`repro.conformance.coverage`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.conformance.coverage import ArcCoverage
from repro.core.model import ConsistencyModel
from repro.core.page_state import PhysPageState
from repro.core.states import LineState, MemoryOp
from repro.core.variants import model_factory_for_geometry
from repro.errors import ConformanceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass(frozen=True)
class ObservedEvent:
    """One event the monitor replayed through the model."""

    seq: int
    cycles: int
    op: MemoryOp
    frame: int
    cache_page: int | None     # None for DMA transfers

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = (f"frame {self.frame}" if self.cache_page is None
                 else f"frame {self.frame} cache page {self.cache_page}")
        return f"#{self.seq} [{self.cycles}] {self.op} {where}"


@dataclass
class Divergence:
    """One disagreement between the simulator and the model."""

    seq: int
    kind: str                  # "missed-action" | "state-divergence"
    frame: int
    cache_page: int | None
    detail: str
    cpu: int | None = None     # which CPU's monitor observed it (SMP only)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"event #{self.seq}: "
                + (f"cpu{self.cpu}: " if self.cpu is not None else "")
                + f"{self.kind} on frame {self.frame}"
                + (f" cache page {self.cache_page}"
                   if self.cache_page is not None else "")
                + f": {self.detail}")


def effective_decode(state: PhysPageState, cache_page: int) -> LineState:
    """Table 3 decoding with pending hardware modified bits folded in.

    An unfaulted store through a writable mapping sets the mapping's
    modified bit; ``sync_modified`` folds it into ``cache_dirty`` at the
    next policy entry (Section 4.1).  Between the two the line is already
    physically dirty, so the conformance comparison treats it as DIRTY.
    """
    if state.stale[cache_page]:
        return LineState.STALE
    for mapping in state.mappings:
        if mapping.modified and state.cache_page_of(mapping.vpage) == cache_page:
            return LineState.DIRTY
    return state.decode(cache_page)


@dataclass
class ConformanceSummary:
    """What one shadowed run exercised (for stats/experiments reporting)."""

    events: int
    frames: int
    divergences: int
    coverage_percent: float
    uncovered: list = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = ("no divergences" if not self.divergences
                   else f"{self.divergences} DIVERGENCES")
        return (f"{self.events} events over {self.frames} frames, {verdict}, "
                f"arc coverage {self.coverage_percent:.1f}%")


class ConformanceMonitor:
    """Attachable lockstep differential oracle for one kernel.

    Args:
        kernel: the booted kernel to shadow.  Attaching after boot is
            sound: the model starts all-EMPTY, which demands nothing and
            forbids nothing, so pre-attach history can only *hide*
            obligations, never invent them.
        record_only: collect divergences instead of raising on the first.
        max_events: bound the replay log (a deque keeps the most recent
            events for the error prefix); None keeps everything.
        cache: the cache object to wrap; defaults to ``machine.dcache``.
            :class:`SmpConformanceMonitor` passes each per-CPU cache of a
            cluster here, one monitor per CPU.
        cpu: CPU number for divergence attribution (None on a
            uniprocessor).
        wrap_dma: also wrap the DMA engine.  Per-CPU monitors set this
            False; the composite wraps DMA once and broadcasts.
        coverage: a shared :class:`ArcCoverage` to record into (per-CPU
            monitors share one); None builds a private instance.
        model_factory: ``factory(num_cache_pages) -> model`` building the
            per-frame shadow model.  None derives the factory from the
            wrapped cache's geometry
            (:func:`repro.core.variants.model_factory_for_geometry`), so
            each hierarchy configuration is checked against *its* derived
            Table 2 — the canonical model for any write-back virtually
            indexed cache (whatever its associativity or lower levels),
            the write-through and physically-indexed derivations for
            those variants.
    """

    def __init__(self, kernel: "Kernel", record_only: bool = False,
                 max_events: int | None = 4096, *,
                 cache=None, cpu: int | None = None, wrap_dma: bool = True,
                 coverage: ArcCoverage | None = None, model_factory=None):
        self.kernel = kernel
        self.machine = kernel.machine
        self.cache = cache if cache is not None else self.machine.dcache
        self.cpu = cpu
        self.wrap_dma = wrap_dma
        self.page_size = self.machine.page_size
        self.words_per_page = self.machine.memory.words_per_page
        self.ncp = self.cache.geo.num_cache_pages
        self.record_only = record_only
        self.model_factory = (model_factory if model_factory is not None
                              else model_factory_for_geometry(self.cache.geo))
        self.models: dict[int, ConsistencyModel] = {}
        self.coverage = coverage if coverage is not None else ArcCoverage()
        self.events: deque[ObservedEvent] = deque(maxlen=max_events)
        self.events_seen = 0
        self.divergences: list[Divergence] = []
        # Pre-action state snapshots: frame -> model states at the first
        # flush/purge observed since the frame's last access (coverage
        # attributes access arcs to the state *before* its actions).
        self._pre_action: dict[int, list[LineState]] = {}
        # One divergence per (frame, kind): a lost flush would otherwise
        # re-report at every subsequent access of the frame.
        self._reported: set[tuple[int, str]] = set()
        self._originals: dict[str, object] = {}
        self._attached = False

    # ---- attachment ------------------------------------------------------------

    def attach(self) -> "ConformanceMonitor":
        """Install the observation wrappers (idempotent)."""
        if self._attached:
            return self
        dcache = self.cache
        dma = self.machine.dma
        self._originals = {
            "read": dcache.read, "write": dcache.write,
            "read_run": dcache.read_run, "write_run": dcache.write_run,
            "read_page": dcache.read_page, "write_page": dcache.write_page,
            "zero_page": dcache.zero_page,
            "flush_page_frame": dcache.flush_page_frame,
            "purge_page_frame": dcache.purge_page_frame,
        }
        if self.wrap_dma:
            self._originals["dma_read"] = dma.dma_read
            self._originals["dma_write"] = dma.dma_write
        orig = self._originals

        def read(vaddr, paddr):
            self._on_access(MemoryOp.CPU_READ, vaddr, paddr)
            return orig["read"](vaddr, paddr)

        def write(vaddr, paddr, value):
            self._on_access(MemoryOp.CPU_WRITE, vaddr, paddr)
            return orig["write"](vaddr, paddr, value)

        def read_run(vaddr, paddr, n_words):
            self._on_access(MemoryOp.CPU_READ, vaddr, paddr)
            return orig["read_run"](vaddr, paddr, n_words)

        def write_run(vaddr, paddr, values):
            self._on_access(MemoryOp.CPU_WRITE, vaddr, paddr,
                            full_page=(paddr % self.page_size == 0
                                       and len(values) == self.words_per_page))
            return orig["write_run"](vaddr, paddr, values)

        def read_page(va_page_base, pa_page_base):
            self._on_access(MemoryOp.CPU_READ, va_page_base, pa_page_base)
            return orig["read_page"](va_page_base, pa_page_base)

        def write_page(va_page_base, pa_page_base, values):
            self._on_access(MemoryOp.CPU_WRITE, va_page_base, pa_page_base,
                            full_page=True)
            return orig["write_page"](va_page_base, pa_page_base, values)

        def zero_page(va_page_base, pa_page_base):
            self._on_access(MemoryOp.CPU_WRITE, va_page_base, pa_page_base,
                            full_page=True)
            return orig["zero_page"](va_page_base, pa_page_base)

        def flush_page_frame(cache_page, pa_page_base, reason):
            self._on_cache_op(MemoryOp.FLUSH, cache_page, pa_page_base)
            return orig["flush_page_frame"](cache_page, pa_page_base, reason)

        def purge_page_frame(cache_page, pa_page_base, reason):
            self._on_cache_op(MemoryOp.PURGE, cache_page, pa_page_base)
            return orig["purge_page_frame"](cache_page, pa_page_base, reason)

        dcache.read, dcache.write = read, write
        dcache.read_run, dcache.write_run = read_run, write_run
        dcache.read_page, dcache.write_page = read_page, write_page
        dcache.zero_page = zero_page
        dcache.flush_page_frame = flush_page_frame
        dcache.purge_page_frame = purge_page_frame

        if self.wrap_dma:
            def dma_read(ppage):
                self._on_dma(MemoryOp.DMA_READ, ppage)
                return orig["dma_read"](ppage)

            def dma_write(ppage, values):
                self._on_dma(MemoryOp.DMA_WRITE, ppage)
                return orig["dma_write"](ppage, values)

            dma.dma_read, dma.dma_write = dma_read, dma_write
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        dcache = self.cache
        dma = self.machine.dma
        for name in ("read", "write", "read_run", "write_run", "read_page",
                     "write_page", "zero_page", "flush_page_frame",
                     "purge_page_frame"):
            setattr(dcache, name, self._originals[name])
        if self.wrap_dma:
            dma.dma_read = self._originals["dma_read"]
            dma.dma_write = self._originals["dma_write"]
        self._attached = False

    def __enter__(self) -> "ConformanceMonitor":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ---- model plumbing ---------------------------------------------------------

    def model_of(self, frame: int) -> ConsistencyModel:
        model = self.models.get(frame)
        if model is None:
            model = self.model_factory(self.ncp)
            self.models[frame] = model
        return model

    def _log(self, op: MemoryOp, frame: int,
             cache_page: int | None) -> int:
        seq = self.events_seen
        self.events.append(ObservedEvent(seq, self.machine.clock.cycles,
                                         op, frame, cache_page))
        self.events_seen += 1
        return seq

    # ---- observations -----------------------------------------------------------

    def _on_cache_op(self, op: MemoryOp, cache_page: int,
                     pa_page_base: int) -> None:
        frame = pa_page_base // self.page_size
        model = self.model_of(frame)
        if frame not in self._pre_action:
            self._pre_action[frame] = list(model.states)
        self.coverage.record_event(op, model.states, cache_page)
        model.apply(op, cache_page)
        self._log(op, frame, cache_page)

    def _on_dma(self, op: MemoryOp, frame: int) -> None:
        self._check_access(op, frame, None, full_page=False)

    def observe_dma(self, op: MemoryOp, frame: int) -> None:
        """Feed a DMA transfer observed elsewhere into this monitor's
        models (the SMP composite wraps DMA once and broadcasts here)."""
        self._on_dma(op, frame)

    def _on_access(self, op: MemoryOp, vaddr: int, paddr: int,
                   full_page: bool = False) -> None:
        frame = paddr // self.page_size
        cache_page = self.cache.cache_page_of(vaddr, paddr)
        self._check_access(op, frame, cache_page, full_page)

    def _check_access(self, op: MemoryOp, frame: int,
                      cache_page: int | None, full_page: bool) -> None:
        model = self.model_of(frame)
        pre = self._pre_action.pop(frame, None)
        if pre is None:
            pre = list(model.states)
        required = model.apply(op, cache_page)
        self.coverage.record_event(op, pre, cache_page)
        seq = self._log(op, frame, cache_page)

        missing = [a for a in required
                   if not (full_page and op is MemoryOp.CPU_WRITE
                           and a.cache_page == cache_page)]
        if missing:
            # A policy with better information than the Table 2 model
            # (the reverse-lookup table) may have proven an action
            # unnecessary; the model transitioned as-if-performed either
            # way, so a fully waived miss leaves both sides agreeing and
            # only the state comparison remains.  The default policy
            # waives nothing.
            cpolicy = getattr(self.kernel, "cpolicy", None)
            if cpolicy is not None and all(
                    cpolicy.waives_missed_action(self.kernel, self.cache,
                                                 frame, a)
                    for a in missing):
                self._check_states(seq, frame, model)
                return
            self._diverge(seq, "missed-action", frame, cache_page,
                          f"{op} proceeded although the model still "
                          f"requires {', '.join(map(str, missing))}")
            return
        self._check_states(seq, frame, model)

    def _check_states(self, seq: int, frame: int,
                      model: ConsistencyModel) -> None:
        """The dangerous-direction state comparison (model S => impl S,
        model D => impl effective-D); only model-S/D lines can disagree
        dangerously, so only those are compared."""
        state = self.kernel.pmap.page_states.get(frame)
        if state is None or state.uncached:
            return  # no bookkeeping to compare (quarantined / uncached)
        for c, model_state in enumerate(model.states):
            if model_state is LineState.PRESENT or model_state is LineState.EMPTY:
                continue
            impl = effective_decode(state, c)
            if impl is not model_state:
                self._diverge(
                    seq, "state-divergence", frame, c,
                    f"model says {model_state.name} but the implementation "
                    f"decodes {impl.name} (mapped={state.mapped[c]}, "
                    f"stale={state.stale[c]}, dirty={state.cache_dirty})")
                return

    def _diverge(self, seq: int, kind: str, frame: int,
                 cache_page: int | None, detail: str) -> None:
        key = (frame, kind)
        if key in self._reported:
            return
        self._reported.add(key)
        divergence = Divergence(seq, kind, frame, cache_page, detail,
                                cpu=self.cpu)
        self.divergences.append(divergence)
        bus = self.machine.bus
        if bus is not None and bus.enabled:
            bus.publish("divergence", divergence=kind, frame=frame,
                        cache_page=cache_page, detail=detail, cpu=self.cpu)
        if self.record_only:
            return
        where = f"cpu{self.cpu}: " if self.cpu is not None else ""
        raise ConformanceError(
            f"lockstep divergence: {where}{detail} "
            f"(replay prefix: {len(self.events)} of {self.events_seen} "
            f"events retained)",
            kind=kind, frame=frame, cache_page=cache_page, event_index=seq,
            cpu=self.cpu, prefix=tuple(self.events))

    # ---- reporting -------------------------------------------------------------

    def summary(self) -> ConformanceSummary:
        return ConformanceSummary(
            events=self.events_seen, frames=len(self.models),
            divergences=len(self.divergences),
            coverage_percent=self.coverage.percent,
            uncovered=self.coverage.uncovered())

    @property
    def ok(self) -> bool:
        return not self.divergences


class SmpConformanceMonitor:
    """Per-CPU lockstep over a :class:`~repro.hw.smp.CoherentCluster`.

    One :class:`ConformanceMonitor` shadows each CPU's data cache,
    sharing a single :class:`ArcCoverage` (the Table 2 arcs are
    CPU-agnostic, so the union is the meaningful coverage number).
    Cluster-wide management operations are observed per CPU naturally —
    the cluster's flush/purge loops call each wrapped cache — while DMA
    is wrapped once here and broadcast to every monitor, since a device
    transfer changes the frame's standing for every CPU at once.

    Soundness of the per-CPU projection: each CPU's model sees that
    CPU's accesses plus all management and DMA traffic, so it demands a
    subset of what a whole-machine model would — no false missed-action
    reports — and the dangerous-direction state checks compare against
    the shared (CPU-agnostic) pmap bookkeeping exactly as on one CPU.
    Divergences carry the observing CPU (:attr:`Divergence.cpu`).
    """

    def __init__(self, kernel: "Kernel", record_only: bool = False,
                 max_events: int | None = 4096):
        cluster = kernel.machine.cluster
        if cluster is None:
            raise ConformanceError(
                "SmpConformanceMonitor needs a multi-CPU machine; "
                "use ConformanceMonitor on a uniprocessor")
        self.kernel = kernel
        self.machine = kernel.machine
        self.record_only = record_only
        self.coverage = ArcCoverage()
        self.monitors = [
            ConformanceMonitor(kernel, record_only=record_only,
                               max_events=max_events, cache=cache, cpu=i,
                               wrap_dma=False, coverage=self.coverage)
            for i, cache in enumerate(cluster.caches)
        ]
        self._originals: dict[str, object] = {}
        self._attached = False

    def attach(self) -> "SmpConformanceMonitor":
        if self._attached:
            return self
        for monitor in self.monitors:
            monitor.attach()
        dma = self.machine.dma
        self._originals = {"dma_read": dma.dma_read,
                           "dma_write": dma.dma_write}
        orig = self._originals
        monitors = self.monitors

        def dma_read(ppage):
            for monitor in monitors:
                monitor.observe_dma(MemoryOp.DMA_READ, ppage)
            return orig["dma_read"](ppage)

        def dma_write(ppage, values):
            for monitor in monitors:
                monitor.observe_dma(MemoryOp.DMA_WRITE, ppage)
            return orig["dma_write"](ppage, values)

        dma.dma_read, dma.dma_write = dma_read, dma_write
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        dma = self.machine.dma
        dma.dma_read = self._originals["dma_read"]
        dma.dma_write = self._originals["dma_write"]
        for monitor in self.monitors:
            monitor.detach()
        self._attached = False

    def __enter__(self) -> "SmpConformanceMonitor":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ---- aggregated reporting -----------------------------------------------

    @property
    def events_seen(self) -> int:
        return sum(m.events_seen for m in self.monitors)

    @property
    def divergences(self) -> list[Divergence]:
        out = [d for m in self.monitors for d in m.divergences]
        out.sort(key=lambda d: (d.seq, d.cpu if d.cpu is not None else -1))
        return out

    def per_cpu_divergences(self) -> dict[int, int]:
        return {m.cpu: len(m.divergences) for m in self.monitors}

    def summary(self) -> ConformanceSummary:
        frames = set()
        for monitor in self.monitors:
            frames.update(monitor.models)
        return ConformanceSummary(
            events=self.events_seen, frames=len(frames),
            divergences=len(self.divergences),
            coverage_percent=self.coverage.percent,
            uncovered=self.coverage.uncovered())

    @property
    def ok(self) -> bool:
        return all(m.ok for m in self.monitors)
