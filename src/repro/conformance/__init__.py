"""Lockstep conformance checking against the Table 2 model.

Three layers, one specification:

* :mod:`~repro.conformance.coverage` — which (state x event) arcs of
  Table 2 a run exercised;
* :mod:`~repro.conformance.lockstep` — shadow a running kernel with one
  :class:`~repro.core.model.ConsistencyModel` per physical frame and
  flag any divergence as a structured
  :class:`~repro.errors.ConformanceError`;
* :mod:`~repro.conformance.explorer` — seeded coverage-guided random
  sequences over the model/engine pair, with counterexample shrinking,
  plus the mutants the whole apparatus is validated against.

See docs/conformance.md for the engine design and how to read a
counterexample.
"""

from repro.conformance.coverage import ALL_ARCS, ArcCoverage, arcs_of_event
from repro.conformance.explorer import (Counterexample, ExplorationReport,
                                        Explorer, LockstepPair,
                                        StepDivergence, apply_cache_op)
from repro.conformance.lockstep import (ConformanceMonitor,
                                        ConformanceSummary, Divergence,
                                        ObservedEvent, SmpConformanceMonitor,
                                        effective_decode)
from repro.conformance.mutants import MUTANTS, apply_mutant

__all__ = [
    "ALL_ARCS", "ArcCoverage", "arcs_of_event",
    "ConformanceMonitor", "ConformanceSummary", "Divergence",
    "ObservedEvent", "SmpConformanceMonitor", "effective_decode",
    "Counterexample", "ExplorationReport", "Explorer", "LockstepPair",
    "StepDivergence", "apply_cache_op",
    "MUTANTS", "apply_mutant",
]
