"""Coverage-guided random exploration of the model/engine lockstep pair.

The exhaustive checker (:mod:`repro.core.exhaustive`) covers *every*
sequence up to a small depth; the explorer goes deeper (default 16
events) by sampling, and spends its randomness where it pays: at each
step it prefers events that would traverse a Table 2 arc no earlier
event has covered (computed against the current model states), falling
back to uniform choice once everything reachable from here is known.
All randomness comes from one ``random.Random(seed)`` — a (seed,
parameters) pair fully determines the run, like the chaos harness.

Each generated event drives a :class:`LockstepPair`: the Figure 1 engine
runs first, its performed flushes/purges are fed to the model as events
(the model then reflects the physical cache truth), and the raw event is
applied last — at which point the model must demand nothing (the engine
already discharged every obligation) and the dangerous-direction state
comparison of the lockstep monitor must hold.  Unlike the kernel-level
monitor, the alphabet here includes explicit Purge/Flush events, so all
48 arcs of Table 2 are reachable (the exhaustive arc test asserts
exactly that).

A failing sequence is shrunk to a locally minimal counterexample by
greedy event deletion — any subsequence that still diverges replaces the
original — which against the seeded mutants lands at 2-4 events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.conformance.coverage import ArcCoverage
from repro.core.cache_control import CacheControl
from repro.core.exhaustive import event_alphabet
from repro.core.model import ConsistencyModel
from repro.core.page_state import PhysPageState
from repro.core.states import ACTION_EVENT, LineState, MemoryOp
from repro.errors import ReproError

#: One explorer event: (operation, target cache page or None for DMA).
Event = tuple[MemoryOp, int | None]


def apply_cache_op(state: PhysPageState, op: MemoryOp,
                   cache_page: int) -> None:
    """Apply an explicit Purge/Flush to the Table 3 bookkeeping: the line
    leaves the cache, so the page is neither mapped nor stale there, and
    dirtiness is gone if it lived in this cache page."""
    if (state.cache_dirty and state.mapped[cache_page]
            and state.find_mapped_cache_page() == cache_page):
        state.cache_dirty = False
    state.mapped[cache_page] = False
    state.stale[cache_page] = False


@dataclass(frozen=True)
class StepDivergence:
    """Where and how a sequence diverged."""

    step: int                  # index of the diverging event
    kind: str                  # "missed-action" | "state-divergence" | "invariant"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"step {self.step}: {self.kind}: {self.detail}"


class LockstepPair:
    """One model shadowing one Figure 1 engine, event by event."""

    def __init__(self, num_cache_pages: int, *,
                 eager_purge_stale: bool = False,
                 coverage: ArcCoverage | None = None):
        self.num_cache_pages = num_cache_pages
        self.model = ConsistencyModel(num_cache_pages)
        self.state = PhysPageState(0, num_cache_pages)
        self.coverage = coverage
        self.engine = CacheControl(lambda *a: None, lambda *a: None,
                                   lambda *a: None,
                                   eager_purge_stale=eager_purge_stale)

    def step(self, op: MemoryOp, target: int | None) -> StepDivergence | None:
        """Run one event through both sides; returns the divergence, if
        any (the step index is filled in by the caller)."""
        pre = list(self.model.states)
        if op.is_cache_op:
            self._cover(op, pre, target)
            self.model.apply(op, target)
            apply_cache_op(self.state, op, target)
            return self._check_states()
        performed = self.engine(self.state, op,
                                target if op.is_cpu else None,
                                need_data=(op is not MemoryOp.DMA_WRITE))
        # The engine's actions are ground truth for the physical cache:
        # feed them to the model first, then the raw event — which must
        # then demand nothing.
        for done in performed:
            cache_op = ACTION_EVENT[done.action]
            self._cover(cache_op, self.model.states, done.cache_page)
            self.model.apply(cache_op, done.cache_page)
        required = self.model.apply(op, target)
        self._cover(op, pre, target)
        if required:
            return StepDivergence(
                -1, "missed-action",
                f"{op} proceeded although the model still requires "
                f"{', '.join(map(str, required))}")
        try:
            self.model.validate()
            self.state.validate()
        except ReproError as error:
            return StepDivergence(-1, "invariant", str(error))
        return self._check_states()

    def _cover(self, op: MemoryOp, pre_states: list[LineState],
               target: int | None) -> None:
        if self.coverage is not None:
            self.coverage.record_event(op, pre_states, target)

    def _check_states(self) -> StepDivergence | None:
        """Dangerous-direction comparison: model S => impl S, model D =>
        impl D (see the lockstep monitor's docstring for why the other
        direction is sound pessimism)."""
        for c, model_state in enumerate(self.model.states):
            if model_state not in (LineState.STALE, LineState.DIRTY):
                continue
            impl = self.state.decode(c)
            if impl is not model_state:
                return StepDivergence(
                    -1, "state-divergence",
                    f"cache page {c}: model says {model_state.name} but the "
                    f"engine's bookkeeping decodes {impl.name}")
        return None


@dataclass
class Counterexample:
    """A diverging sequence, as found and as shrunk."""

    sequence: list[Event]
    divergence: StepDivergence
    shrunk: list[Event] = field(default_factory=list)

    @property
    def events_until_detection(self) -> int:
        return self.divergence.step + 1

    def render(self) -> str:
        def fmt(seq):
            return " ; ".join(f"{op}" + (f"@{t}" if t is not None else "")
                              for op, t in seq)
        return (f"{self.divergence.kind} after "
                f"{self.events_until_detection} events\n"
                f"  found:  {fmt(self.sequence)}\n"
                f"  shrunk: {fmt(self.shrunk)} ({len(self.shrunk)} events)\n"
                f"  detail: {self.divergence.detail}")

    def to_dict(self) -> dict:
        def encode(seq):
            return [[op.name, target] for op, target in seq]
        return {"sequence": encode(self.sequence),
                "divergence": {"step": self.divergence.step,
                               "kind": self.divergence.kind,
                               "detail": self.divergence.detail},
                "shrunk": encode(self.shrunk)}

    @classmethod
    def from_dict(cls, data: dict) -> "Counterexample":
        def decode(rows):
            return [(MemoryOp[op], target) for op, target in rows]
        d = data["divergence"]
        return cls(sequence=decode(data["sequence"]),
                   divergence=StepDivergence(d["step"], d["kind"],
                                             d["detail"]),
                   shrunk=decode(data["shrunk"]))


@dataclass
class ExplorationReport:
    """What one explorer run covered and found."""

    num_cache_pages: int
    seed: int
    sequences: int
    events: int
    counterexamples: list[Counterexample]
    coverage: ArcCoverage

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    @property
    def divergences(self) -> int:
        return len(self.counterexamples)

    def render(self) -> str:
        lines = [f"explorer: {self.sequences} sequences, {self.events} "
                 f"events, {self.divergences} divergences "
                 f"(seed {self.seed}, {self.num_cache_pages} cache pages)",
                 self.coverage.summary()]
        if not self.coverage.complete:
            lines.append("  uncovered: "
                         + ArcCoverage.render_arcs(self.coverage.uncovered()))
        for ce in self.counterexamples:
            lines.append(ce.render())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-safe encoding that :meth:`from_dict` inverts exactly;
        the farm runs explorer shards in worker processes and merges the
        reports (and their arc coverage) in the parent."""
        return {"num_cache_pages": self.num_cache_pages, "seed": self.seed,
                "sequences": self.sequences, "events": self.events,
                "counterexamples": [ce.to_dict()
                                    for ce in self.counterexamples],
                "coverage": self.coverage.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationReport":
        return cls(num_cache_pages=data["num_cache_pages"],
                   seed=data["seed"], sequences=data["sequences"],
                   events=data["events"],
                   counterexamples=[Counterexample.from_dict(ce)
                                    for ce in data["counterexamples"]],
                   coverage=ArcCoverage.from_dict(data["coverage"]))


def merge_exploration_reports(
        reports: list["ExplorationReport"]) -> "ExplorationReport":
    """Combine per-seed explorer shards: coverage merges, sequence and
    event counts add, counterexamples concatenate.  ``seed`` of the merge
    is the first shard's (the shard seeds are recorded per report)."""
    if not reports:
        raise ValueError("no exploration reports to merge")
    coverage = ArcCoverage()
    counterexamples: list[Counterexample] = []
    for report in reports:
        coverage.merge(report.coverage)
        counterexamples += report.counterexamples
    first = reports[0]
    return ExplorationReport(num_cache_pages=first.num_cache_pages,
                             seed=first.seed,
                             sequences=sum(r.sequences for r in reports),
                             events=sum(r.events for r in reports),
                             counterexamples=counterexamples,
                             coverage=coverage)


class Explorer:
    """Seeded, coverage-guided sequence generator over the lockstep pair."""

    def __init__(self, num_cache_pages: int = 3, seed: int = 0,
                 min_depth: int = 4, max_depth: int = 16,
                 eager_purge_stale: bool = False):
        self.num_cache_pages = num_cache_pages
        self.seed = seed
        self.min_depth = min_depth
        self.max_depth = max_depth
        self.eager_purge_stale = eager_purge_stale
        self.alphabet: list[Event] = event_alphabet(num_cache_pages,
                                                    include_cache_ops=True)
        self.rng = random.Random(seed)
        self.coverage = ArcCoverage()

    # ---- replay -----------------------------------------------------------------

    def _pair(self, coverage: ArcCoverage | None = None) -> LockstepPair:
        return LockstepPair(self.num_cache_pages,
                            eager_purge_stale=self.eager_purge_stale,
                            coverage=coverage)

    def run_sequence(self, sequence: list[Event],
                     coverage: ArcCoverage | None = None
                     ) -> StepDivergence | None:
        """Replay a sequence from the power-up state; returns the first
        divergence with its step index, or None."""
        pair = self._pair(coverage)
        for i, (op, target) in enumerate(sequence):
            divergence = pair.step(op, target)
            if divergence is not None:
                return StepDivergence(i, divergence.kind, divergence.detail)
        return None

    # ---- generation -------------------------------------------------------------

    def _choose(self, pair: LockstepPair) -> Event:
        novel = [ev for ev in self.alphabet
                 if self.coverage.novel_arcs(ev[0], pair.model.states, ev[1])]
        pool = novel or self.alphabet
        return pool[self.rng.randrange(len(pool))]

    def _generate_one(self) -> tuple[list[Event], StepDivergence | None, int]:
        """Generate and run one sequence; returns (sequence, divergence,
        events executed)."""
        pair = self._pair(self.coverage)
        length = self.rng.randint(self.min_depth, self.max_depth)
        sequence: list[Event] = []
        for i in range(length):
            event = self._choose(pair)
            sequence.append(event)
            divergence = pair.step(*event)
            if divergence is not None:
                return (sequence,
                        StepDivergence(i, divergence.kind, divergence.detail),
                        i + 1)
        return sequence, None, length

    # ---- entry points -----------------------------------------------------------

    def explore(self, sequences: int = 200,
                shrink: bool = True) -> ExplorationReport:
        """Run ``sequences`` coverage-guided sequences; shrink failures."""
        events = 0
        counterexamples: list[Counterexample] = []
        for _ in range(sequences):
            sequence, divergence, executed = self._generate_one()
            events += executed
            if divergence is not None:
                shrunk = self.shrink(sequence) if shrink else list(sequence)
                counterexamples.append(
                    Counterexample(sequence, divergence, shrunk))
        return ExplorationReport(self.num_cache_pages, self.seed, sequences,
                                 events, counterexamples, self.coverage)

    def explore_until_covered(self, max_events: int = 100_000
                              ) -> ExplorationReport:
        """Keep generating until every Table 2 arc is covered (or the
        event budget runs out); divergences are collected, not raised."""
        events = 0
        sequences = 0
        counterexamples: list[Counterexample] = []
        while not self.coverage.complete and events < max_events:
            sequence, divergence, executed = self._generate_one()
            events += executed
            sequences += 1
            if divergence is not None:
                counterexamples.append(
                    Counterexample(sequence, divergence,
                                   self.shrink(sequence)))
        return ExplorationReport(self.num_cache_pages, self.seed, sequences,
                                 events, counterexamples, self.coverage)

    # ---- shrinking --------------------------------------------------------------

    def shrink(self, sequence: list[Event]) -> list[Event]:
        """Greedy event deletion to a locally minimal diverging sequence:
        no single event can be removed and still reproduce a divergence."""
        current = list(sequence)
        changed = True
        while changed:
            changed = False
            for i in range(len(current)):
                candidate = current[:i] + current[i + 1:]
                if candidate and self.run_sequence(candidate) is not None:
                    current = candidate
                    changed = True
                    break
        return current
