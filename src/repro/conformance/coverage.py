"""Transition-arc coverage over Table 2.

An *arc* is one cell of Table 2: an (operation, pre-state, column) triple,
where the column is ``target`` (the cache line selected by the operation's
virtual address) or ``other`` (every similarly mapped but unaligned line).
There are 6 operations x 4 states x 2 columns = 48 arcs; a run *covers*
an arc when the model traverses that cell for some line.

Coverage uses **pre-action** states: the state a line was in just before
the event, *including* the consistency actions the event required.  A
DMA-read of a frame whose page is dirty covers (DMA-read, DIRTY) even
though the implementation flushes the page (and the lockstep model
therefore transitions it to EMPTY) before the transfer itself — the run
exercised exactly the D -(flush)-> E cell.  Without this convention the
action-requiring cells would be unreachable in any *correct* run, since
a correct implementation always discharges the action first.

Since "all cache lines that contain the physical address referenced by
the DMA operation share the same transitions" (Table 2's note), a DMA
event covers both columns for each line's state.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.core.states import LineState, MemoryOp
from repro.core.transitions import OTHER_TRANSITIONS, TARGET_TRANSITIONS

#: One Table 2 cell: (operation, pre-state, column).
Arc = tuple[MemoryOp, LineState, str]

TARGET, OTHER = "target", "other"

#: Every cell of Table 2 (48 arcs).
ALL_ARCS: frozenset[Arc] = frozenset(
    [(op, state, TARGET) for (op, state) in TARGET_TRANSITIONS]
    + [(op, state, OTHER) for (op, state) in OTHER_TRANSITIONS])


def arcs_of_event(op: MemoryOp, pre_states: list[LineState],
                  target: int | None) -> set[Arc]:
    """The arcs one event traverses, given the pre-action states of all
    cache lines.  ``target`` is None for DMA operations (which cover both
    columns for every line, per the Table 2 note)."""
    arcs: set[Arc] = set()
    if op.is_dma:
        for state in pre_states:
            arcs.add((op, state, TARGET))
            arcs.add((op, state, OTHER))
        return arcs
    for c, state in enumerate(pre_states):
        arcs.add((op, state, TARGET if c == target else OTHER))
    return arcs


class ArcCoverage:
    """Counts how often each Table 2 arc has been exercised."""

    def __init__(self) -> None:
        self.counts: Counter[Arc] = Counter()

    # ---- recording -------------------------------------------------------------

    def record(self, op: MemoryOp, state: LineState, column: str) -> None:
        self.counts[(op, state, column)] += 1

    def record_event(self, op: MemoryOp, pre_states: list[LineState],
                     target: int | None) -> None:
        """Record every arc one model event traverses (see
        :func:`arcs_of_event` for the column conventions)."""
        for arc in arcs_of_event(op, pre_states, target):
            self.counts[arc] += 1

    def merge(self, other: "ArcCoverage") -> "ArcCoverage":
        self.counts.update(other.counts)
        return self

    # ---- encoding ----------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe encoding (arcs as ``[op, state, column, count]``
        rows) that :meth:`from_dict` inverts exactly; the farm ships
        coverage across process boundaries so shard coverage can merge
        in the parent."""
        rows = [[op.name, state.name, column, count]
                for (op, state, column), count in self.counts.items()]
        return {"counts": sorted(rows)}

    @classmethod
    def from_dict(cls, data: dict) -> "ArcCoverage":
        coverage = cls()
        for op, state, column, count in data["counts"]:
            coverage.counts[(MemoryOp[op], LineState[state], column)] = count
        return coverage

    # ---- queries ----------------------------------------------------------------

    @property
    def covered(self) -> set[Arc]:
        return set(self.counts)

    @property
    def total(self) -> int:
        return len(ALL_ARCS)

    def uncovered(self) -> list[Arc]:
        return sorted(ALL_ARCS - self.covered,
                      key=lambda a: (a[0].value, a[1].value, a[2]))

    @property
    def percent(self) -> float:
        return 100.0 * len(self.covered & ALL_ARCS) / len(ALL_ARCS)

    @property
    def complete(self) -> bool:
        return ALL_ARCS <= self.covered

    def novel_arcs(self, op: MemoryOp, pre_states: list[LineState],
                   target: int | None) -> set[Arc]:
        """Arcs the event would cover for the first time (used by the
        explorer's coverage-guided event selection)."""
        return arcs_of_event(op, pre_states, target) - self.covered

    # ---- reporting -------------------------------------------------------------

    def summary(self) -> str:
        hit = len(self.covered & ALL_ARCS)
        return f"arc coverage: {hit}/{len(ALL_ARCS)} ({self.percent:.1f}%)"

    def render(self) -> str:
        """Table 2 in the paper's layout, with per-cell hit counts."""
        lines = ["Operation     | State | Target      | Other",
                 "--------------+-------+-------------+------------"]
        for op in MemoryOp:
            for i, state in enumerate(LineState):
                t = self.counts.get((op, state, TARGET), 0)
                o = self.counts.get((op, state, OTHER), 0)
                label = str(op) if i == 0 else ""
                lines.append(f"{label:<13} | {state}     | "
                             f"{self._cell(t):<11} | {self._cell(o)}")
        lines.append(self.summary())
        return "\n".join(lines)

    @staticmethod
    def _cell(count: int) -> str:
        return f"hit x{count}" if count else "UNCOVERED"

    @staticmethod
    def render_arcs(arcs: Iterable[Arc]) -> str:
        return ", ".join(f"({op}, {state}, {col})" for op, state, col in arcs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArcCoverage({self.summary()})"
