"""The cache-hierarchy conformance matrix (Section 3.3, operationally).

Section 3.3's claim is that the consistency model *specializes* per
architecture: write-through collapses Dirty, physical indexing voids the
"others" column, and set-associative caches, victim caches, L2s, and
coherent multiprocessors change **nothing** — the hardware keeps the
extra copies consistent, so the same Table 2 governs the software.  This
module turns that claim into a checked matrix: every supported cache
configuration, paired with the derived table it must obey, verified two
ways —

* **lockstep** — a kernel built with the cell's geometry runs an alias
  stressor under the :class:`~repro.conformance.lockstep.
  ConformanceMonitor`, whose shadow model is selected from the geometry
  (:func:`~repro.core.variants.model_factory_for_geometry`); and
* **exhaustive** — the bounded checker covers every event sequence to a
  given depth against the same derived table
  (:func:`~repro.core.exhaustive.check_all_sequences`).

The matrix rows are *geometry spec strings* (see
:func:`~repro.hw.params.apply_geometry`), so the same cell names drive
the CLI, the farm, and the benchmark gates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import MachineConfig, apply_geometry, small_machine


@dataclass(frozen=True)
class MatrixCell:
    """One verified configuration: a name and its geometry spec.

    ``geometry=None`` is the seed machine — direct-mapped, write-back,
    virtually indexed, no lower hierarchy — the baseline every
    degeneracy proof compares against.
    """

    name: str
    geometry: str | None = None

    def config(self, base: MachineConfig | None = None) -> MachineConfig:
        """The cell's machine configuration (small test machine unless a
        base is given)."""
        config = base if base is not None else small_machine(phys_pages=192)
        if self.geometry is None:
            return config
        return apply_geometry(config, self.geometry)

    @property
    def model_name(self) -> str:
        """Which derived Table 2 this cell is verified against."""
        from repro.core.variants import model_name_for_geometry
        return model_name_for_geometry(self.config().dcache)

    @property
    def exhaustive_pages(self) -> int:
        """Cache-page count for the cell's exhaustive run.  The
        physically indexed variants run at 1: their hardware maps each
        frame to a single cache page, so multi-target event sequences
        are unreachable (and would spuriously violate single-dirty)."""
        return 1 if self.model_name in ("pi", "pi+wt") else 3


def _architecture_cells() -> tuple[MatrixCell, ...]:
    cells = []
    for ways in (1, 2, 4):
        for victim in (0, 8):
            for l2 in (False, True):
                tokens = []
                if ways != 1:
                    tokens.append(f"{ways}way")
                if victim:
                    tokens.append(f"victim{victim}")
                if l2:
                    tokens.append("l2:64k/4")
                spec = "+".join(tokens) or None
                cells.append(MatrixCell(spec or "baseline", spec))
    return tuple(cells)


#: every verified configuration: the {1,2,4}-way × {victim off/on} ×
#: {L2 off/on} architecture grid plus the write-through and physically
#: indexed policy rows (which exercise the *derived* tables).
HIERARCHY_MATRIX: tuple[MatrixCell, ...] = _architecture_cells() + (
    MatrixCell("wt", "wt"),
    MatrixCell("2way+wt", "2way+wt"),
    MatrixCell("pi", "pi"),
    MatrixCell("pi+wt", "pi+wt"),
)


def cell_by_name(name: str) -> MatrixCell:
    for cell in HIERARCHY_MATRIX:
        if cell.name == name:
            return cell
    from repro.errors import ConfigurationError
    raise ConfigurationError(
        f"unknown matrix cell {name!r}; expected one of "
        f"{[c.name for c in HIERARCHY_MATRIX]}")


def check_cell_lockstep(cell: MatrixCell, steps: int = 300,
                        seed: int = 0) -> "ConformanceSummary":
    """Run the alias stressor on a kernel with the cell's geometry under
    the lockstep monitor (raise mode: any divergence aborts).  Returns
    the monitor summary; the caller asserts on it."""
    from repro.conformance.lockstep import ConformanceMonitor
    from repro.kernel.kernel import Kernel
    from repro.workloads.random_ops import AliasStressor

    kernel = Kernel(config=cell.config(), buffer_cache_pages=24)
    stressor = AliasStressor(kernel, n_tasks=3, n_pages=4, seed=seed)
    with ConformanceMonitor(kernel) as monitor:
        stressor.run(steps)
    return monitor.summary()


def check_cell_exhaustive(cell: MatrixCell, depth: int = 6) -> "CheckReport":
    """Cover every event sequence to ``depth`` against the cell's
    derived table (see :attr:`MatrixCell.exhaustive_pages`)."""
    from repro.core.exhaustive import check_all_sequences
    from repro.core.variants import model_factory_by_name

    return check_all_sequences(
        num_cache_pages=cell.exhaustive_pages, depth=depth,
        model_factory=model_factory_by_name(cell.model_name))


def run_matrix(cells: tuple[MatrixCell, ...] = HIERARCHY_MATRIX,
               steps: int = 300, depth: int = 6) -> dict:
    """Run both checks for every cell; returns
    ``{cell name: {"model", "lockstep_events", "lockstep_divergences",
    "exhaustive_sequences", "exhaustive_ok"}}``."""
    results: dict = {}
    for cell in cells:
        summary = check_cell_lockstep(cell, steps=steps)
        report = check_cell_exhaustive(cell, depth=depth)
        results[cell.name] = {
            "model": cell.model_name,
            "lockstep_events": summary.events,
            "lockstep_divergences": summary.divergences,
            "exhaustive_sequences": report.sequences,
            "exhaustive_ok": report.ok,
        }
    return results
