"""Farm wiring for the repository's expensive consumers.

Each helper turns one existing serial loop into a spec batch, runs it
through an :class:`~repro.farm.executor.Executor`, and reassembles the
exact result objects the serial path produces — so callers switch
between ``jobs=1`` and ``jobs=N`` without changing anything downstream.
A failed job surfaces as a raised :class:`FarmJobError` carrying the
structured :class:`~repro.farm.executor.JobFailure`; the farm never
silently drops a shard.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.farm.executor import Executor, JobOutcome
from repro.farm.jobspec import JobSpec


class FarmJobError(ReproError):
    """A farmed job exhausted its retries; carries the failure."""

    def __init__(self, outcome: JobOutcome):
        super().__init__(f"farm job {outcome.spec.label()} failed: "
                         f"{outcome.failure}")
        self.outcome = outcome


def _payloads(executor: Executor, specs: list[JobSpec]) -> list[dict]:
    """Run specs; return payloads in spec order or raise on any failure."""
    outcomes = executor.run(specs)
    for outcome in outcomes:
        if not outcome.ok:
            raise FarmJobError(outcome)
    return [outcome.payload for outcome in outcomes]


# ---- chaos -----------------------------------------------------------------


def farm_chaos_suite(seeds, preset: str, steps: int,
                     executor: Executor, n_cpus: int = 1,
                     policy: str | None = None) -> list:
    """The chaos suite as a spec batch; returns verified ChaosReports in
    seed order, exactly as :func:`repro.faults.run_chaos_suite` does.
    ``policy`` names a registered consistency policy (None == default)."""
    from repro.faults.harness import ChaosReport

    specs = [JobSpec.chaos(seed=seed, preset=preset, steps=steps,
                           n_cpus=n_cpus, policy=policy)
             for seed in seeds]
    return [ChaosReport.from_dict(payload["report"])
            for payload in _payloads(executor, specs)]


# ---- cache-size sweeps -----------------------------------------------------


def farm_sweep_points(workload_name: str, policy_name: str,
                      sizes_kib, scale: float, executor: Executor,
                      geometry: str | None = None) -> list:
    """One workload/policy across data-cache sizes, as parallel jobs;
    returns SweepPoints identical to the serial sweep's."""
    from repro.analysis.metrics import RunMetrics
    from repro.analysis.sweep import SweepPoint

    specs = [JobSpec.workload(workload=workload_name, policy=policy_name,
                              scale=scale, dcache_kib=kib,
                              geometry=geometry)
             for kib in sizes_kib]
    return [SweepPoint(kib, RunMetrics.from_dict(payload["metrics"]))
            for kib, payload in zip(sizes_kib,
                                    _payloads(executor, specs))]


def farm_sweep_grid(workload_name: str, policy_names, sizes_kib,
                    scale: float, executor: Executor,
                    geometry: str | None = None) -> dict:
    """Every (policy, size) point of a sweep as ONE spec batch, so the
    whole grid shares the worker pool; returns ``{policy: [SweepPoint]}``
    exactly as :func:`repro.analysis.sweep.run_sweep` does."""
    from repro.analysis.metrics import RunMetrics
    from repro.analysis.sweep import SweepPoint

    grid = [(name, kib) for name in policy_names for kib in sizes_kib]
    specs = [JobSpec.workload(workload=workload_name, policy=name,
                              scale=scale, dcache_kib=kib,
                              geometry=geometry)
             for name, kib in grid]
    points: dict = {name: [] for name in policy_names}
    for (name, kib), payload in zip(grid, _payloads(executor, specs)):
        points[name].append(
            SweepPoint(kib, RunMetrics.from_dict(payload["metrics"])))
    return points


# ---- serve macro-workload --------------------------------------------------


def serve_cohort_specs(cohorts: int, users_per_cohort: int,
                       policy: str | None = None,
                       conform: bool = False,
                       **sizing) -> list[JobSpec]:
    """The spec batch for a served population: one job per cohort.
    Cohort ``i`` is a pure function of ``(i, users_per_cohort, ...)``,
    so the same arguments always produce the same batch and therefore
    the same merged report, at any pool width."""
    return [JobSpec.serve(cohort=cohort, users=users_per_cohort,
                          policy=policy, conform=conform, **sizing)
            for cohort in range(cohorts)]


def farm_serve(cohorts: int, users_per_cohort: int, executor: Executor,
               policy: str | None = None, conform: bool = False,
               **sizing):
    """Serve a population across the farm; returns the merged
    :class:`~repro.workloads.serve.ServeReport` (counters summed, arc
    coverage merged, checksum folded in cohort order) — bit-identical
    at any ``jobs`` width because each cohort boots its own kernel."""
    from repro.workloads.serve import ServeCohortResult, merge_cohorts

    specs = serve_cohort_specs(cohorts, users_per_cohort, policy=policy,
                               conform=conform, **sizing)
    results = [ServeCohortResult.from_dict(payload["result"])
               for payload in _payloads(executor, specs)]
    return merge_cohorts(results)


# ---- conformance explorer --------------------------------------------------


def explore_shard_specs(seed: int, sequences: int, cache_pages: int,
                        shards: int) -> list[JobSpec]:
    """Split one explorer sweep into ``shards`` independently seeded
    explorers whose sequence counts sum to ``sequences``.  Shard ``i``
    uses seed ``seed + i`` — a deterministic function of the arguments,
    so the same (seed, sequences, shards) triple always produces the
    same spec batch and therefore the same merged report."""
    shards = max(1, min(shards, sequences or 1))
    base, extra = divmod(sequences, shards)
    return [JobSpec.explore(seed=seed + i, sequences=base + (1 if i < extra
                                                             else 0),
                            cache_pages=cache_pages)
            for i in range(shards) if base + (1 if i < extra else 0)]


def farm_explore(seed: int, sequences: int, cache_pages: int,
                 executor: Executor, shards: int | None = None):
    """A sharded explorer sweep; returns the merged ExplorationReport
    (coverage merged, counterexamples concatenated)."""
    from repro.conformance.explorer import (ExplorationReport,
                                            merge_exploration_reports)

    specs = explore_shard_specs(seed, sequences, cache_pages,
                                shards or executor.jobs)
    reports = [ExplorationReport.from_dict(payload["report"])
               for payload in _payloads(executor, specs)]
    return merge_exploration_reports(reports)


# ---- exhaustive checker ----------------------------------------------------


def farm_exhaustive(num_cache_pages: int, depth: int, executor: Executor,
                    shard_depth: int = 1):
    """The bounded exhaustive check, sharded by event-index prefix;
    returns the merged CheckReport covering the full sequence space."""
    from repro.core.exhaustive import (CheckReport, merge_reports,
                                       shard_prefixes)

    specs = [JobSpec.exhaustive(num_cache_pages=num_cache_pages,
                                depth=depth, prefix=prefix)
             for prefix in shard_prefixes(num_cache_pages, shard_depth)]
    reports = [CheckReport.from_dict(payload["report"])
               for payload in _payloads(executor, specs)]
    return merge_reports(reports)
