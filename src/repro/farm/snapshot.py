"""Fork-shared read-only snapshots for the worker pool.

On the ``fork`` start method every worker is a copy-on-write clone of
the parent, so anything expensive and immutable that exists *before*
the fork is inherited for free: imported modules (bytecode, numpy),
the derived Table 2 policy tables, machine templates, and the code
fingerprint.  Without prewarming, each worker pays those costs again on
its first job — exactly the per-worker overhead that kept the farm's
parallel speedup below 1x.

:func:`prewarm_fork_snapshot` builds that state in the parent, once per
process, and records what it warmed.  It deliberately touches only
state that is immutable-after-build and safe to share:

* the runner registry and every module it pulls in (workloads, chaos
  harness, conformance engine, trace compiler, SMP cluster) — the bulk
  of a cold worker's first-job latency is these imports;
* the module-level :func:`~repro.farm.fingerprint.code_fingerprint`
  cache (a tree walk plus hashing);
* the derived consistency tables for the paper's policy configurations
  (:meth:`PolicyConfig.derive` outputs are frozen dataclasses);
* a throwaway machine build, so template construction costs (including
  numpy's first-allocation setup) are paid pre-fork.

Workers never mutate any of this — jobs build their own machines and
only *read* the shared tables — so copy-on-write pages stay shared for
the life of the pool.

On spawn-only platforms there is nothing to inherit; the executor skips
the call and workers build state lazily per process, as before.
"""

from __future__ import annotations

import multiprocessing

#: what the last prewarm touched, for tests and diagnostics.
_prewarmed: dict | None = None


def fork_available() -> bool:
    """True when this platform can start workers with ``fork``."""
    return "fork" in multiprocessing.get_all_start_methods()


def snapshot_info() -> dict | None:
    """What :func:`prewarm_fork_snapshot` built, or None if never run."""
    return _prewarmed


def prewarm_fork_snapshot(refresh: bool = False) -> dict:
    """Build the expensive immutable state pre-fork; idempotent.

    Returns a summary dict (also via :func:`snapshot_info`) naming what
    was warmed.  Safe to call on any platform — it only *builds* state;
    whether children inherit it depends on the start method, which the
    executor checks before calling.
    """
    global _prewarmed
    if _prewarmed is not None and not refresh:
        return _prewarmed

    # 1. Runner imports: pulling in the registry imports every job-kind
    # implementation, which transitively loads the workloads, the chaos
    # harness, the conformance engine, the trace compiler and the SMP
    # cluster — the dominant cold-start cost of a worker.
    import repro.farm.runners  # noqa: F401  (import is the work)

    # 2. Code fingerprint: a source-tree walk plus hashing, cached at
    # module level in repro.farm.fingerprint — workers doing cache
    # lookups inherit the cached value instead of re-walking.
    from repro.farm.fingerprint import code_fingerprint
    fingerprint = code_fingerprint()

    # 3. Derived policy tables: Table 2's transition dicts are built at
    # import time in repro.core.transitions, and the policy ladder's
    # frozen configurations likewise; importing them here (rather than
    # inside the first job of each worker) puts them in shared pages.
    from repro.core.transitions import OTHER_TRANSITIONS, TARGET_TRANSITIONS
    from repro.vm.policy import CONFIG_LADDER
    tables = len(TARGET_TRANSITIONS) + len(OTHER_TRANSITIONS)

    # 4. One throwaway machine template: machine construction, numpy's
    # first-allocation setup, and the default geometry all warm up
    # pre-fork.
    from repro.hw.machine import Machine
    from repro.hw.params import MachineConfig, small_machine
    Machine(small_machine())

    _prewarmed = {
        "fingerprint": fingerprint,
        "table_arcs": tables,
        "policies": [config.name for config in CONFIG_LADDER],
        "machine_template": MachineConfig.__name__,
    }
    return _prewarmed
