"""The farm's job model: a frozen, hashable description of one run.

A :class:`JobSpec` is the unit of work the simulation farm schedules: a
job *kind* (which pure function to run) plus a flat bag of JSON-scalar
parameters.  Every expensive consumer in the repository — a workload
measurement, a chaos run, an explorer shard, an exhaustive-checker
prefix shard — is a pure function of its spec, because the simulator is
deterministic by construction: all randomness is seeded, all time is the
simulated clock.  That purity is what makes specs *content-addressable*:
``spec.key(fingerprint)`` is a stable hash of the spec's canonical JSON
plus the code-version fingerprint, and two runs with the same key are
guaranteed to produce the same payload, so the second one never needs to
run (see :mod:`repro.farm.cache`).

Parameter values are restricted to JSON scalars (and flat tuples of
them, for the exhaustive checker's event-index prefixes) so that the
canonical encoding is unambiguous and the spec survives a JSON round
trip bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: the on-disk schema version; bump to invalidate every cache entry.
SCHEMA_VERSION = 1

_SCALARS = (str, int, float, bool, type(None))


def _check_value(key: str, value):
    if isinstance(value, bool) or value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, (tuple, list)):
        for item in value:
            if not isinstance(item, _SCALARS):
                raise ConfigurationError(
                    f"job parameter {key!r} holds a non-scalar element "
                    f"{item!r}")
        return tuple(value)
    raise ConfigurationError(
        f"job parameter {key!r} must be a JSON scalar or a flat tuple, "
        f"got {value!r}")


@dataclass(frozen=True)
class JobSpec:
    """One schedulable simulation job: a kind plus sorted parameters."""

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    # ---- construction ------------------------------------------------------

    @classmethod
    def make(cls, kind: str, **params) -> "JobSpec":
        """Build a spec; parameters are validated and canonically sorted,
        and ``None`` values are dropped (absent == default)."""
        items = tuple(sorted((k, _check_value(k, v))
                             for k, v in params.items() if v is not None))
        return cls(kind=kind, params=items)

    # The consumer-facing constructors; one per job kind the farm runs.

    @classmethod
    def workload(cls, workload: str, policy: str, scale: float,
                 dcache_kib: int | None = None,
                 phys_pages: int | None = None,
                 buffer_cache_pages: int | None = None,
                 inject: str | None = None, seed: int | None = None,
                 conform: bool = False,
                 geometry: str | None = None) -> "JobSpec":
        # geometry is an apply_geometry() spec string ("2way+victim8+l2");
        # None drops out so pre-hierarchy cache keys are unchanged.
        return cls.make("workload", workload=workload, policy=policy,
                        scale=scale, dcache_kib=dcache_kib,
                        phys_pages=phys_pages,
                        buffer_cache_pages=buffer_cache_pages,
                        inject=inject, seed=seed,
                        conform=conform or None, geometry=geometry)

    @classmethod
    def replay(cls, trace_path: str, exact: bool = False) -> "JobSpec":
        """One trace replay with equivalence verification.

        The artifact's SHA-256 digest is part of the spec: a path alone
        is not content, so recompiling a trace in place changes the key
        and invalidates any cached replay of the old bytes.
        """
        with open(trace_path, "rb") as handle:
            digest = hashlib.sha256(handle.read()).hexdigest()
        return cls.make("replay", trace=trace_path, digest=digest,
                        exact=exact or None)

    @classmethod
    def chaos(cls, seed: int, preset: str = "mixed", steps: int = 200,
              n_cpus: int | None = None,
              policy: str | None = None) -> "JobSpec":
        # n_cpus=None (and 1) drop out of the spec so uniprocessor keys —
        # and their cached payloads — are unchanged from before SMP; the
        # same None-drop keeps pre-policy keys stable (absent == the
        # default NEW_SYSTEM configuration).
        return cls.make("chaos", seed=seed, preset=preset, steps=steps,
                        n_cpus=None if n_cpus in (None, 1) else n_cpus,
                        policy=policy)

    @classmethod
    def smp(cls, n_cpus: int, aligned: bool, workload: str = "ring",
            records: int = 120, data_pages: int = 2,
            phys_pages: int | None = None) -> "JobSpec":
        """One point of the SMP scaling curve (Section 3.3)."""
        return cls.make("smp", n_cpus=n_cpus, aligned=aligned,
                        workload=workload, records=records,
                        data_pages=data_pages, phys_pages=phys_pages)

    @classmethod
    def explore(cls, seed: int, sequences: int,
                cache_pages: int = 3) -> "JobSpec":
        return cls.make("explore", seed=seed, sequences=sequences,
                        cache_pages=cache_pages)

    @classmethod
    def exhaustive(cls, num_cache_pages: int, depth: int,
                   prefix: tuple[int, ...] = (),
                   model: str | None = None) -> "JobSpec":
        # model names a derived Table 2 variant (see
        # repro.core.variants.model_factory_by_name); None — the
        # canonical model — drops out so existing cache keys hold.
        return cls.make("exhaustive", num_cache_pages=num_cache_pages,
                        depth=depth, prefix=tuple(prefix),
                        model=None if model in (None, "canonical")
                        else model)

    @classmethod
    def serve(cls, cohort: int, users: int, policy: str | None = None,
              hot_files: int | None = None, file_pages: int | None = None,
              frontends: int | None = None,
              buffer_cache_pages: int | None = None,
              conform: bool = False) -> "JobSpec":
        """One user cohort of the ``serve`` macro-workload.  ``None``
        parameters drop out (absent == the workload's defaults)."""
        return cls.make("serve", cohort=cohort, users=users, policy=policy,
                        hot_files=hot_files, file_pages=file_pages,
                        frontends=frontends,
                        buffer_cache_pages=buffer_cache_pages,
                        conform=conform or None)

    @classmethod
    def selftest(cls, mode: str = "ok", **params) -> "JobSpec":
        return cls.make("selftest", mode=mode, **params)

    # ---- access ------------------------------------------------------------

    def get(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    def __getitem__(self, key: str):
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    # ---- encoding ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls.make(data["kind"], **data["params"])

    def canonical(self) -> str:
        """The canonical JSON encoding the content hash is taken over
        (sorted keys, no whitespace, tuples as arrays)."""
        return json.dumps({"version": SCHEMA_VERSION, "kind": self.kind,
                           "params": dict(self.params)},
                          sort_keys=True, separators=(",", ":"))

    def key(self, fingerprint: str) -> str:
        """The content-addressed cache key: hash of (spec, code version)."""
        digest = hashlib.sha256()
        digest.update(self.canonical().encode())
        digest.update(b"\0")
        digest.update(fingerprint.encode())
        return digest.hexdigest()

    def label(self) -> str:
        """A short human-readable identity for progress events."""
        parts = [f"{k}={v}" for k, v in self.params
                 if k in ("workload", "policy", "seed", "preset",
                          "dcache_kib", "prefix", "mode", "n_cpus",
                          "aligned", "geometry", "model", "cohort",
                          "users")]
        return f"{self.kind}({', '.join(parts)})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()
