"""The executor: one spec list in, one outcome list out — any width.

``Executor(jobs=1)`` runs every spec in the calling process with the
exact code path the repository's serial consumers always used, so a
one-wide farm run is bit-identical to today's loops.  ``jobs=N`` shards
the specs across ``N`` worker processes; because every job is a pure
function of its spec (see :mod:`repro.farm.jobspec`), the two modes
produce identical payloads, and the equivalence property tests assert
exactly that.

Two mechanisms keep the pool from losing to serial execution on real
batches (the 0.88x regime the farm shipped in):

* **batched dispatch** — workers pull *chunks* of specs in one queue
  message and stream per-job results back, so the per-message pickle and
  wakeup cost amortizes across the chunk.  The chunk size tunes itself
  from the observed per-job wall time: long jobs dispatch one at a time
  (keeping timeouts and retries fine-grained), sub-millisecond jobs ship
  dozens per message (see :meth:`Executor._chunk_size`).
* **fork-shared snapshots** — on the ``fork`` start method the parent
  pre-imports every runner dependency and pre-builds the immutable
  expensive state (derived Table 2 policy tables, machine templates, the
  code fingerprint) *before* spawning workers, so the children inherit
  it copy-on-write instead of rebuilding it per process (see
  :mod:`repro.farm.snapshot`).  Spawn-only platforms skip the prewarm
  and build lazily in each worker, exactly as before.

Failure semantics (the part a naive ``multiprocessing.Pool`` gets
wrong):

* **per-job timeout** — a worker that exceeds ``timeout`` seconds on one
  job is terminated (hung simulations cannot be cancelled from inside);
  under batched dispatch the deadline re-arms as each result of the
  chunk streams back, so the bound stays per-job, not per-chunk;
* **bounded retries** — a job whose worker raised, hung, or died is
  retried up to ``retries`` more times (on a fresh worker where needed)
  before being reported.  Only jobs that actually *started* consume an
  attempt: the unstarted tail of a killed worker's chunk requeues with
  its attempt count unchanged;
* **structured failure** — an exhausted job yields a
  :class:`JobFailure` (kind, message, attempt count) in its outcome
  slot, with the wall time the losing attempt burned; the run never
  hangs and never silently drops a job;
* **graceful degradation** — when workers keep dying (more than
  ``degrade_after`` replacements), the pool is abandoned and the
  remaining jobs run serially in the parent, which cannot crash-loop.
  The killed in-flight attempts are counted: each running job requeues
  with ``attempt + 1`` (narrated as a ``farm-retry`` with reason
  ``degraded``), so ``JobOutcome.attempts`` reports every execution the
  job actually cost.

Progress — jobs queued/started/done/retried/failed, cache hits,
degradation — publishes on an :class:`repro.obs.EventBus`, so the
``run --trace-events`` style of introspection extends to fleet runs
(``sweep``/``farm``/``chaos`` accept ``--trace-events FILE``).

Results are returned in spec order regardless of completion order, and
completed payloads land in the :class:`~repro.farm.cache.ResultCache`
(when one is attached) keyed by content hash, so reruns are near-free.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.farm.cache import ResultCache
from repro.farm.fingerprint import code_fingerprint
from repro.farm.jobspec import JobSpec
from repro.farm.runners import run_spec
from repro.farm.snapshot import prewarm_fork_snapshot
from repro.hw.stats import Clock
from repro.obs.events import EventBus

#: generous per-job wall-clock bound; individual consumers override.
DEFAULT_TIMEOUT = 300.0

#: batched dispatch aims each chunk at this much worker wall time: long
#: enough to amortize the queue round-trip, short enough that retries,
#: timeouts and load balance stay fine-grained.
TARGET_CHUNK_SECONDS = 0.25

#: hard ceiling on specs per dispatch message, however fast the jobs.
MAX_CHUNK = 32


@dataclass(frozen=True)
class JobFailure:
    """Why one job exhausted its attempts."""

    kind: str            # "exception" | "timeout" | "worker-death"
    message: str
    attempts: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind} after {self.attempts} attempts: {self.message}"


@dataclass
class JobOutcome:
    """One spec's result: a payload or a structured failure."""

    spec: JobSpec
    payload: dict | None = None
    failure: JobFailure | None = None
    cache_hit: bool = False
    attempts: int = 1
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class FarmStats:
    """What one :meth:`Executor.run` did, for reports and events."""

    jobs: int = 0
    done: int = 0
    failed: int = 0
    cache_hits: int = 0
    retries: int = 0
    worker_deaths: int = 0
    degraded: bool = False
    wall_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {"jobs": self.jobs, "done": self.done, "failed": self.failed,
                "cache_hits": self.cache_hits, "retries": self.retries,
                "worker_deaths": self.worker_deaths,
                "degraded": self.degraded,
                "wall_seconds": round(self.wall_seconds, 3)}


def _worker_main(wid: int, task_q, result_q) -> None:
    """Worker loop: run spec chunks until the ``None`` sentinel arrives.

    Each message is a list of ``(index, spec_dict)`` pairs; results
    stream back one per job as ``(wid, index, status, data, elapsed)``,
    with ``elapsed`` measured around the job in the worker — the honest
    per-job wall time, free of queue wait.  Every exception — including
    ``KeyboardInterrupt`` — is shipped back as a structured error so the
    parent, not the worker, owns policy.
    """
    while True:
        message = task_q.get()
        if message is None:
            return
        for index, spec_dict in message:
            begun = time.perf_counter()
            try:
                payload = run_spec(JobSpec.from_dict(spec_dict))
                result_q.put((wid, index, "ok", payload,
                              time.perf_counter() - begun))
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                result_q.put((wid, index, "error",
                              {"type": type(exc).__name__,
                               "message": str(exc),
                               "traceback": traceback.format_exc()},
                              time.perf_counter() - begun))


class _Worker:
    """One pool member: a process plus its private task queue."""

    def __init__(self, ctx, wid: int, result_q):
        self.wid = wid
        self.task_q = ctx.SimpleQueue()
        self.proc = ctx.Process(target=_worker_main,
                                args=(wid, self.task_q, result_q),
                                daemon=True)
        self.proc.start()

    def stop(self, timeout: float = 1.0) -> None:
        try:
            if self.proc.is_alive():
                self.task_q.put(None)
                self.proc.join(timeout)
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(timeout)
        finally:
            self.proc.close()

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(1.0)
        self.proc.close()


@dataclass
class _Flight:
    """One worker's outstanding chunk.

    ``batch[0]`` is the job the worker is running *now* (results stream
    back in dispatch order over the worker's FIFO queue); the rest are
    queued behind it and have not started.  ``deadline``/``begun``
    re-arm every time a result arrives, so the timeout and the parent's
    fallback wall clock are per-job even though dispatch is per-chunk.
    """

    batch: deque          # of (index, attempt), head is running
    deadline: float       # monotonic instant the running job times out
    begun: float          # perf_counter instant the running job started


class _PoolState:
    """The pool loop's mutable state, one field per moving part.

    Factored out of the loop so the drain/reap ordering contracts — a
    result racing a timeout, a result racing a worker death, the
    stale-result filter — are unit-testable with synthetic workers and a
    hand-loaded result queue (tests/farm/test_races.py) instead of only
    via real process timing.
    """

    def __init__(self, specs, pending, outcomes, result_q):
        self.specs = specs
        self.pending = pending              # deque of (index, attempt)
        self.outcomes = outcomes
        self.result_q = result_q
        self.workers: dict[int, _Worker] = {}
        self.flights: dict[int, _Flight] = {}
        self.idle: list[int] = []
        self.next_wid = 0


class Executor:
    """Runs :class:`JobSpec` batches serially or across a process pool."""

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 timeout: float = DEFAULT_TIMEOUT, retries: int = 2,
                 bus: EventBus | None = None,
                 fingerprint: str | None = None,
                 degrade_after: int | None = None,
                 start_method: str | None = None,
                 max_chunk: int = MAX_CHUNK):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if max_chunk < 1:
            raise ConfigurationError(
                f"max_chunk must be >= 1, got {max_chunk}")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        #: farm events carry no simulated time — the farm runs outside
        #: the machines it schedules — so the bus gets its own zero clock
        #: and events order by ``seq``.
        self.bus = bus if bus is not None else EventBus(Clock())
        self.fingerprint = fingerprint or (code_fingerprint()
                                           if cache is not None else "")
        self.degrade_after = (degrade_after if degrade_after is not None
                              else max(4, 2 * jobs))
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self.start_method = start_method
        self.max_chunk = max_chunk
        #: EMA of worker-reported per-job wall seconds; drives the
        #: chunk-size auto-tuner.  None until the first result lands.
        self._job_seconds: float | None = None
        self.stats = FarmStats()

    # ---- entry point -------------------------------------------------------

    def run(self, specs) -> list[JobOutcome]:
        """Execute every spec; outcomes come back in spec order."""
        specs = list(specs)
        self.stats = FarmStats(jobs=len(specs))
        started = time.perf_counter()
        self._publish("farm-queued", jobs=len(specs), workers=self.jobs,
                      cached=self.cache is not None)
        outcomes: list[JobOutcome | None] = [None] * len(specs)
        pending: deque[tuple[int, int]] = deque()   # (index, attempt)
        for index, spec in enumerate(specs):
            hit = self._lookup(spec)
            if hit is not None:
                outcomes[index] = hit
                self.stats.cache_hits += 1
                self._publish("farm-cache-hit", job=index,
                              label=spec.label())
            else:
                pending.append((index, 1))
        if pending:
            if self.jobs == 1:
                self._run_serial(specs, pending, outcomes)
            else:
                self._run_pool(specs, pending, outcomes)
        self.stats.wall_seconds = time.perf_counter() - started
        self.stats.done = sum(1 for o in outcomes if o is not None and o.ok)
        self.stats.failed = len(specs) - self.stats.done
        self._publish("farm-complete", **self.stats.as_dict())
        return outcomes

    # ---- shared pieces -----------------------------------------------------

    def _publish(self, kind: str, **detail) -> None:
        bus = self.bus
        if bus is not None and bus.enabled:
            bus.publish(kind, **detail)

    def _lookup(self, spec: JobSpec) -> JobOutcome | None:
        if self.cache is None:
            return None
        payload = self.cache.get(spec.key(self.fingerprint))
        if payload is None:
            return None
        return JobOutcome(spec, payload=payload, cache_hit=True, attempts=0)

    def _store(self, spec: JobSpec, payload: dict) -> None:
        if self.cache is not None:
            self.cache.put(spec.key(self.fingerprint), spec,
                           self.fingerprint, payload)

    def _complete(self, outcomes, index, spec, payload, attempt,
                  wall) -> None:
        self._store(spec, payload)
        outcomes[index] = JobOutcome(spec, payload=payload, attempts=attempt,
                                     wall_seconds=wall)
        self._publish("farm-done", job=index, label=spec.label(),
                      attempt=attempt, wall=round(wall, 4))

    def _fail(self, outcomes, index, spec, kind, message, attempt,
              wall) -> None:
        failure = JobFailure(kind, message, attempt)
        outcomes[index] = JobOutcome(spec, failure=failure, attempts=attempt,
                                     wall_seconds=wall)
        self._publish("farm-failure", job=index, label=spec.label(),
                      failure=kind, message=message, attempts=attempt,
                      wall=round(wall, 4))

    def _retry(self, pending, index, spec, reason, attempt) -> None:
        self.stats.retries += 1
        self._publish("farm-retry", job=index, label=spec.label(),
                      reason=reason, attempt=attempt)
        pending.appendleft((index, attempt + 1))

    # ---- serial ------------------------------------------------------------

    def _run_serial(self, specs, pending, outcomes) -> None:
        """In-process execution: today's serial loops, plus the farm's
        retry-on-exception and structured-failure semantics.  Hangs are
        not preemptible in-process — only the pool path can kill a hung
        job, which is why per-job timeouts require ``jobs > 1``."""
        while pending:
            index, attempt = pending.popleft()
            spec = specs[index]
            self._publish("farm-start", job=index, label=spec.label(),
                          attempt=attempt, worker="serial")
            begun = time.perf_counter()
            try:
                payload = run_spec(spec)
            except Exception as exc:
                if attempt <= self.retries:
                    self._retry(pending, index, spec, "exception", attempt)
                else:
                    self._fail(outcomes, index, spec, "exception",
                               f"{type(exc).__name__}: {exc}", attempt,
                               time.perf_counter() - begun)
                continue
            self._complete(outcomes, index, spec, payload, attempt,
                           time.perf_counter() - begun)

    # ---- pool --------------------------------------------------------------

    def _chunk_size(self, n_pending: int, n_workers: int) -> int:
        """Specs per dispatch message, tuned from observed job wall time.

        Until a first result lands there is nothing to tune from, so
        chunks stay at 1 (also the right answer for long jobs: dispatch
        stays maximally balanced and a kill loses at most one running
        job).  Once the EMA says jobs are short, the chunk grows toward
        ``TARGET_CHUNK_SECONDS`` of work per message — but never beyond
        an even share of the remaining work, so no worker starves while
        another holds a deep queue."""
        if self._job_seconds is None:
            return 1
        by_time = int(TARGET_CHUNK_SECONDS / max(self._job_seconds, 1e-9))
        fair_share = -(-n_pending // max(n_workers, 1))  # ceil division
        return max(1, min(by_time, fair_share, self.max_chunk))

    def _observe(self, elapsed: float) -> None:
        """Fold one worker-reported job wall time into the chunk EMA."""
        if self._job_seconds is None:
            self._job_seconds = elapsed
        else:
            self._job_seconds = 0.7 * self._job_seconds + 0.3 * elapsed

    def _dispatch(self, state: _PoolState) -> None:
        """Hand every idle worker one auto-sized chunk of pending specs."""
        while state.pending and state.idle:
            wid = state.idle.pop()
            chunk = self._chunk_size(len(state.pending),
                                     len(state.workers))
            batch = deque()
            message = []
            for _ in range(min(chunk, len(state.pending))):
                index, attempt = state.pending.popleft()
                batch.append((index, attempt))
                message.append((index, state.specs[index].to_dict()))
            state.workers[wid].task_q.put(message)
            state.flights[wid] = _Flight(
                batch=batch,
                deadline=time.monotonic() + self.timeout,
                begun=time.perf_counter())
            index, attempt = batch[0]
            self._publish("farm-start", job=index,
                          label=state.specs[index].label(),
                          attempt=attempt, worker=wid,
                          chunk=len(batch))

    def _drain(self, state: _PoolState, block: bool = True) -> bool:
        """Consume every available result; returns True if any arrived.

        Runs *before* worker judgment every iteration, so a result that
        raced a timeout or a worker death still counts: the queue is the
        source of truth for work that finished, liveness and deadlines
        only for work that did not."""
        drained = False
        while True:
            try:
                wid, index, status, data, elapsed = state.result_q.get(
                    timeout=0.05 if block and not drained else 0.0)
            except queue.Empty:
                return drained
            drained = True
            self._handle_result(state, wid, index, status, data, elapsed)

    def _handle_result(self, state: _PoolState, wid, index, status, data,
                       elapsed) -> None:
        flight = state.flights.get(wid)
        if flight is None or not flight.batch or flight.batch[0][0] != index:
            return  # stale result from a replaced worker
        index, attempt = flight.batch.popleft()
        self._observe(elapsed)
        spec = state.specs[index]
        if status == "ok":
            self._complete(state.outcomes, index, spec, data, attempt,
                           elapsed)
        elif attempt <= self.retries:
            self._retry(state.pending, index, spec, "exception", attempt)
        else:
            self._fail(state.outcomes, index, spec, "exception",
                       f"{data['type']}: {data['message']}", attempt,
                       elapsed)
        if flight.batch:
            # The next job of the chunk starts now: re-arm its per-job
            # deadline and announce it.
            flight.deadline = time.monotonic() + self.timeout
            flight.begun = time.perf_counter()
            head_index, head_attempt = flight.batch[0]
            self._publish("farm-start", job=head_index,
                          label=state.specs[head_index].label(),
                          attempt=head_attempt, worker=wid, chunk=0)
        else:
            state.flights.pop(wid)
            if wid in state.workers:
                state.idle.append(wid)

    def _requeue_unstarted(self, state: _PoolState, batch) -> None:
        """Return a killed worker's not-yet-started chunk tail to the
        front of the queue, order preserved, attempts unchanged — those
        jobs never executed, so they cost nothing."""
        for item in reversed(list(batch)):
            state.pending.appendleft(item)

    def _reap(self, state: _PoolState) -> bool:
        """Kill dead and hung workers; returns True once degraded.

        Only the chunk's *head* job was running when the worker died or
        hung, so only it consumes an attempt; the unstarted tail
        requeues untouched."""
        now = time.monotonic()
        for wid in list(state.flights):
            flight = state.flights[wid]
            worker = state.workers[wid]
            died = not worker.proc.is_alive()
            hung = now > flight.deadline
            if not died and not hung:
                continue
            reason = "worker-death" if died else "timeout"
            state.flights.pop(wid)
            state.workers.pop(wid)
            worker.kill()
            self.stats.worker_deaths += 1
            index, attempt = flight.batch.popleft()
            wall = time.perf_counter() - flight.begun
            spec = state.specs[index]
            self._requeue_unstarted(state, flight.batch)
            if attempt <= self.retries:
                self._retry(state.pending, index, spec, reason, attempt)
            else:
                message = ("worker exited while running the job"
                           if died else
                           f"job exceeded {self.timeout:g}s")
                self._fail(state.outcomes, index, spec, reason, message,
                           attempt, wall)
            if self.stats.worker_deaths > self.degrade_after:
                self._degrade(state)
                return True
            state.workers[state.next_wid] = _Worker(
                self._ctx, state.next_wid, state.result_q)
            state.idle.append(state.next_wid)
            state.next_wid += 1
        return False

    def _degrade(self, state: _PoolState) -> None:
        """The pool is poison: stop replacing workers and finish the
        remaining jobs where nothing can crash-loop — the parent
        process.  Every in-flight *running* job was just killed, so it
        requeues as a counted retry (``attempt + 1``); the unstarted
        chunk tails requeue unchanged."""
        self.stats.degraded = True
        self._publish("farm-degraded",
                      worker_deaths=self.stats.worker_deaths,
                      remaining=(len(state.pending)
                                 + sum(len(f.batch)
                                       for f in state.flights.values())))
        for wid, flight in list(state.flights.items()):
            index, attempt = flight.batch.popleft()
            self._requeue_unstarted(state, flight.batch)
            self._retry(state.pending, index, state.specs[index],
                        "degraded", attempt)
            state.workers.pop(wid).kill()
        state.flights.clear()

    def _run_pool(self, specs, pending, outcomes) -> None:
        self._ctx = multiprocessing.get_context(self.start_method)
        if self.start_method == "fork":
            # Build the expensive immutable state once, pre-fork, so
            # every worker inherits it copy-on-write.
            prewarm_fork_snapshot()
        result_q = self._ctx.Queue()
        state = _PoolState(specs, pending, outcomes, result_q)
        try:
            for _ in range(min(self.jobs, len(pending))):
                state.workers[state.next_wid] = _Worker(
                    self._ctx, state.next_wid, result_q)
                state.next_wid += 1
            state.idle = list(state.workers)
            while state.pending or state.flights:
                self._dispatch(state)
                self._drain(state)
                if self._reap(state):
                    self._run_serial(specs, state.pending, outcomes)
                    return
        finally:
            for worker in state.workers.values():
                worker.stop()
            result_q.close()
            result_q.cancel_join_thread()


def run_specs(specs, jobs: int = 1, cache: ResultCache | None = None,
              **kwargs) -> list[JobOutcome]:
    """One-call convenience: build an executor, run, return outcomes."""
    return Executor(jobs=jobs, cache=cache, **kwargs).run(specs)
