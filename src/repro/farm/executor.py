"""The executor: one spec list in, one outcome list out — any width.

``Executor(jobs=1)`` runs every spec in the calling process with the
exact code path the repository's serial consumers always used, so a
one-wide farm run is bit-identical to today's loops.  ``jobs=N`` shards
the specs across ``N`` worker processes; because every job is a pure
function of its spec (see :mod:`repro.farm.jobspec`), the two modes
produce identical payloads, and the equivalence property tests assert
exactly that.

Failure semantics (the part a naive ``multiprocessing.Pool`` gets
wrong):

* **per-job timeout** — a worker that exceeds ``timeout`` seconds on one
  job is terminated (hung simulations cannot be cancelled from inside);
* **bounded retries** — a job whose worker raised, hung, or died is
  retried up to ``retries`` more times (on a fresh worker where needed)
  before being reported;
* **structured failure** — an exhausted job yields a
  :class:`JobFailure` (kind, message, attempt count) in its outcome
  slot; the run never hangs and never silently drops a job;
* **graceful degradation** — when workers keep dying (more than
  ``degrade_after`` replacements), the pool is abandoned and the
  remaining jobs run serially in the parent, which cannot crash-loop.

Progress — jobs queued/started/done/retried/failed, cache hits,
degradation — publishes on an :class:`repro.obs.EventBus`, so the
``run --trace-events`` style of introspection extends to fleet runs
(``sweep``/``farm``/``chaos`` accept ``--trace-events FILE``).

Results are returned in spec order regardless of completion order, and
completed payloads land in the :class:`~repro.farm.cache.ResultCache`
(when one is attached) keyed by content hash, so reruns are near-free.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.farm.cache import ResultCache
from repro.farm.fingerprint import code_fingerprint
from repro.farm.jobspec import JobSpec
from repro.farm.runners import run_spec
from repro.hw.stats import Clock
from repro.obs.events import EventBus

#: generous per-job wall-clock bound; individual consumers override.
DEFAULT_TIMEOUT = 300.0


@dataclass(frozen=True)
class JobFailure:
    """Why one job exhausted its attempts."""

    kind: str            # "exception" | "timeout" | "worker-death"
    message: str
    attempts: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind} after {self.attempts} attempts: {self.message}"


@dataclass
class JobOutcome:
    """One spec's result: a payload or a structured failure."""

    spec: JobSpec
    payload: dict | None = None
    failure: JobFailure | None = None
    cache_hit: bool = False
    attempts: int = 1
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class FarmStats:
    """What one :meth:`Executor.run` did, for reports and events."""

    jobs: int = 0
    done: int = 0
    failed: int = 0
    cache_hits: int = 0
    retries: int = 0
    worker_deaths: int = 0
    degraded: bool = False
    wall_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {"jobs": self.jobs, "done": self.done, "failed": self.failed,
                "cache_hits": self.cache_hits, "retries": self.retries,
                "worker_deaths": self.worker_deaths,
                "degraded": self.degraded,
                "wall_seconds": round(self.wall_seconds, 3)}


def _worker_main(wid: int, task_q, result_q) -> None:
    """Worker loop: run specs until the ``None`` sentinel arrives.

    Every exception — including ``KeyboardInterrupt`` — is shipped back
    as a structured error so the parent, not the worker, owns policy.
    """
    while True:
        message = task_q.get()
        if message is None:
            return
        index, spec_dict = message
        try:
            payload = run_spec(JobSpec.from_dict(spec_dict))
            result_q.put((wid, index, "ok", payload))
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            result_q.put((wid, index, "error",
                          {"type": type(exc).__name__, "message": str(exc),
                           "traceback": traceback.format_exc()}))


class _Worker:
    """One pool member: a process plus its private task queue."""

    def __init__(self, ctx, wid: int, result_q):
        self.wid = wid
        self.task_q = ctx.SimpleQueue()
        self.proc = ctx.Process(target=_worker_main,
                                args=(wid, self.task_q, result_q),
                                daemon=True)
        self.proc.start()

    def stop(self, timeout: float = 1.0) -> None:
        try:
            if self.proc.is_alive():
                self.task_q.put(None)
                self.proc.join(timeout)
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(timeout)
        finally:
            self.proc.close()

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(1.0)
        self.proc.close()


class Executor:
    """Runs :class:`JobSpec` batches serially or across a process pool."""

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 timeout: float = DEFAULT_TIMEOUT, retries: int = 2,
                 bus: EventBus | None = None,
                 fingerprint: str | None = None,
                 degrade_after: int | None = None,
                 start_method: str | None = None):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        #: farm events carry no simulated time — the farm runs outside
        #: the machines it schedules — so the bus gets its own zero clock
        #: and events order by ``seq``.
        self.bus = bus if bus is not None else EventBus(Clock())
        self.fingerprint = fingerprint or (code_fingerprint()
                                           if cache is not None else "")
        self.degrade_after = (degrade_after if degrade_after is not None
                              else max(4, 2 * jobs))
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self.start_method = start_method
        self.stats = FarmStats()

    # ---- entry point -------------------------------------------------------

    def run(self, specs) -> list[JobOutcome]:
        """Execute every spec; outcomes come back in spec order."""
        specs = list(specs)
        self.stats = FarmStats(jobs=len(specs))
        started = time.perf_counter()
        self._publish("farm-queued", jobs=len(specs), workers=self.jobs,
                      cached=self.cache is not None)
        outcomes: list[JobOutcome | None] = [None] * len(specs)
        pending: deque[tuple[int, int]] = deque()   # (index, attempt)
        for index, spec in enumerate(specs):
            hit = self._lookup(spec)
            if hit is not None:
                outcomes[index] = hit
                self.stats.cache_hits += 1
                self._publish("farm-cache-hit", job=index,
                              label=spec.label())
            else:
                pending.append((index, 1))
        if pending:
            if self.jobs == 1:
                self._run_serial(specs, pending, outcomes)
            else:
                self._run_pool(specs, pending, outcomes)
        self.stats.wall_seconds = time.perf_counter() - started
        self.stats.done = sum(1 for o in outcomes if o is not None and o.ok)
        self.stats.failed = len(specs) - self.stats.done
        self._publish("farm-complete", **self.stats.as_dict())
        return outcomes

    # ---- shared pieces -----------------------------------------------------

    def _publish(self, kind: str, **detail) -> None:
        bus = self.bus
        if bus is not None and bus.enabled:
            bus.publish(kind, **detail)

    def _lookup(self, spec: JobSpec) -> JobOutcome | None:
        if self.cache is None:
            return None
        payload = self.cache.get(spec.key(self.fingerprint))
        if payload is None:
            return None
        return JobOutcome(spec, payload=payload, cache_hit=True, attempts=0)

    def _store(self, spec: JobSpec, payload: dict) -> None:
        if self.cache is not None:
            self.cache.put(spec.key(self.fingerprint), spec,
                           self.fingerprint, payload)

    def _complete(self, outcomes, index, spec, payload, attempt,
                  wall) -> None:
        self._store(spec, payload)
        outcomes[index] = JobOutcome(spec, payload=payload, attempts=attempt,
                                     wall_seconds=wall)
        self._publish("farm-done", job=index, label=spec.label(),
                      attempt=attempt, wall=round(wall, 4))

    def _fail(self, outcomes, index, spec, kind, message, attempt) -> None:
        failure = JobFailure(kind, message, attempt)
        outcomes[index] = JobOutcome(spec, failure=failure, attempts=attempt)
        self._publish("farm-failure", job=index, label=spec.label(),
                      failure=kind, message=message, attempts=attempt)

    def _retry(self, pending, index, spec, reason, attempt) -> None:
        self.stats.retries += 1
        self._publish("farm-retry", job=index, label=spec.label(),
                      reason=reason, attempt=attempt)
        pending.appendleft((index, attempt + 1))

    # ---- serial ------------------------------------------------------------

    def _run_serial(self, specs, pending, outcomes) -> None:
        """In-process execution: today's serial loops, plus the farm's
        retry-on-exception and structured-failure semantics.  Hangs are
        not preemptible in-process — only the pool path can kill a hung
        job, which is why per-job timeouts require ``jobs > 1``."""
        while pending:
            index, attempt = pending.popleft()
            spec = specs[index]
            self._publish("farm-start", job=index, label=spec.label(),
                          attempt=attempt, worker="serial")
            begun = time.perf_counter()
            try:
                payload = run_spec(spec)
            except Exception as exc:
                if attempt <= self.retries:
                    self._retry(pending, index, spec, "exception", attempt)
                else:
                    self._fail(outcomes, index, spec, "exception",
                               f"{type(exc).__name__}: {exc}", attempt)
                continue
            self._complete(outcomes, index, spec, payload, attempt,
                           time.perf_counter() - begun)

    # ---- pool --------------------------------------------------------------

    def _run_pool(self, specs, pending, outcomes) -> None:
        ctx = multiprocessing.get_context(self.start_method)
        result_q = ctx.Queue()
        workers: dict[int, _Worker] = {}
        in_flight: dict[int, tuple[int, int, float, float]] = {}
        next_wid = 0
        try:
            for _ in range(min(self.jobs, len(pending))):
                workers[next_wid] = _Worker(ctx, next_wid, result_q)
                next_wid += 1
            idle = list(workers)
            while pending or in_flight:
                # 1. Dispatch to every idle worker.
                while pending and idle:
                    wid = idle.pop()
                    index, attempt = pending.popleft()
                    workers[wid].task_q.put((index, specs[index].to_dict()))
                    in_flight[wid] = (index, attempt,
                                      time.monotonic() + self.timeout,
                                      time.perf_counter())
                    self._publish("farm-start", job=index,
                                  label=specs[index].label(),
                                  attempt=attempt, worker=wid)
                # 2. Drain every available result before judging workers,
                #    so a result racing a crash or timeout still counts.
                drained = False
                while True:
                    try:
                        wid, index, status, data = result_q.get(
                            timeout=0.0 if drained else 0.05)
                    except queue.Empty:
                        break
                    drained = True
                    flight = in_flight.get(wid)
                    if flight is None or flight[0] != index:
                        continue  # stale result from a replaced worker
                    index, attempt, _, begun = in_flight.pop(wid)
                    spec = specs[index]
                    if wid in workers:
                        idle.append(wid)
                    if status == "ok":
                        self._complete(outcomes, index, spec, data, attempt,
                                       time.perf_counter() - begun)
                    elif attempt <= self.retries:
                        self._retry(pending, index, spec, "exception",
                                    attempt)
                    else:
                        self._fail(outcomes, index, spec, "exception",
                                   f"{data['type']}: {data['message']}",
                                   attempt)
                # 3. Reap dead and hung workers.
                now = time.monotonic()
                for wid in list(in_flight):
                    index, attempt, deadline, _ = in_flight[wid]
                    worker = workers[wid]
                    died = not worker.proc.is_alive()
                    hung = now > deadline
                    if not died and not hung:
                        continue
                    reason = "worker-death" if died else "timeout"
                    in_flight.pop(wid)
                    workers.pop(wid)
                    worker.kill()
                    self.stats.worker_deaths += 1
                    spec = specs[index]
                    if attempt <= self.retries:
                        self._retry(pending, index, spec, reason, attempt)
                    else:
                        message = (f"worker exited while running the job"
                                   if died else
                                   f"job exceeded {self.timeout:g}s")
                        self._fail(outcomes, index, spec, reason, message,
                                   attempt)
                    if self.stats.worker_deaths > self.degrade_after:
                        # The pool is poison: stop replacing workers and
                        # finish the remaining jobs where nothing can
                        # crash-loop — the parent process.
                        self.stats.degraded = True
                        self._publish(
                            "farm-degraded",
                            worker_deaths=self.stats.worker_deaths,
                            remaining=len(pending) + len(in_flight))
                        for other_wid, flight in list(in_flight.items()):
                            pending.appendleft((flight[0], flight[1]))
                            workers.pop(other_wid).kill()
                        in_flight.clear()
                        self._run_serial(specs, pending, outcomes)
                        return
                    workers[next_wid] = _Worker(ctx, next_wid, result_q)
                    idle.append(next_wid)
                    next_wid += 1
        finally:
            for worker in workers.values():
                worker.stop()
            result_q.close()
            result_q.cancel_join_thread()


def run_specs(specs, jobs: int = 1, cache: ResultCache | None = None,
              **kwargs) -> list[JobOutcome]:
    """One-call convenience: build an executor, run, return outcomes."""
    return Executor(jobs=jobs, cache=cache, **kwargs).run(specs)
