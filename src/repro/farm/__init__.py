"""The simulation farm: sharded deterministic execution + result cache.

Every expensive consumer in this repository — cache-size sweeps, chaos
suites, the conformance explorer, the bounded exhaustive checker, the
benchmark reproductions — is a pure function of a (config, seed) pair,
because the simulator is seeded and runs on a simulated clock.  The farm
exploits that purity twice:

* **sharding** — a :class:`JobSpec` batch runs across a
  ``multiprocessing`` pool (:class:`Executor`) with per-job timeouts,
  bounded retries on worker death, and graceful degradation to serial
  execution; ``jobs=1`` is bit-identical to the historical serial loops;
* **memoization** — completed payloads land in a content-addressed
  :class:`ResultCache` keyed by hash(spec, code fingerprint), so
  repeated sweeps and CI reruns answer from disk; any source change
  flips the fingerprint and every key with it.

See ``docs/farm.md`` for the job model, cache-key construction, failure
semantics, and the CLI surface (``sweep``, ``farm``, ``--jobs``).
"""

from repro.farm.cache import ResultCache, default_cache_root
from repro.farm.executor import (DEFAULT_TIMEOUT, Executor, FarmStats,
                                 JobFailure, JobOutcome, run_specs)
from repro.farm.fingerprint import code_fingerprint
from repro.farm.jobspec import JobSpec
from repro.farm.runners import run_spec
from repro.farm.snapshot import (fork_available, prewarm_fork_snapshot,
                                 snapshot_info)
from repro.farm.suites import (FarmJobError, farm_chaos_suite,
                               farm_exhaustive, farm_explore, farm_serve,
                               farm_sweep_grid, farm_sweep_points,
                               serve_cohort_specs)

__all__ = [
    "DEFAULT_TIMEOUT",
    "Executor",
    "FarmJobError",
    "FarmStats",
    "JobFailure",
    "JobOutcome",
    "JobSpec",
    "ResultCache",
    "code_fingerprint",
    "default_cache_root",
    "farm_chaos_suite",
    "farm_exhaustive",
    "farm_explore",
    "farm_serve",
    "farm_sweep_grid",
    "farm_sweep_points",
    "fork_available",
    "prewarm_fork_snapshot",
    "run_spec",
    "run_specs",
    "serve_cohort_specs",
    "snapshot_info",
]
