"""The code-version fingerprint: what makes cached results trustworthy.

A cached payload is only valid while the code that produced it is
byte-identical, because the cache key promises "same spec + same code =>
same result".  The fingerprint is a single SHA-256 over the relative
path and contents of every ``.py`` file in the installed ``repro``
package, so *any* source change — a cost-model constant, a policy flag,
a workload tweak — flips every cache key at once and every job recomputes.
Stale entries stay on disk until ``ResultCache.gc()`` (or the
``python -m repro farm gc`` subcommand) removes them.

The walk is content-based, not mtime-based, so checkouts, copies and CI
restores of the same tree fingerprint identically.
"""

from __future__ import annotations

import hashlib
import pathlib

import repro

_cached: str | None = None


def package_root() -> pathlib.Path:
    """The directory of the installed ``repro`` package."""
    return pathlib.Path(repro.__file__).resolve().parent


def code_fingerprint(refresh: bool = False) -> str:
    """SHA-256 over every source file of the ``repro`` package.

    Computed once per process (the tree is a few hundred KiB; hashing it
    takes single-digit milliseconds) unless ``refresh`` forces a rescan.
    """
    global _cached
    if _cached is not None and not refresh:
        return _cached
    root = package_root()
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _cached = digest.hexdigest()
    return _cached
