"""Job runners: the pure function each :class:`JobSpec` kind names.

A runner takes a spec and returns a JSON-safe payload dict — the same
dict whether it runs in the caller's process (``Executor(jobs=1)``) or
in a pool worker, which is what makes serial and sharded execution
bit-identical and the payload cacheable.  Runners are registered in a
module-level table so worker processes resolve them by kind after a
plain import, with no closures crossing the process boundary.

Kinds:

``workload``
    One measured workload execution (the primitive behind the tables and
    sweeps): workload name, policy name, scale, optional machine
    overrides (``dcache_kib``, ``phys_pages``, ``buffer_cache_pages``,
    ``geometry`` — an :func:`~repro.hw.params.apply_geometry` spec such
    as ``"2way+victim8+l2"``), optional fault plan (``inject`` +
    ``seed``), optional lockstep shadowing (``conform``).  Payload: the :class:`RunMetrics` dict,
    plus injection and conformance summaries when armed; an injected
    run that fail-stops records the detection as a ``failstop`` payload
    (a deterministic result of the spec) rather than failing the job.
``replay``
    One trace replay with equivalence verification (trace path + content
    digest, optional ``exact`` to disable window fusion); payload is the
    replay verdict, clock, fusion statistics and event hash.  Replays
    are pure functions of the artifact bytes, so the farm's cache makes
    re-verifying an unchanged trace free.
``chaos``
    One detected-or-harmless chaos run (seed, preset, steps, optional
    ``n_cpus`` for a coherent cluster with per-CPU lockstep shadows);
    payload is the verified :class:`ChaosReport` dict.
``smp``
    One point of the Section 3.3 SMP scaling curve: the multi-CPU ring
    (or Unix-server) workload at ``n_cpus`` with ``aligned`` or
    unaligned sharing; payload is the result dict (cycles per record,
    consistency faults, coherence traffic).
``serve``
    One user cohort of the ``serve`` macro-workload: ``users`` simulated
    users hammering the Unix server's buffer-cache and IPC paths on a
    fresh kernel (optional policy/sizing overrides, optional ``conform``
    lockstep shadowing); payload is the :class:`ServeCohortResult` dict
    with the per-cohort read checksum and counter snapshot.
``explore``
    One conformance-explorer shard (seed, sequences, cache_pages);
    payload is the :class:`ExplorationReport` dict, coverage included.
``exhaustive``
    One prefix shard of the bounded exhaustive checker (optionally
    against a named derived-table variant, ``model``); payload is the
    :class:`CheckReport` dict.
``selftest``
    A test-only runner exercising the executor's failure machinery:
    echo a value, raise, hang, busy-spin, exit the worker process, or
    fail once then succeed (``flaky`` — keyed on a scratch file).
"""

from __future__ import annotations

import os
import time

from repro.errors import ConfigurationError, ReproError
from repro.farm.jobspec import JobSpec

RUNNERS: dict = {}


def runner(kind: str):
    def register(fn):
        RUNNERS[kind] = fn
        return fn
    return register


def run_spec(spec: JobSpec) -> dict:
    """Execute one spec in this process; returns its payload dict."""
    try:
        fn = RUNNERS[spec.kind]
    except KeyError:
        raise ConfigurationError(f"unknown job kind {spec.kind!r}")
    return fn(spec)


# ---- simulation runners ----------------------------------------------------


@runner("workload")
def _run_workload_job(spec: JobSpec) -> dict:
    from repro.analysis.experiments import (evaluation_machine,
                                            make_workload, run_workload)
    from repro.analysis.sweep import machine_with_dcache
    from repro.policy import get_policy

    policy = get_policy(spec["policy"])
    dcache_kib = spec.get("dcache_kib")
    phys_pages = spec.get("phys_pages")
    if dcache_kib is not None:
        config = machine_with_dcache(dcache_kib, phys_pages or 320)
    elif phys_pages is not None:
        from repro.hw.params import MachineConfig
        config = MachineConfig(phys_pages=phys_pages)
    else:
        config = evaluation_machine()
    geometry = spec.get("geometry")
    if geometry is not None:
        from repro.hw.params import apply_geometry
        config = apply_geometry(config, geometry)
    buffer_cache_pages = spec.get("buffer_cache_pages", 48)
    workload = make_workload(spec["workload"], spec.get("scale", 1.0))

    inject = spec.get("inject")
    conform = bool(spec.get("conform", False))
    kernel = injector = monitor = None
    # A hierarchy geometry needs the kernel in hand: the victim/L2
    # counters live on the machine, not in RunMetrics.
    if inject or conform or config.has_hierarchy:
        from repro.kernel.kernel import Kernel
        kernel = Kernel(policy=policy, config=config,
                        buffer_cache_pages=buffer_cache_pages)
    if inject:
        from repro.faults import FaultInjector, FaultPlan
        plan = FaultPlan.parse(inject, seed=spec.get("seed", 0))
        injector = FaultInjector(plan, kernel.machine.clock)
        injector.attach_kernel(kernel)
    if conform:
        from repro.conformance import ConformanceMonitor
        monitor = ConformanceMonitor(kernel,
                                     record_only=injector is not None)
        monitor.attach()
    failstop = None
    try:
        metrics = run_workload(workload, policy, config=config,
                               buffer_cache_pages=buffer_cache_pages,
                               kernel=kernel)
    except ReproError as exc:
        # Under injection a fail-stop is *detection* — a legitimate,
        # deterministic result of the spec, not an infrastructure
        # failure to retry (mirrors the CLI's `run --inject` handling).
        if injector is None:
            raise
        failstop = {"type": type(exc).__name__, "message": str(exc)}
    finally:
        if monitor is not None:
            monitor.detach()
    if failstop is not None:
        return {"failstop": failstop, "injections": len(injector.audit)}
    payload: dict = {"metrics": metrics.to_dict()}
    if kernel is not None and kernel.machine.hierarchy is not None:
        counters = kernel.machine.counters
        payload["hierarchy"] = {
            "victim_hits": counters.victim_hits,
            "victim_captures": counters.victim_captures,
            "l2_hits": counters.l2_hits,
            "l2_fills": counters.l2_fills,
        }
    if injector is not None:
        payload["injections"] = len(injector.audit)
    if monitor is not None:
        payload["conform"] = {
            "ok": monitor.ok,
            "events": monitor.events_seen,
            "divergences": [str(d) for d in monitor.divergences],
            "coverage": monitor.coverage.to_dict(),
        }
    return payload


@runner("replay")
def _run_replay_job(spec: JobSpec) -> dict:
    from repro.trace import load_trace, replay_trace

    trace = load_trace(spec["trace"])
    result = replay_trace(trace, batched=not spec.get("exact", False))
    return {
        "equivalent": result.equivalent,
        "mismatches": list(result.mismatches),
        "clock": result.clock,
        "n_ops": result.n_ops,
        "batches": result.batches,
        "batched_ops": result.batched_ops,
        "fallbacks": result.fallbacks,
        "n_events": result.n_events,
        "events_sha256": result.events_sha256,
        "workload": trace.meta.get("workload"),
        "policy": trace.meta.get("policy"),
    }


@runner("chaos")
def _run_chaos_job(spec: JobSpec) -> dict:
    from repro.faults.harness import run_chaos

    kwargs = {}
    if spec.get("policy") is not None:
        kwargs["policy"] = spec["policy"]
    report = run_chaos(spec["seed"], preset=spec.get("preset", "mixed"),
                       steps=spec.get("steps", 200),
                       n_cpus=spec.get("n_cpus", 1), **kwargs)
    return {"report": report.to_dict()}


@runner("smp")
def _run_smp_job(spec: JobSpec) -> dict:
    from repro.faults.harness import chaos_machine
    from repro.kernel.kernel import Kernel
    from repro.workloads.smp import run_smp_ring, run_smp_unix_server

    kernel = Kernel(config=chaos_machine(n_cpus=spec["n_cpus"],
                                         phys_pages=spec.get("phys_pages")
                                         or 192),
                    buffer_cache_pages=24)
    workload = spec.get("workload", "ring")
    if workload == "ring":
        result = run_smp_ring(kernel,
                              records_per_pair=spec.get("records", 120),
                              data_pages=spec.get("data_pages", 2),
                              aligned=bool(spec.get("aligned", True)))
    elif workload == "server":
        result = run_smp_unix_server(kernel)
    else:
        raise ConfigurationError(f"unknown smp workload {workload!r}")
    return {"result": result.to_dict()}


@runner("serve")
def _run_serve_job(spec: JobSpec) -> dict:
    from repro.workloads.serve import run_serve_cohort

    kwargs = {}
    for key in ("policy", "hot_files", "file_pages", "frontends",
                "buffer_cache_pages"):
        value = spec.get(key)
        if value is not None:
            kwargs[key] = value
    result = run_serve_cohort(spec["cohort"], spec["users"],
                              conform=bool(spec.get("conform", False)),
                              **kwargs)
    return {"result": result.to_dict()}


@runner("explore")
def _run_explore_job(spec: JobSpec) -> dict:
    from repro.conformance.explorer import Explorer

    report = Explorer(num_cache_pages=spec.get("cache_pages", 3),
                      seed=spec["seed"]).explore(spec["sequences"])
    return {"report": report.to_dict()}


@runner("exhaustive")
def _run_exhaustive_job(spec: JobSpec) -> dict:
    from repro.core.exhaustive import check_all_sequences
    from repro.core.variants import model_factory_by_name

    report = check_all_sequences(
        num_cache_pages=spec["num_cache_pages"], depth=spec["depth"],
        prefix=tuple(spec.get("prefix", ())),
        model_factory=model_factory_by_name(
            spec.get("model", "canonical")))
    return {"report": report.to_dict()}


# ---- the executor's own test surface ---------------------------------------


@runner("selftest")
def _run_selftest_job(spec: JobSpec) -> dict:
    mode = spec.get("mode", "ok")
    if mode == "ok":
        return {"value": spec.get("value"), "pid": os.getpid()}
    if mode == "raise":
        raise RuntimeError(f"selftest raise ({spec.get('value')})")
    if mode == "hang":
        time.sleep(float(spec.get("seconds", 3600.0)))
        return {"value": "woke"}
    if mode == "spin":
        deadline = time.perf_counter() + float(spec.get("seconds", 0.1))
        n = 0
        while time.perf_counter() < deadline:
            n += 1
        return {"value": spec.get("value"), "spins": bool(n)}
    if mode == "die":
        # Only a pool worker may be killed; after degradation the job
        # runs in the parent, where the crash becomes a plain exception
        # (the scenario the degradation path exists for).
        import multiprocessing
        if multiprocessing.parent_process() is not None:
            os._exit(int(spec.get("code", 13)))
        raise RuntimeError("selftest die: not in a worker process")
    if mode == "flaky":
        # Fail until the scratch file exists; the first attempt creates
        # it, so the bounded retry's second attempt succeeds.
        marker = spec["path"]
        if os.path.exists(marker):
            return {"value": "recovered", "pid": os.getpid()}
        with open(marker, "w") as handle:
            handle.write("attempted\n")
        raise RuntimeError("selftest flaky: first attempt fails")
    raise ConfigurationError(f"unknown selftest mode {mode!r}")
