"""The content-addressed result cache: repeated sweeps are near-free.

Every completed job's payload is persisted as one JSON file named by the
job's content key (``JobSpec.key(fingerprint)``), so a rerun of the same
sweep, chaos suite or benchmark with unchanged code answers from disk in
microseconds instead of re-simulating.  The entry carries its own
integrity data — the spec that produced it, the code fingerprint, and a
SHA-256 of the canonical payload encoding — so a *poisoned* entry (a
truncated write, a corrupted disk block, a hand-edited file) is detected
on read, deleted, and transparently recomputed rather than served.

Writes are atomic (temp file + ``os.replace``) and canonical (sorted
keys, fixed separators), so a cache hit returns the byte-identical
payload the original run produced and concurrent writers of the same key
converge on identical bytes.

The default cache root is ``~/.cache/repro-farm`` (override with the
``REPRO_FARM_CACHE`` environment variable or the ``--cache-dir`` CLI
flag); invalidation is explicit: :meth:`ResultCache.gc` drops entries
whose fingerprint no longer matches the current code, and
:meth:`ResultCache.clear` drops everything.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from collections import Counter

from repro.farm.jobspec import SCHEMA_VERSION, JobSpec

ENV_VAR = "REPRO_FARM_CACHE"
DEFAULT_ROOT = "~/.cache/repro-farm"


def default_cache_root() -> pathlib.Path:
    return pathlib.Path(os.environ.get(ENV_VAR, DEFAULT_ROOT)).expanduser()


def _payload_digest(payload: dict) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


class ResultCache:
    """Disk store of job payloads keyed by content hash.

    Counters (``hits``, ``misses``, ``poisoned``) accumulate over the
    cache object's lifetime; the executor reports them in its
    ``farm-complete`` event.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = pathlib.Path(root) if root else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.poisoned = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    # ---- read --------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The cached payload for ``key``, or None.

        A structurally invalid or checksum-mismatched entry is treated as
        a miss: it is deleted so the recomputed result can take its
        place, and counted in ``poisoned``.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self._discard_poisoned(path)
            return None
        if not self._valid(key, entry):
            self._discard_poisoned(path)
            return None
        self.hits += 1
        return entry["payload"]

    @staticmethod
    def _valid(key: str, entry) -> bool:
        if not isinstance(entry, dict):
            return False
        if entry.get("version") != SCHEMA_VERSION or entry.get("key") != key:
            return False
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return False
        return entry.get("payload_sha256") == _payload_digest(payload)

    def _discard_poisoned(self, path: pathlib.Path) -> None:
        self.poisoned += 1
        self.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    # ---- write -------------------------------------------------------------

    def put(self, key: str, spec: JobSpec, fingerprint: str,
            payload: dict) -> pathlib.Path:
        """Persist one payload atomically; returns the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": SCHEMA_VERSION,
            "key": key,
            "fingerprint": fingerprint,
            "spec": spec.to_dict(),
            "payload": payload,
            "payload_sha256": _payload_digest(payload),
        }
        encoded = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(encoded)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ---- maintenance -------------------------------------------------------

    def entries(self):
        """Yield ``(path, entry-dict-or-None)`` for every stored file
        (None for unparseable entries)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.json")):
            try:
                yield path, json.loads(path.read_text())
            except (OSError, ValueError):
                yield path, None

    def stats(self, fingerprint: str | None = None) -> dict:
        """Inventory of the store: entry and byte counts, kinds, and how
        many entries match the given (current) fingerprint."""
        kinds: Counter[str] = Counter()
        entries = 0
        stale = 0
        invalid = 0
        size = 0
        for path, entry in self.entries():
            entries += 1
            size += path.stat().st_size
            if not isinstance(entry, dict):
                invalid += 1
                continue
            spec = entry.get("spec") or {}
            kinds[spec.get("kind", "?")] += 1
            if fingerprint and entry.get("fingerprint") != fingerprint:
                stale += 1
        return {"root": str(self.root), "entries": entries, "bytes": size,
                "kinds": dict(sorted(kinds.items())), "stale": stale,
                "invalid": invalid}

    def gc(self, fingerprint: str) -> int:
        """Explicit invalidation: delete every entry whose fingerprint is
        not ``fingerprint`` (plus unparseable files); returns the count."""
        removed = 0
        for path, entry in list(self.entries()):
            if isinstance(entry, dict) and \
                    entry.get("fingerprint") == fingerprint:
                continue
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every entry; returns the count."""
        removed = 0
        for path, _ in list(self.entries()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResultCache({self.root}, hits={self.hits}, "
                f"misses={self.misses}, poisoned={self.poisoned})")
