"""Memory protection values and their combination rules.

The implementation strategy of Section 4 relies on virtual-memory
protection to trap accesses that require consistency state transitions.
A page therefore carries *two* protections:

* the **VM protection** the operating system granted (read-only text,
  copy-on-write, and so on), and
* the **consistency protection** installed by the cache-control algorithm
  (``NO_ACCESS`` for stale/unmapped cache pages, ``READ_ONLY`` after a
  CPU-read so the next write is caught, ``READ_WRITE`` for the dirty
  mapping).

The hardware enforces their intersection; a fault against the consistency
protection (but allowed by the VM protection) is a *consistency fault*
(Section 5.1), counted separately from mapping faults.
"""

from __future__ import annotations

import enum


class Prot(enum.IntFlag):
    """Access rights, combinable with ``|`` and intersected with ``&``."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4

    READ_WRITE = READ | WRITE
    READ_EXEC = READ | EXEC
    ALL = READ | WRITE | EXEC

    def allows(self, wanted: "Prot") -> bool:
        """True if this protection permits every right in ``wanted``."""
        return (self & wanted) == wanted


class AccessKind(enum.Enum):
    """What a CPU access attempted; maps onto the rights it needs."""

    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"

    @property
    def required(self) -> Prot:
        return _REQUIRED[self]


_REQUIRED = {
    AccessKind.READ: Prot.READ,
    AccessKind.WRITE: Prot.WRITE,
    AccessKind.EXECUTE: Prot.EXEC,
}
