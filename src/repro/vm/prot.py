"""Protection values — re-exported from :mod:`repro.prot`.

The definitions live at the package top level so the hardware layer
(:mod:`repro.hw`) and the model layer (:mod:`repro.core`) can use them
without importing the VM package (which imports them back).
"""

from repro.prot import AccessKind, Prot

__all__ = ["AccessKind", "Prot"]
