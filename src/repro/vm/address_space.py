"""Task address spaces: the hierarchical Mach model (Section 2.1).

Each task runs in its own address space; memory can be shared between
tasks with no requirement that it be shared at the same virtual address —
which is exactly what creates unaligned aliases on a virtually indexed
cache.  The address allocator therefore supports two strategies:

* **first-fit** — the original Mach behaviour: the next free virtual page,
  with no regard for the cache index function (source and destination of
  an IPC transfer "rarely aligned", Section 4.2);
* **aligned** — pick the next free virtual page whose cache page matches a
  requested color, so a remapped physical page aligns with its previous
  (or preparatory) mapping and needs no consistency management.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import KernelError
from repro.vm.prot import Prot
from repro.vm.vm_object import VMObject


class PageKind(enum.Enum):
    """What a mapped page is, for bookkeeping and fault resolution."""

    ANON = "anon"          # zero-filled private data (heap, stack, bss)
    FILE = "file"          # file-backed data mapping
    TEXT = "text"          # program text; faults go to the exec loader
    SHARED = "shared"      # memory explicitly shared between tasks
    IPC = "ipc"            # page received through an IPC transfer


@dataclass
class PageDescriptor:
    """The machine-independent description of one mapped virtual page."""

    kind: PageKind
    vm_object: VMObject
    obj_page: int
    vm_prot: Prot
    cow: bool = False


class AddressSpace:
    """Page-granularity virtual address space of one task.

    With ``shared_allocator`` set, virtual addresses come from a single
    system-wide allocator instead of the per-space first-fit search: the
    Section 2.1 global-address-space model, where "memory is shared at
    the same address in all processes", which "eliminates consistency
    problems due to sharing" (but not those of new mappings or DMA).
    """

    def __init__(self, asid: int, num_cache_pages: int,
                 first_vpage: int = 16, max_vpage: int = 1 << 20,
                 shared_allocator=None):
        self.asid = asid
        self.num_cache_pages = num_cache_pages
        self._pages: dict[int, PageDescriptor] = {}
        self._cursor = first_vpage
        self._max_vpage = max_vpage
        self._shared_allocator = shared_allocator

    # ---- virtual address allocation ------------------------------------------

    def allocate_vpages(self, npages: int = 1,
                        color: int | None = None) -> int:
        """Reserve ``npages`` consecutive unmapped virtual pages.

        With ``color`` set, the first page is placed so that its cache page
        equals ``color`` (the aligned strategy); otherwise the lowest free
        range is used (first-fit, reusing freed addresses — as Mach's
        anywhere-allocation did).  Returns the first virtual page number.
        """
        if npages <= 0:
            raise KernelError("must allocate at least one page")
        if self._shared_allocator is not None:
            return self._shared_allocator(npages)
        start = self._cursor
        if color is not None:
            offset = (color - start) % self.num_cache_pages
            start += offset
        while not self._range_free(start, npages):
            start += self.num_cache_pages if color is not None else 1
            if start + npages > self._max_vpage:
                raise KernelError(f"asid {self.asid}: address space exhausted")
        return start

    def _range_free(self, start: int, npages: int) -> bool:
        return all(start + i not in self._pages for i in range(npages))

    # ---- mapping bookkeeping ---------------------------------------------------

    def map_page(self, vpage: int, descriptor: PageDescriptor) -> None:
        if vpage in self._pages:
            raise KernelError(f"asid {self.asid}: vpage {vpage} already mapped")
        descriptor.vm_object.reference()
        self._pages[vpage] = descriptor

    def unmap_page(self, vpage: int) -> PageDescriptor:
        try:
            descriptor = self._pages.pop(vpage)
        except KeyError:
            raise KernelError(
                f"asid {self.asid}: vpage {vpage} not mapped") from None
        descriptor.vm_object.dereference()
        return descriptor

    def descriptor(self, vpage: int) -> PageDescriptor | None:
        return self._pages.get(vpage)

    def mapped_vpages(self) -> list[int]:
        return sorted(self._pages)

    def cache_page_of(self, vpage: int) -> int:
        return vpage % self.num_cache_pages

    def __contains__(self, vpage: int) -> bool:
        return vpage in self._pages

    def __len__(self) -> int:
        return len(self._pages)
