"""Memory objects: the containers virtual memory is mapped from.

This is a deliberately simplified form of Mach's memory-object model
(Section 2.1): an object owns a set of resident physical pages indexed by
object page offset, and is backed either by zero-fill or by a file.
Sharing is expressed by mapping the same object page into several address
spaces; copy-on-write is expressed at the mapping layer
(:mod:`repro.vm.address_space`) by marking a mapping ``cow`` and giving
the faulting task a private copy on first write.
"""

from __future__ import annotations

import enum
import itertools
from repro.errors import KernelError

_ids = itertools.count(1)


class Backing(enum.Enum):
    """What produces an object page's initial contents."""

    ZERO_FILL = "zero-fill"
    FILE = "file"


class VMObject:
    """A container of physical pages mapped into address spaces."""

    def __init__(self, size_pages: int, backing: Backing = Backing.ZERO_FILL,
                 file_id: int | None = None, file_offset: int = 0):
        if size_pages <= 0:
            raise KernelError("VM object must contain at least one page")
        if backing is Backing.FILE and file_id is None:
            raise KernelError("file-backed object needs a file id")
        self.object_id = next(_ids)
        self.size_pages = size_pages
        self.backing = backing
        self.file_id = file_id
        self.file_offset = file_offset
        self.ref_count = 0
        self._resident: dict[int, int] = {}  # object page -> ppage
        # Under the global-address-space model every mapping of the object
        # uses the same virtual address; the first mapping fixes it.
        self.global_base_vpage: int | None = None
        # Pages evicted to the swap area: object page -> swap slot.
        self.swap_slots: dict[int, int] = {}

    def _check(self, obj_page: int) -> None:
        if not 0 <= obj_page < self.size_pages:
            raise KernelError(
                f"object {self.object_id}: page {obj_page} out of range "
                f"[0, {self.size_pages})")

    def resident_page(self, obj_page: int) -> int | None:
        """The physical frame holding this object page, if resident."""
        self._check(obj_page)
        return self._resident.get(obj_page)

    def establish(self, obj_page: int, ppage: int) -> None:
        self._check(obj_page)
        if obj_page in self._resident:
            raise KernelError(
                f"object {self.object_id}: page {obj_page} already resident")
        self._resident[obj_page] = ppage

    def evict(self, obj_page: int) -> int:
        self._check(obj_page)
        try:
            return self._resident.pop(obj_page)
        except KeyError:
            raise KernelError(
                f"object {self.object_id}: page {obj_page} not resident"
            ) from None

    def resident_pages(self) -> dict[int, int]:
        return dict(self._resident)

    def reference(self) -> None:
        self.ref_count += 1

    def dereference(self) -> int:
        """Drop a reference; returns the remaining count."""
        if self.ref_count <= 0:
            raise KernelError(f"object {self.object_id}: refcount underflow")
        self.ref_count -= 1
        return self.ref_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VMObject(id={self.object_id}, size={self.size_pages}, "
                f"backing={self.backing.value}, resident={len(self._resident)})")
