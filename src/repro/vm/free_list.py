"""The kernel's free page list, optionally colored by cache page.

Section 5.1 observes that about 80% of the purges remaining in the best
configuration come from "the creation of new mappings when a virtual
address is assigned to a random physical page from the kernel's free page
list", and that "some of these purges could be eliminated by reducing the
associativity of virtual to physical mappings through the use of multiple
free page lists".  The colored mode implements that suggestion: frames are
binned by the cache page of their most recent mapping, and the allocator
prefers a frame whose previous life aligns with the new mapping — making
the new mapping's target cache page non-stale so no purge is needed.
"""

from __future__ import annotations

from collections import deque

from repro.errors import OutOfMemoryError


class FreePageList:
    """FIFO free list with an optional per-cache-color organisation."""

    def __init__(self, ppages: list[int] | range, num_cache_pages: int,
                 colored: bool = False):
        self.num_cache_pages = num_cache_pages
        self.colored = colored
        self._plain: deque[int] = deque(ppages)
        self._by_color: dict[int, deque[int]] = {
            c: deque() for c in range(num_cache_pages)}
        self.color_hits = 0
        self.color_misses = 0

    def __len__(self) -> int:
        return len(self._plain) + sum(map(len, self._by_color.values()))

    def allocate(self, color: int | None = None) -> int:
        """Take a frame, preferring one whose last mapping had cache page
        ``color`` when the list is colored."""
        if self.colored and color is not None:
            bucket = self._by_color[color % self.num_cache_pages]
            if bucket:
                self.color_hits += 1
                return bucket.popleft()
            self.color_misses += 1
        if self._plain:
            # LIFO: the most recently freed frame is reused first, as real
            # kernels do for cache warmth — and which is what makes lazily
            # retained cache state likely to still be relevant at reuse.
            return self._plain.pop()
        # steal from the fullest colored bucket
        fullest = max(self._by_color.values(), key=len, default=None)
        if fullest:
            return fullest.popleft()
        raise OutOfMemoryError("free page list exhausted")

    def allocate_run(self, npages: int) -> list[int]:
        """Take ``npages`` *physically contiguous* frames (superpage
        backing: the physical contiguity is what lets an index-aligned
        virtual run pin the cache index bits).

        Scans the free frames for the lowest-numbered consecutive run;
        container order (FIFO/LIFO warmth, coloring) is irrelevant here —
        contiguity is a property of frame numbers, not of recency.
        """
        if npages <= 0:
            raise ValueError(f"superpage run must be positive, got {npages}")
        free = sorted(self._plain)
        for bucket in self._by_color.values():
            free.extend(bucket)
        free.sort()
        run_start = 0
        for i in range(1, len(free) + 1):
            if i < len(free) and free[i] == free[i - 1] + 1:
                continue
            if i - run_start >= npages:
                frames = free[run_start:run_start + npages]
                taken = set(frames)
                self._plain = deque(p for p in self._plain
                                    if p not in taken)
                for color, bucket in self._by_color.items():
                    if taken & set(bucket):
                        self._by_color[color] = deque(
                            p for p in bucket if p not in taken)
                return frames
            run_start = i
        raise OutOfMemoryError(
            f"no run of {npages} contiguous free frames")

    def free(self, ppage: int, color: int | None = None) -> None:
        """Return a frame, remembering the cache page of its last mapping."""
        if self.colored and color is not None:
            self._by_color[color % self.num_cache_pages].append(ppage)
        else:
            self._plain.append(ppage)
