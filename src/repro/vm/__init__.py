"""The Mach-style virtual memory substrate."""

from repro.vm.address_space import AddressSpace, PageDescriptor, PageKind
from repro.vm.free_list import FreePageList
from repro.vm.pagetable import PageTable, PageTableEntry
from repro.vm.pmap import Pmap
from repro.vm.policy import (CONFIG_A, CONFIG_B, CONFIG_C, CONFIG_D, CONFIG_E,
                             CONFIG_F, CONFIG_GLOBAL, CONFIG_LADDER,
                             NEW_SYSTEM, OLD_SYSTEM, TABLE5_SYSTEMS,
                             PolicyConfig, by_name)
from repro.vm.prot import AccessKind, Prot
from repro.vm.vm_object import Backing, VMObject

__all__ = [
    "AddressSpace", "PageDescriptor", "PageKind", "FreePageList",
    "PageTable", "PageTableEntry", "Pmap", "PolicyConfig", "CONFIG_A",
    "CONFIG_B", "CONFIG_C", "CONFIG_D", "CONFIG_E", "CONFIG_F",
    "CONFIG_GLOBAL", "CONFIG_LADDER", "TABLE5_SYSTEMS", "OLD_SYSTEM", "NEW_SYSTEM",
    "by_name", "AccessKind", "Prot", "Backing", "VMObject",
]
