"""The machine-dependent VM layer (Mach's ``pmap``), hosting the
consistency policy.

Everything Section 4 describes lives here:

* the per-physical-page state (:class:`PhysPageState`) and the Figure 1
  :class:`CacheControl` engine;
* mapping entry/removal with lazy or eager cache cleaning;
* page preparation (``zero_fill_page`` / ``copy_page``) with the
  ultimate-virtual-address alignment hint (optimization D) and the
  ``need_data`` / ``will_overwrite`` semantic flags (optimizations E, F);
* DMA preparation (flush before a DMA-read, purge around a DMA-write);
* text installation with the mandatory data-to-instruction-space flush
  and instruction-cache purge (Section 5.1);
* the page-modified-bit shortcut of Section 4.1.

The pmap is policy-parameterized: the same code implements the paper's
"new" system (configuration F), the "old" eager system (configuration A),
every rung of the B–F ladder, and the Tut per-virtual-address emulation.
Every decision point delegates to a :class:`ConsistencyPolicy` hook
(``self.cpolicy``); the default hooks read the legacy
:class:`repro.vm.policy.PolicyConfig` flags (``self.policy``), and
external strategies (reverse-lookup tables, superpage-aware VIPT)
override only the hooks where they differ — see ``repro.policy``.
"""

from __future__ import annotations

import numpy as np

from repro.core.cache_control import CacheControl
from repro.core.page_state import Mapping, PhysPageState
from repro.core.states import LineState, MemoryOp
from repro.errors import KernelError, ReproError
from repro.hw.machine import Machine
from repro.hw.stats import Reason
from repro.policy.base import ConsistencyPolicy
from repro.vm.pagetable import PageTable, PageTableEntry
from repro.vm.policy import PolicyConfig
from repro.vm.prot import AccessKind, Prot


class Pmap:
    """Machine-dependent mapping layer with pluggable consistency policy."""

    def __init__(self, machine: Machine,
                 policy: PolicyConfig | ConsistencyPolicy):
        if not isinstance(policy, ConsistencyPolicy):
            policy = ConsistencyPolicy(policy)
        self.machine = machine
        self.cpolicy = policy
        self.policy = policy.flags
        self.page_size = machine.page_size
        self.ncp = machine.dcache.geo.num_cache_pages
        self.nicp = machine.icache.geo.num_cache_pages
        # Optional fault injector (pmap.flush.*, pmap.purge.*,
        # pmap.dma_*_prep.skip); None in normal runs.
        self.injector = None
        self.page_states: dict[int, PhysPageState] = {}
        self.page_tables: dict[int, PageTable] = {}
        self.engine = CacheControl(
            self._flush_cache_page, self._purge_cache_page,
            self._set_protection,
            eager_purge_stale=self.policy.eager_purge_stale)
        machine.translation_source = self.translate
        machine.write_notifier = self.note_modified
        self.cpolicy.setup(self)

    # ---- plumbing -------------------------------------------------------------

    def state_of(self, ppage: int) -> PhysPageState:
        state = self.page_states.get(ppage)
        if state is None:
            state = PhysPageState(ppage, self.ncp, self.nicp)
            state.pa_indexed = self.machine.dcache.geo.physically_indexed
            state.ipa_indexed = self.machine.icache.geo.physically_indexed
            self.page_states[ppage] = state
        return state

    def page_table(self, asid: int) -> PageTable:
        table = self.page_tables.get(asid)
        if table is None:
            table = PageTable(asid)
            self.page_tables[asid] = table
        return table

    def destroy_page_table(self, asid: int) -> None:
        self.page_tables.pop(asid, None)
        self.machine.tlb.invalidate_asid(asid)

    def cache_page_of(self, vpage: int) -> int:
        return vpage % self.ncp

    def _pa_base(self, ppage: int) -> int:
        return ppage * self.page_size

    # ---- CacheControl callbacks --------------------------------------------------

    def _flush_cache_page(self, cache_page: int, ppage: int,
                          reason: Reason) -> None:
        if self.injector is not None:
            record = self.injector.fires("pmap.flush.drop", ppage=ppage,
                                         cache_page=cache_page)
            if record is not None:
                # The flush is lost while the bookkeeping proceeds as if
                # it happened.  Consequential exactly when memory lags the
                # program-order contents of the frame (dirty data exists
                # that only the flush would have pushed out).
                record.consequential = self._frame_divergent(ppage)
                return
            if self.injector.fires("pmap.flush.duplicate", ppage=ppage,
                                   cache_page=cache_page) is not None:
                # Run the operation twice: a flush is idempotent, so the
                # duplicate must be harmless (and visibly charged).
                self.cpolicy.do_flush(self, cache_page, ppage, reason)
        self.cpolicy.do_flush(self, cache_page, ppage, reason)

    def _purge_cache_page(self, cache_page: int, ppage: int,
                          reason: Reason) -> None:
        if self.injector is not None:
            record = self.injector.fires("pmap.purge.drop", ppage=ppage,
                                         cache_page=cache_page)
            if record is not None:
                # The purge is lost: lines that should have been discarded
                # stay resident.  Consequential when any such line exists.
                record.consequential = bool(
                    self.machine.dcache.resident_lines(
                        cache_page, self._pa_base(ppage)))
                return
            if self.injector.fires("pmap.purge.duplicate", ppage=ppage,
                                   cache_page=cache_page) is not None:
                self.cpolicy.do_purge(self, cache_page, ppage, reason)
        self.cpolicy.do_purge(self, cache_page, ppage, reason)

    def _frame_divergent(self, ppage: int) -> bool:
        """Does physical memory disagree with program order for ``ppage``?

        Used to classify injected omissions at injection time; without an
        oracle the question cannot be answered, so err on the side of
        consequential.
        """
        oracle = self.machine.oracle
        if oracle is None:
            return True
        return not np.array_equal(self.machine.memory.read_page(ppage),
                                  oracle.expected_page(self._pa_base(ppage)))

    def _set_protection(self, mapping: Mapping, prot: Prot | None) -> None:
        if prot is None:
            return  # DMA stanza: leave the installed protection in place
        pte = self.page_table(mapping.asid).lookup(mapping.vpage)
        if pte is None:
            return  # mapping record without a PTE cannot be accessed anyway
        if pte.cache_prot != prot:
            pte.cache_prot = prot
            self.machine.tlb.invalidate(mapping.asid, mapping.vpage)

    # ---- hardware hooks ------------------------------------------------------------

    def translate(self, asid: int,
                  vpage: int) -> tuple[int, Prot, bool] | None:
        """TLB refill: (physical page, effective protection, uncached)."""
        pte = self.page_table(asid).lookup(vpage)
        if pte is None:
            return None
        return pte.ppage, pte.effective_prot, pte.uncached

    def note_modified(self, asid: int, vpage: int) -> None:
        """Hardware page-modified bit: a store went through this mapping."""
        pte = self.page_table(asid).lookup(vpage)
        if pte is None:  # pragma: no cover - store cannot succeed unmapped
            return
        state = self.state_of(pte.ppage)
        mapping = state.find_mapping(asid, vpage)
        if mapping is not None:
            mapping.modified = True
        # A CPU write makes any instruction-cache copies stale.
        self._note_icache_write(state)

    def sync_modified(self, state: PhysPageState) -> None:
        """Fold hardware modified bits into ``cache_dirty`` (Section 4.1:
        set cache_dirty when the page-modified bit is set and the number
        of mapped bits is one)."""
        for mapping in state.mappings:
            if mapping.modified:
                mapping.modified = False
                if state.mapped.count() == 1:
                    state.cache_dirty = True
                elif state.mapped.count() > 1:
                    raise ReproError(
                        f"frame {state.ppage}: modified bit with "
                        f"{state.mapped.count()} mapped cache pages")

    def _note_icache_write(self, state: PhysPageState) -> None:
        if state.imapped.any():
            state.istale.or_with(state.imapped)
            state.imapped.clear_all()

    def _post_engine(self, state: PhysPageState) -> None:
        """Policy variant without the modified-bit shortcut: once no cache
        page is dirty, writable consistency protections must be revoked so
        the next store is trapped and re-dirties the bookkeeping."""
        if self.policy.use_modified_bit or state.cache_dirty:
            return
        for mapping in state.mappings:
            pte = self.page_table(mapping.asid).lookup(mapping.vpage)
            if pte is not None and pte.cache_prot.allows(Prot.WRITE):
                pte.cache_prot = Prot.READ
                self.machine.tlb.invalidate(mapping.asid, mapping.vpage)

    # ---- mapping entry / removal ----------------------------------------------------

    def enter(self, asid: int, vpage: int, ppage: int, vm_prot: Prot,
              access: AccessKind, *,
              reason: Reason = Reason.NEW_MAPPING) -> PageTableEntry:
        """Create a translation and run the consistency algorithm for the
        access that provoked it."""
        state = self.state_of(ppage)
        self.sync_modified(state)
        if state.uncached and not state.mappings:
            # A frame that lived its previous life uncached starts clean.
            state.uncached = False
        if self.cpolicy.wants_uncached(self, state, vpage):
            return self._enter_uncached(state, asid, vpage, ppage, vm_prot,
                                        reason)
        if state.uncached:
            # The frame's other mappings are already uncached; join them.
            state.add_mapping(asid, vpage)
            pte = self.page_table(asid).enter(vpage, ppage, vm_prot,
                                              cache_prot=Prot.READ_WRITE)
            pte.uncached = True
            state.last_vpage = vpage
            self.machine.tlb.invalidate(asid, vpage)
            return pte
        self.cpolicy.on_map(self, state, asid, vpage, access, reason)
        state.add_mapping(asid, vpage)
        pte = self.page_table(asid).enter(vpage, ppage, vm_prot,
                                          cache_prot=Prot.NONE)
        op = (MemoryOp.CPU_WRITE if access is AccessKind.WRITE
              else MemoryOp.CPU_READ)
        if op is MemoryOp.CPU_WRITE:
            self._note_icache_write(state)
        self.engine(state, op, vpage, reason=reason)
        self._post_engine(state)
        state.last_vpage = vpage
        self.machine.tlb.invalidate(asid, vpage)
        return pte

    def _needs_uncached(self, state: PhysPageState, vpage: int) -> bool:
        """Sun-style policy: an unaligned alias set turns uncached."""
        new_c = state.cache_page_of(vpage)
        return any(state.cache_page_of(m.vpage) != new_c
                   for m in state.mappings)

    def _enter_uncached(self, state: PhysPageState, asid: int, vpage: int,
                        ppage: int, vm_prot: Prot,
                        reason: Reason) -> PageTableEntry:
        """Convert every mapping of the frame to uncached access.

        Cached data is cleaned out first (the most recent version may be
        dirty in some cache page), then all translations — existing and
        new — bypass the cache, so aliasing needs no further management
        at the price of slow accesses.
        """
        if state.cache_dirty:
            w = state.find_mapped_cache_page()
            self._flush_cache_page(w, state.ppage, reason)
            state.cache_dirty = False
        for cp in set(state.mapped.indices()) | set(state.stale.indices()):
            self._purge_cache_page(cp, state.ppage, reason)
        state.mapped.clear_all()
        state.stale.clear_all()
        state.uncached = True
        self.machine.counters.pages_made_uncached += 1
        for mapping in state.mappings:
            pte = self.page_table(mapping.asid).lookup(mapping.vpage)
            if pte is not None:
                pte.uncached = True
                pte.cache_prot = Prot.READ_WRITE
                self.machine.tlb.invalidate(mapping.asid, mapping.vpage)
        state.add_mapping(asid, vpage)
        pte = self.page_table(asid).enter(vpage, ppage, vm_prot,
                                          cache_prot=Prot.READ_WRITE)
        pte.uncached = True
        state.last_vpage = vpage
        self.machine.tlb.invalidate(asid, vpage)
        return pte

    def remove(self, asid: int, vpage: int,
               reason: Reason = Reason.UNMAP_EAGER) -> int:
        """Remove a translation; returns the physical page.

        Under a lazy policy this only invalidates the TLB and page-table
        entries ("it is not necessary to purge or flush the cache of data
        when a virtual address is unmapped", Section 2.3); the page state
        persists so a later aligned reuse costs nothing.  Under an eager
        policy the page is cleaned out of the cache now.
        """
        pte = self.page_table(asid).remove(vpage)
        self.machine.tlb.invalidate(asid, vpage)
        state = self.state_of(pte.ppage)
        self.sync_modified(state)
        state.remove_mapping(asid, vpage)
        c = state.cache_page_of(vpage)
        state.last_cache_page = c
        state.last_vpage = vpage
        self.cpolicy.on_unmap(self, state, c, reason)
        return pte.ppage

    def protect(self, asid: int, vpage: int, vm_prot: Prot) -> None:
        """Change the VM protection of an installed mapping (e.g. write-
        protecting for copy-on-write)."""
        pte = self.page_table(asid).lookup(vpage)
        if pte is None:
            raise KernelError(f"protect of unmapped vpage {vpage}")
        pte.vm_prot = vm_prot
        self.machine.tlb.invalidate(asid, vpage)

    def enter_superpage(self, asid: int, base_vpage: int, base_ppage: int,
                        npages: int, vm_prot: Prot) -> None:
        """Map ``npages`` physically contiguous frames as one superpage
        region (``base_vpage + i -> base_ppage + i``).  How much alias
        management the region needs is the policy's call — VESPA installs
        it fault-free, the paper's policies manage it page by page."""
        self.cpolicy.enter_superpage(self, asid, base_vpage, base_ppage,
                                     npages, vm_prot)

    def _eager_clean(self, state: PhysPageState, cache_page: int,
                     reason: Reason) -> None:
        """The old system's unmap behaviour: "whenever a virtual to
        physical mapping is broken, the page is removed from the cache with
        a flush (if dirty) or a purge" (Section 2.5).

        The old system keeps no cache-page state, so the operation is
        unconditional — this is exactly the eagerness the lazy model
        eliminates.  (Residual state from other cache pages is still swept
        when the last mapping goes, as Utah/Apollo/Sun do.)
        """
        targets = {cache_page}
        if not state.mappings:
            targets.update(state.mapped.indices())
            targets.update(state.stale.indices())
        for cp in sorted(targets):
            if state.decode(cp) is LineState.DIRTY:
                self._flush_cache_page(cp, state.ppage, reason)
                state.cache_dirty = False
            else:
                self._purge_cache_page(cp, state.ppage, reason)
            state.mapped[cp] = False
            state.stale[cp] = False

    def _eager_break(self, state: PhysPageState, asid: int, vpage: int,
                     access: AccessKind) -> None:
        """Section 2.5's old system: a write to an aliased page breaks all
        other mappings; a read breaks any writable mapping."""
        for mapping in list(state.mappings):
            if mapping.asid == asid and mapping.vpage == vpage:
                continue
            pte = self.page_table(mapping.asid).lookup(mapping.vpage)
            writable = pte is not None and pte.effective_prot.allows(Prot.WRITE)
            if access is AccessKind.WRITE or writable:
                if pte is not None:
                    self.remove(mapping.asid, mapping.vpage,
                                reason=Reason.ALIAS_WRITE)
                else:
                    state.remove_mapping(mapping.asid, mapping.vpage)

    def _tut_clean(self, state: PhysPageState, vpage: int,
                   reason: Reason) -> None:
        """Tut keeps consistency state per *virtual address*: only reusing
        the exact previous address avoids cache operations; an aligned but
        different address still flushes the old page and purges the new
        (Section 6)."""
        if state.last_vpage is None or state.last_vpage == vpage:
            return
        old_c = state.cache_page_of(state.last_vpage)
        new_c = state.cache_page_of(vpage)
        # Dirty data must reach memory wherever it lives (it may sit at a
        # preparation window's cache page rather than the old mapping's).
        if state.cache_dirty:
            w = state.find_mapped_cache_page()
            self._flush_cache_page(w, state.ppage, reason)
            state.cache_dirty = False
            state.mapped[w] = False
        for c in sorted({old_c, new_c}):
            self._purge_cache_page(c, state.ppage, reason)
            state.mapped[c] = False
            state.stale[c] = False

    # ---- consistency faults -------------------------------------------------------

    def consistency_fault(self, asid: int, vpage: int,
                          access: AccessKind) -> None:
        """Resolve a fault caused by the consistency protection: run the
        algorithm for the attempted access and re-derive protections."""
        pte = self.page_table(asid).lookup(vpage)
        if pte is None:
            raise KernelError("consistency fault without a translation")
        state = self.state_of(pte.ppage)
        self.sync_modified(state)
        if access is AccessKind.WRITE:
            op = MemoryOp.CPU_WRITE
            reason = Reason.ALIAS_WRITE
            self._note_icache_write(state)
        else:
            op = MemoryOp.CPU_READ
            reason = Reason.ALIAS_READ
        self.cpolicy.on_alias_fault(self, state, asid, vpage, access)
        self.engine(state, op, vpage, reason=reason)
        self._post_engine(state)
        state.last_vpage = vpage

    # ---- page preparation (Section 4.1's two optimizations) -------------------------

    def _prep_cache_page(self, ppage: int, ultimate_vpage: int | None) -> int:
        """Cache page used to prepare a page.  With aligned preparation the
        kernel prepares through a window aligned with the ultimate mapping;
        otherwise through the kernel's equivalent mapping of the frame
        (whose cache page is arbitrary with respect to the eventual user
        address).  On a physically indexed cache every window lands on the
        frame's own cache page — alignment is automatic."""
        if self.machine.dcache.geo.physically_indexed:
            return ppage % self.ncp
        if self.policy.aligned_prepare and ultimate_vpage is not None:
            return self.cache_page_of(ultimate_vpage)
        return ppage % self.ncp

    def zero_fill_page(self, ppage: int,
                       ultimate_vpage: int | None = None) -> None:
        """Prepare a frame by zero-filling it through the data cache."""
        values = np.zeros(self.machine.memory.words_per_page, dtype=np.uint64)
        self._prepare(ppage, values, ultimate_vpage)
        self.machine.counters.pages_zero_filled += 1

    def copy_page(self, src_ppage: int, dst_ppage: int,
                  ultimate_vpage: int | None = None) -> None:
        """Prepare a frame by copying another frame into it via the cache."""
        values = self.read_frame(src_ppage)
        self._prepare(dst_ppage, values, ultimate_vpage)
        self.machine.counters.pages_copied += 1

    def read_frame(self, src_ppage: int) -> np.ndarray:
        """Read a frame's current contents through the data cache, honouring
        consistency (the CPU-read rules of the model)."""
        src_state = self.state_of(src_ppage)
        self.sync_modified(src_state)
        src_cp = self.cpolicy.read_window(self, src_state, src_ppage)
        self.engine(src_state, MemoryOp.CPU_READ, src_cp,
                    reason=Reason.ALIAS_READ)
        self._post_engine(src_state)
        values = self.machine.dcache.read_page(
            src_cp * self.page_size, self._pa_base(src_ppage))
        if self.machine.oracle is not None:
            self.machine.oracle.check_page_read(self._pa_base(src_ppage),
                                                values)
        return values

    def _prepare(self, ppage: int, values: np.ndarray,
                 ultimate_vpage: int | None) -> None:
        state = self.state_of(ppage)
        self.sync_modified(state)
        self._note_icache_write(state)
        if not state.mappings:
            state.uncached = False   # recycled frame starts a cached life
            state.superpage = False  # ...and an ordinary (4K-managed) one
        # The policy decides the preparation window and the semantic
        # flags: the frame is completely overwritten, so stale data in
        # the target cache page need not be purged first (will_overwrite,
        # F); the frame's old dirty data is dead, so it can be purged
        # rather than flushed (need_data=False, E).
        prep_cp, will_overwrite, need_data = self.cpolicy.prepare_plan(
            self, state, ppage, ultimate_vpage)
        self.engine(state, MemoryOp.CPU_WRITE, prep_cp,
                    will_overwrite=will_overwrite,
                    need_data=need_data,
                    reason=Reason.NEW_MAPPING)
        self.machine.dcache.write_page(prep_cp * self.page_size,
                                       self._pa_base(ppage), values)
        if self.machine.oracle is not None:
            self.machine.oracle.note_page_write(self._pa_base(ppage), values)
        self._post_engine(state)
        state.last_vpage = prep_cp

    # ---- DMA preparation (Section 2.4) -----------------------------------------------

    def prepare_dma_read(self, ppage: int) -> None:
        """Before a device reads this frame: flush any dirty cache data so
        the device sees the most recent values."""
        if self.injector is not None:
            record = self.injector.fires("pmap.dma_read_prep.skip",
                                         ppage=ppage)
            if record is not None:
                # Consequential iff memory currently lags program order:
                # the device is about to read it, so the very next
                # check_dma_read must observe the staleness.
                record.consequential = self._frame_divergent(ppage)
                return
        state = self.state_of(ppage)
        self.sync_modified(state)
        if state.uncached:
            return  # uncached stores reach memory directly; nothing to flush
        self.cpolicy.on_dma_read(self, state)

    def prepare_dma_write(self, ppage: int) -> None:
        """Before a device writes this frame: purge dirty cache data (it
        would otherwise be written back over the device's data) and mark
        every cached copy stale (it would otherwise shadow the new data)."""
        if self.injector is not None:
            record = self.injector.fires("pmap.dma_write_prep.skip",
                                         ppage=ppage)
            if record is not None:
                # Consequential when any cached trace of the frame exists:
                # a resident copy can shadow the device's data from the
                # CPU, a dirty line can be written back over it.  Latent —
                # the hazard needs a later access to materialize.
                state = self.page_states.get(ppage)
                record.consequential = bool(
                    state is not None and not state.uncached
                    and (state.cache_dirty or state.mapped.any()
                         or state.stale.any() or state.imapped.any()
                         or state.istale.any()))
                return
        state = self.state_of(ppage)
        self.sync_modified(state)
        if state.uncached:
            return  # no cached copies exist to shadow or overwrite the data
        self.cpolicy.on_dma_write(self, state)
        # Instruction-cache copies are invalidated eagerly: the icache has
        # no protection machinery of its own.
        pa = self._pa_base(ppage)
        for ic in state.imapped.indices():
            self.machine.icache.purge_page_frame(ic, pa, Reason.DMA_WRITE)
        for ic in state.istale.indices():
            self.machine.icache.purge_page_frame(ic, pa, Reason.DMA_WRITE)
        state.imapped.clear_all()
        state.istale.clear_all()

    # ---- text installation (the dual-cache alias, Section 5.1) ------------------------

    def install_text_page(self, asid: int, vpage: int, ppage: int) -> None:
        """Map a freshly prepared frame as program text.

        The preparing copy wrote the frame through the *data* cache, so the
        page "must be flushed from the data cache before it can be used"
        by instruction fetches; "the destination virtual page, unless empty
        in the instruction cache, must also be purged".
        """
        state = self.state_of(ppage)
        self.sync_modified(state)
        if state.cache_dirty:
            w = state.find_mapped_cache_page()
            if self.policy.lazy_unmap:
                reason = Reason.D_TO_I_COPY
                self.machine.counters.d_to_i_copies += 1
            else:
                # The old system unmaps (and therefore flushes) the dirty
                # page before mapping it into the faulting address space,
                # so the flush is attributed to the unmap (Section 5.1).
                reason = Reason.UNMAP_EAGER
            self._flush_cache_page(w, ppage, reason)
            state.cache_dirty = False
        state.add_mapping(asid, vpage)
        self.page_table(asid).enter(vpage, ppage, Prot.READ_EXEC,
                                    cache_prot=Prot.NONE)
        self.engine(state, MemoryOp.CPU_READ, vpage,
                    reason=Reason.NEW_MAPPING)
        self._post_engine(state)
        state.last_vpage = vpage
        # Instruction-cache side.
        ic = state.icache_page_of(vpage)
        if state.istale[ic] or state.imapped[ic]:
            self.machine.icache.purge_page_frame(ic, self._pa_base(ppage),
                                                 Reason.D_TO_I_COPY)
            state.istale[ic] = False
        state.imapped[ic] = True
        self.machine.tlb.invalidate(asid, vpage)

    # ---- frame lifecycle ---------------------------------------------------------------

    def quarantine_frame(self, ppage: int) -> None:
        """Retire a frame that keeps failing DMA transfer verification.

        Any cached trace of the frame is discarded (its contents are
        undefined junk, dead by definition) and the consistency state is
        dropped; the kernel never hands the frame out again.
        """
        state = self.page_states.get(ppage)
        if state is None:
            return
        if state.mappings:
            raise KernelError(
                f"cannot quarantine frame {ppage}: still mapped",
                ppage=ppage, mappings=len(state.mappings))
        targets = set(state.mapped.indices()) | set(state.stale.indices())
        if state.cache_dirty:
            targets.add(state.find_mapped_cache_page())
        pa = self._pa_base(ppage)
        for cp in sorted(targets):
            self.machine.dcache.purge_page_frame(cp, pa, Reason.EXPLICIT)
        for ic in set(state.imapped.indices()) | set(state.istale.indices()):
            self.machine.icache.purge_page_frame(ic, pa, Reason.EXPLICIT)
        del self.page_states[ppage]

    def frame_freed(self, ppage: int) -> int | None:
        """Called when a frame returns to the free list; returns the color
        (cache page of its last mapping) for the colored free list.

        Any remaining mappings are an error; consistency state is kept so a
        later reuse can be handled lazily.
        """
        state = self.page_states.get(ppage)
        if state is None:
            return None
        if state.mappings:
            raise KernelError(
                f"frame {ppage} freed with {len(state.mappings)} mappings")
        return state.last_cache_page
