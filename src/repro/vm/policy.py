"""Consistency-management policies: the paper's configuration ladder and
the related systems of Table 5.

Section 5 evaluates six cumulative kernel configurations:

====  ===================  =====================================================
Name  Paper label          Adds
====  ===================  =====================================================
A     (old)                eager management: break aliases, clean at unmap
B     +lazy unmap          delay flush/purge until a virtual address is reused
C     +align pages         kernel selects aligning VAs for multiply mapped pages
                           (IPC transfers, Unix-server shared pages)
D     +aligned prepare     prepare pages (copy/zero-fill) through a VA that
                           aligns with the ultimate mapping
E     +need data           purge instead of flush when old data is dead
F     +will overwrite      skip the purge when the target is fully overwritten
====  ===================  =====================================================

Table 5's systems are expressed in the same vocabulary so their behaviour
can be *measured* rather than merely asserted: CMU is configuration F;
Utah behaves like A; Tut delays unmap cleaning but keeps state per virtual
address (only an *equal* — not merely aligned — reuse avoids cache
operations) and aligns page preparation; Apollo and Sun clean the cache
whenever the last mapping is removed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PolicyConfig:
    """Flags selecting a consistency-management strategy."""

    name: str
    description: str

    # Lazy vs eager skeleton ("old" system, Section 2.5).
    lazy_unmap: bool = True          # keep state across unmap; clean at reuse
    eager_purge_stale: bool = False  # purge instead of marking stale
    eager_break_aliases: bool = False  # break other mappings on a write fault

    # Address-selection optimizations (Section 4.2).
    align_ipc: bool = False          # C: receiver VA aligns with sender's page
    align_server_pages: bool = False  # C: Unix-server shared pages align
    aligned_prepare: bool = False    # D: page prep through the ultimate VA

    # Semantic optimizations (Section 4.1).
    opt_need_data: bool = False      # E: purge dead dirty data, don't flush
    opt_will_overwrite: bool = False  # F: skip purges for full overwrites

    # Variants for the related-systems comparison and ablations.
    tut_equal_va_only: bool = False  # Tut: state per VA; only equal VA reuses
    use_modified_bit: bool = True    # Section 4.1 page-modified optimization
    colored_free_list: bool = False  # Section 5.1 multiple-free-list extension
    uncached_aliases: bool = False   # Sun: unaligned aliases bypass the cache
    global_address_space: bool = False  # Section 2.1 single-address-space model

    def derive(self, name: str, description: str, **changes) -> "PolicyConfig":
        return replace(self, name=name, description=description, **changes)


CONFIG_A = PolicyConfig(
    name="A",
    description="old: eager alias breaking, clean cache at unmap",
    lazy_unmap=False,
    eager_purge_stale=True,
    eager_break_aliases=True,
)

CONFIG_B = PolicyConfig(
    name="B",
    description="+lazy unmap: delay flush/purge until a VA is reused",
)

CONFIG_C = CONFIG_B.derive(
    "C", "+align pages: kernel selects aligning VAs for shared pages",
    align_ipc=True, align_server_pages=True,
)

CONFIG_D = CONFIG_C.derive(
    "D", "+aligned prepare: page preparation through the ultimate VA",
    aligned_prepare=True,
)

CONFIG_E = CONFIG_D.derive(
    "E", "+need data: purge rather than flush dead dirty data",
    opt_need_data=True,
)

CONFIG_F = CONFIG_E.derive(
    "F", "+will overwrite: skip purges of fully overwritten pages",
    opt_will_overwrite=True,
)

CONFIG_LADDER: tuple[PolicyConfig, ...] = (
    CONFIG_A, CONFIG_B, CONFIG_C, CONFIG_D, CONFIG_E, CONFIG_F)

OLD_SYSTEM = CONFIG_A      # the paper's "old" kernel (Table 1)
NEW_SYSTEM = CONFIG_F      # the paper's "new" kernel (Table 1)

# Section 2.1's alternative: a single global address space on top of the
# lazy skeleton.  Sharing aligns by construction, so the Section 4.2
# address-selection machinery is unnecessary; new mappings and DMA still
# require management.
CONFIG_GLOBAL = CONFIG_B.derive(
    "G", "single global address space over lazy unmap (Section 2.1)",
    global_address_space=True)

# ---- Table 5 systems -------------------------------------------------------

SYSTEM_CMU = CONFIG_F.derive(
    "CMU", "this paper: lazy, aligned, need-data, will-overwrite")

SYSTEM_UTAH = CONFIG_A.derive(
    "Utah", "Mach port: assumes a physically indexed cache; eager cleaning")

SYSTEM_TUT = PolicyConfig(
    name="Tut",
    description=("Mach VM in HP-UX: lazy unmap but state per virtual "
                 "address (only equal reuse avoids cache ops); aligned "
                 "page preparation"),
    lazy_unmap=True,
    tut_equal_va_only=True,
    aligned_prepare=True,
)

SYSTEM_APOLLO = CONFIG_A.derive(
    "Apollo", "OSF/1 port: cleans the cache when the last mapping is removed")

SYSTEM_SUN = CONFIG_A.derive(
    "Sun", "4.2 BSD on Sun-3/200: eager cleaning; unaligned aliases only in "
           "well-behaved kernel code, otherwise uncached",
    uncached_aliases=True)

TABLE5_SYSTEMS: tuple[PolicyConfig, ...] = (
    SYSTEM_CMU, SYSTEM_UTAH, SYSTEM_TUT, SYSTEM_APOLLO, SYSTEM_SUN)


def by_name(name: str) -> PolicyConfig:
    """Look up a configuration by name (A..F, G, or a Table 5 system)."""
    for config in CONFIG_LADDER + (CONFIG_GLOBAL,) + TABLE5_SYSTEMS:
        if config.name.lower() == name.lower():
            return config
    valid = ", ".join(sorted(
        (c.name for c in CONFIG_LADDER + (CONFIG_GLOBAL,) + TABLE5_SYSTEMS),
        key=str.lower))
    raise KeyError(f"unknown policy configuration {name!r}; "
                   f"valid names: {valid}")
