"""Per-address-space page tables.

A page-table entry carries two protections (see :mod:`repro.vm.prot`): the
VM protection granted by the operating system and the consistency
protection installed by the cache-control algorithm.  The hardware (the
TLB fill path) sees their intersection, with the EXEC right governed by
the VM protection alone — instruction-cache consistency is enforced
eagerly at text installation and DMA time rather than through protection
traps (Section 4.1 notes data and instruction addresses never align).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.vm.prot import Prot


@dataclass
class PageTableEntry:
    """One installed virtual-to-physical translation.

    ``uncached`` routes accesses around the cache entirely — the Sun
    system's treatment of unaligned aliases (Section 6).  ``superpage``
    marks a translation that belongs to a physically contiguous,
    index-aligned superpage region (see ``Pmap.enter_superpage``); a
    superpage-aware policy never revokes its cache protection.
    """

    ppage: int
    vm_prot: Prot
    cache_prot: Prot = Prot.READ_WRITE
    uncached: bool = False
    superpage: bool = False

    @property
    def effective_prot(self) -> Prot:
        """What the hardware enforces: the intersection of the VM and
        consistency protections, with EXEC passed through from the VM
        side."""
        return self.vm_prot & (self.cache_prot | Prot.EXEC)


class PageTable:
    """Translations for one address space (one asid)."""

    def __init__(self, asid: int):
        self.asid = asid
        self._entries: dict[int, PageTableEntry] = {}

    def lookup(self, vpage: int) -> PageTableEntry | None:
        return self._entries.get(vpage)

    def enter(self, vpage: int, ppage: int, vm_prot: Prot,
              cache_prot: Prot = Prot.READ_WRITE) -> PageTableEntry:
        if vpage in self._entries:
            raise KernelError(
                f"asid {self.asid}: vpage {vpage} already has a translation")
        pte = PageTableEntry(ppage, vm_prot, cache_prot)
        self._entries[vpage] = pte
        return pte

    def remove(self, vpage: int) -> PageTableEntry:
        try:
            return self._entries.pop(vpage)
        except KeyError:
            raise KernelError(
                f"asid {self.asid}: vpage {vpage} has no translation") from None

    def entries(self) -> dict[int, PageTableEntry]:
        return dict(self._entries)

    def __contains__(self, vpage: int) -> bool:
        return vpage in self._entries

    def __len__(self) -> int:
        return len(self._entries)
