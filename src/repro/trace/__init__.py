"""Workload->trace compiler and batched replay interpreter.

A *trace* is a workload run lowered to a flat structured-numpy op-stream
of hardware-level memory-system operations plus enough captured state to
re-execute it without the kernel: replay drives the cache/memory models
directly and reproduces bit-identical :class:`~repro.hw.stats.Counters`,
clock cycles and event traces at a fraction of the interpreted cost.

* :mod:`repro.trace.format` -- the op alphabet, the full-fidelity
  counters codec and the deterministic on-disk artifact container.
* :mod:`repro.trace.record` -- the compiler: records a live run through
  depth-guarded instrumentation and drift-reconciling SYNC ops.
* :mod:`repro.trace.interp` -- the interpreter: an exact per-op tier and
  a batched tier that fuses contiguous access runs into single
  vectorized cache transactions.
"""

from repro.trace.format import Trace, load_trace, save_trace
from repro.trace.interp import ReplayResult, replay_trace
from repro.trace.record import compile_workload, record_run

__all__ = [
    "Trace",
    "ReplayResult",
    "compile_workload",
    "load_trace",
    "record_run",
    "replay_trace",
    "save_trace",
]
