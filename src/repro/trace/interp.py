"""The trace interpreter: a threaded-code exact tier plus fused windows.

Replay rebuilds only the hardware below the kernel — physical memory, the
two caches, the clock and counters — restores the captured start images,
and executes the op-stream.  There is no TLB, page table, oracle,
injector or monitor at replay time: everything those contributed to the
clock and counters during recording is already in the stream as SYNC
deltas, and everything they contributed to memory is there as explicit
ops.  That asymmetry is the speedup.

Execution happens in two layers:

* the op-stream is first *compiled* into a threaded program — a flat list
  of instruction tuples with every operand pre-resolved (set index and
  physical line tag computed, value-stream slices taken, SYNC counter
  deltas parsed into attribute adds, flush reasons interned).  Hot
  single-line runs and SYNC deltas become specialized instructions whose
  handlers are a few scalar operations; everything else becomes a direct
  call into the very same :class:`~repro.hw.cache.Cache` methods the live
  machine uses, so equivalence there is inherited rather than argued;
* maximal windows of contiguous ``*_READ_RUN``/``*_WRITE_RUN`` (and
  interleaved ``SYNC``) ops whose set ranges are pairwise disjoint are
  fused into single vectorized cache transactions when they cover enough
  words to pay the fixed numpy cost.  Anything consistency-relevant —
  flush, purge, DMA memory writes, bus events, page ops — is a window
  boundary and always executes on the exact tier.

A window is *statically* legal when its cache is direct-mapped and
write-back and its runs touch pairwise-disjoint set ranges (SYNC deltas
are purely additive, so they commute to the window end).  It is
*dynamically* legal when, probed against the live tags, every victim
line is unique and no victim is also wanted by the window — otherwise
write-back/fill ordering between runs would matter, and the window falls
back to per-op execution of its member instructions.  The fallback is
checked before any mutation, so it is always safe.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.hw.cache import RUN_FALLBACK_WORDS, _INVALID, Cache
from repro.hw.params import WORD_SIZE, CacheGeometry, CostModel
from repro.hw.physmem import PhysicalMemory
from repro.hw.stats import Clock, Counters, FaultKind, Reason
from repro.obs.events import EventBus
from repro.trace.format import (
    COUNTER_KIND_FIELDS, COUNTER_PAIR_FIELDS, OP_BUS, OP_D_FLUSH,
    OP_D_INVAL, OP_D_PURGE, OP_D_READ_PAGE, OP_D_READ_RUN, OP_D_WRITE_PAGE,
    OP_D_WRITE_RUN, OP_D_ZERO_PAGE, OP_I_FLUSH, OP_I_INVAL, OP_I_PURGE,
    OP_I_READ_PAGE, OP_I_READ_RUN, OP_I_WRITE_PAGE, OP_I_WRITE_RUN,
    OP_I_ZERO_PAGE, OP_MEM_WRITE, OP_SYNC, REASONS, Trace, TraceFormatError,
    apply_counters_delta, diff_counters, encode_counters,
)

#: fuse a window only when it holds at least this many runs *and* covers
#: at least this many words; smaller windows execute on the exact tier
#: (the fixed per-batch numpy overhead would not pay for itself).
MIN_BATCH_RUNS = 4
MIN_BATCH_WORDS = 256

#: open a window only at a run of at least this many words.  Streams of
#: short runs (a few words between consistency ops) can never reach
#: ``MIN_BATCH_WORDS`` before a boundary closes them, so tracking window
#: state for them is pure compile-time overhead; a run this long signals
#: a bulk-copy phase where fusion has a chance to pay.
MIN_OPEN_WORDS = 16

#: opcode -> (cache index, is_write) for the batchable run ops.
_BATCHABLE = {OP_D_READ_RUN: (0, False), OP_D_WRITE_RUN: (0, True),
              OP_I_READ_RUN: (1, False), OP_I_WRITE_RUN: (1, True)}

# Threaded-program instruction codes (first element of each tuple).
# SYNC instructions appear only on the events path: without a bus, every
# instruction executes exactly once, so all SYNC effects are summed at
# compile time and applied after execution (see ``_Deferred``).
_SYNC_CLOCK = 0     # (op, clock_delta)
_SYNC_TLB = 1       # (op, clock_delta, tlb_hits)
_SYNC_DELTA = 2     # (op, clock_delta, scalar_adds, counter_adds)
_D_READ1 = 3        # (op, set, tag, n_words)
_D_WRITE1 = 4       # (op, set, tag, n_words, first_word, values_view)
_I_READ1 = 5        # (op, set, tag, n_words)
_CALL = 6           # (op, callable, args_tuple)
_BATCH = 7          # (op, _BatchItem, member_instructions)
_FLUSH = 8          # (op, pack, s0, s1, want, cell)
_PURGE = 9          # (op, pack, s0, s1, want, cell, const_cycles)
_RPAGE = 10         # (op, pack, s0, s1, want)
_WPAGE = 11         # (op, pack, s0, s1, want, values_page_view)


@dataclass
class _SubBatch:
    """One cache's share of a fused window (line-granularity arrays)."""

    cache_idx: int
    sets: np.ndarray       # unique set indices, one per line
    want: np.ndarray       # wanted physical line tags, aligned with sets
    is_write: np.ndarray   # bool per line: belongs to a write run
    lru_rel: np.ndarray    # LRU stamps relative to the cache tick at entry
    total_words: int
    words_read: int
    words_written: int
    write_slices: list     # (flat word offset into _data[0], n_words, vpos)


@dataclass
class _BatchItem:
    n_ops: int
    subs: list
    sync_clock: int
    sync_delta: dict


@dataclass
class ReplayResult:
    """Outcome of a replay, including the equivalence verdict."""

    equivalent: bool
    mismatches: list
    clock: int
    counters: Counters
    counters_state: dict
    n_ops: int
    batches: int = 0
    batched_ops: int = 0
    fallbacks: int = 0
    n_events: int = 0
    events_sha256: str | None = None
    events_jsonl: str | None = field(default=None, repr=False)
    memory: PhysicalMemory | None = field(default=None, repr=False)
    dcache: Cache | None = field(default=None, repr=False)
    icache: Cache | None = field(default=None, repr=False)


def _merge_delta(acc: dict, delta: dict, times: int = 1) -> None:
    """Additively merge ``times`` copies of a sparse counters delta."""
    for name, value in delta.items():
        if isinstance(value, dict):
            sub = acc.setdefault(name, {})
            for key, n in value.items():
                sub[key] = sub.get(key, 0) + n * times
        else:
            acc[name] = acc.get(name, 0) + value * times


@dataclass
class _Deferred:
    """Compile-time-summed effects applied once after execution.

    Without an event bus nothing observes the clock or counters between
    instructions, and every instruction executes exactly once — so the
    SYNC ops' clock and counter deltas are constants of the *program*,
    not of its execution, and the per-reason flush/purge tallies can
    accumulate in plain list cells (one per distinct reason) instead of
    hashing a ``(cache, Reason)`` key per operation.
    """

    sync_clock: int = 0
    sync_aux: dict = field(default_factory=dict)    # sidecar idx -> count
    flush_cells: dict = field(default_factory=dict)  # key -> [n, cycles]
    purge_cells: dict = field(default_factory=dict)

    def apply(self, clock: Clock, counters: Counters, sidecar) -> None:
        clock.cycles += self.sync_clock
        total: dict = {}
        for aux, times in self.sync_aux.items():
            _merge_delta(total, sidecar[aux], times)
        apply_counters_delta(counters, total)
        for (pairs, cells) in (
                ((counters.page_flushes, counters.flush_cycles),
                 self.flush_cells),
                ((counters.page_purges, counters.purge_cycles),
                 self.purge_cells)):
            count_ctr, cycle_ctr = pairs
            for key, (n, cycles) in cells.items():
                count_ctr[key] += n
                cycle_ctr[key] += cycles


def _compile_sync(counters: Counters, delta: dict):
    """Pre-parse one sidecar counters delta into instruction operands.

    Returns ``("tlb", n)`` for the overwhelmingly common pure-TLB-hit
    delta, else ``(scalar_adds, counter_adds)`` with enum keys resolved
    once instead of on every application.
    """
    if len(delta) == 1 and "tlb_hits" in delta:
        return ("tlb", delta["tlb_hits"])
    scalars = []
    ctr = []
    for name, value in delta.items():
        if name in COUNTER_PAIR_FIELDS:
            counter = getattr(counters, name)
            for key, n in value.items():
                cache, reason = key.split("|", 1)
                ctr.append((counter, (cache, Reason(reason)), n))
        elif name in COUNTER_KIND_FIELDS:
            counter = getattr(counters, name)
            for key, n in value.items():
                ctr.append((counter, FaultKind(key), n))
        else:
            scalars.append((name, value))
    return (tuple(scalars), tuple(ctr))


class _Window:
    """Accumulator for one candidate fused window during compilation."""

    __slots__ = ("members", "runs", "ivs", "ticks", "words", "syncs",
                 "n_ops")

    def __init__(self):
        self.members: list = []         # exact-tier instructions (fallback)
        # per-run shape tuples: (cache, s0, n_lines, tag0, fw, ln, is_w,
        #                        vp, rel_tick)
        self.runs: list = []
        self.ivs = ([], [])             # per cache: sorted (s0, s1) spans
        self.ticks = [0, 0]             # per cache: words so far (tick rel)
        self.words = 0
        self.syncs: list = []           # (clock_delta, sidecar_idx) pairs
        self.n_ops = 0

    def admits(self, cache_idx: int, s0: int, s1: int) -> bool:
        """True when the span is disjoint from every accepted span."""
        ivs = self.ivs[cache_idx]
        lo, hi = 0, len(ivs)
        while lo < hi:                  # bisect on span starts
            mid = (lo + hi) // 2
            if ivs[mid][0] < s0:
                lo = mid + 1
            else:
                hi = mid
        if lo > 0 and ivs[lo - 1][1] > s0:
            return False
        if lo < len(ivs) and ivs[lo][0] < s1:
            return False
        ivs.insert(lo, (s0, s1))
        return True


def _materialize(win: _Window, wpls: tuple[int, int],
                 sidecar: list) -> _BatchItem:
    """Build the vectorized arrays for a qualifying window.

    The window's SYNC ops are merged here, once per *qualifying* window,
    rather than incrementally during compilation (almost no window
    qualifies, so eager merging would be wasted work).
    """
    sync_clock = 0
    sync_delta: dict = {}
    for clock_delta, aux in win.syncs:
        sync_clock += clock_delta
        if aux >= 0:
            _merge_delta(sync_delta, sidecar[aux])
    subs = []
    for cache_idx in (0, 1):
        runs = [r for r in win.runs if r[0] == cache_idx]
        if not runs:
            continue
        sets_parts, want_parts, isw_parts, lru_parts = [], [], [], []
        wr = ww = 0
        wslices = []
        wpl = wpls[cache_idx]
        for (_, s0, n_lines, tag0, fw, ln, is_w, vp, rel_tick) in runs:
            sets_parts.append(np.arange(s0, s0 + n_lines, dtype=np.int64))
            want_parts.append(np.arange(tag0, tag0 + n_lines,
                                        dtype=np.int64))
            isw_parts.append(np.full(n_lines, is_w, dtype=bool))
            if n_lines == 1:
                counts = np.array([ln], dtype=np.int64)
            else:
                counts = np.full(n_lines, wpl, dtype=np.int64)
                counts[0] = wpl - fw
                counts[-1] = ln - counts[0] - (n_lines - 2) * wpl
            lru_parts.append(rel_tick + np.cumsum(counts))
            if is_w:
                ww += ln
                wslices.append((s0 * wpl + fw, ln, vp))
            else:
                wr += ln
        subs.append(_SubBatch(cache_idx, np.concatenate(sets_parts),
                              np.concatenate(want_parts),
                              np.concatenate(isw_parts),
                              np.concatenate(lru_parts),
                              wr + ww, wr, ww, wslices))
    return _BatchItem(win.n_ops, subs, sync_clock, sync_delta)


def _compile(rows, values, sidecar, dcache, icache, memory, clock,
             counters, bus, batched: bool):
    """Lower the op-stream into a threaded program for this machine.

    Every instruction operand is resolved against the live replay state
    (array views, bound methods, interned enum keys), so execution is a
    tight dispatch loop with no per-op parsing.  Returns ``(program,
    words_consumed)``.
    """
    geos = (dcache.geo, icache.geo)
    # The specialized single-line instructions and the fused windows both
    # assume direct-mapped write-back semantics.
    fast = tuple(g.associativity == 1 and not g.write_through for g in geos)
    line_size = tuple(g.line_size for g in geos)
    num_sets = tuple(g.num_sets for g in geos)
    wpls = tuple(g.words_per_line for g in geos)
    phys_idx = tuple(g.physically_indexed for g in geos)
    caches = (dcache, icache)
    zeros = tuple(np.zeros(g.words_per_page, dtype=np.uint64) for g in geos)
    read1_code = (_D_READ1, _I_READ1)
    lpp = tuple(g.lines_per_page for g in geos)
    # Per-cache view pack for the specialized page-granularity
    # instructions: 1-D tag/dirty views, line-shaped data and memory
    # views, lines per page, and the all-hit page access cost.
    cost = dcache.cost
    packs = tuple(
        (c._tags[0], c._dirty[0], c._data[0],
         memory._words.reshape(-1, g.words_per_line), g.lines_per_page,
         g.words_per_page * cost.cache_hit)
        for c, g in zip(caches, geos))

    sync_cache: dict[int, tuple] = {}
    prog: list = []
    win: _Window | None = None
    vpos = 0
    deferred = _Deferred()
    # Events need the clock exact at every publish, so the events path
    # keeps SYNC as in-stream instructions; otherwise SYNC is summed at
    # compile time (every instruction runs exactly once) and applied once.
    defer = bus is None
    sync_aux = deferred.sync_aux

    def close_window():
        nonlocal win
        if win is None:
            return
        if (len(win.runs) >= MIN_BATCH_RUNS
                and win.words >= MIN_BATCH_WORDS):
            prog.append((_BATCH, _materialize(win, wpls, sidecar),
                         tuple(win.members)))
        else:
            prog.extend(win.members)
        win = None

    for op, asid, va, ln, aux in rows:
        if op == OP_SYNC:
            if defer:
                deferred.sync_clock += va
                if aux >= 0:
                    sync_aux[aux] = sync_aux.get(aux, 0) + 1
                continue
            if aux < 0:
                instr = (_SYNC_CLOCK, va)
            else:
                compiled = sync_cache.get(aux)
                if compiled is None:
                    compiled = sync_cache[aux] = _compile_sync(
                        counters, sidecar[aux])
                if compiled[0] == "tlb":
                    instr = (_SYNC_TLB, va, compiled[1])
                else:
                    instr = (_SYNC_DELTA, va, compiled[0], compiled[1])
            if win is not None:
                win.members.append(instr)
                win.syncs.append((va, aux))
                win.n_ops += 1
            else:
                prog.append(instr)
            continue
        info = _BATCHABLE.get(op)
        if info is not None:
            cache_idx, is_write = info
            if fast[cache_idx]:
                ls = line_size[cache_idx]
                tag0 = aux // ls
                n_lines = (aux + (ln - 1) * WORD_SIZE) // ls - tag0 + 1
                addr = aux if phys_idx[cache_idx] else va
                s0 = (addr // ls) % num_sets[cache_idx]
                fw = (aux % ls) // WORD_SIZE
                # Exact-tier instruction for this run.
                if is_write:
                    vals = values[vpos:vpos + ln]
                    vp = vpos
                    vpos += ln
                    if n_lines == 1 and cache_idx == 0:
                        instr = (_D_WRITE1, s0, tag0, ln, fw, vals)
                    else:
                        instr = (_CALL, caches[cache_idx].write_run,
                                 (va, aux, vals))
                else:
                    vp = 0
                    if n_lines == 1:
                        instr = (read1_code[cache_idx], s0, tag0, ln)
                    else:
                        instr = (_CALL, caches[cache_idx].read_run,
                                 (va, aux, ln))
                if batched and (win is not None or ln >= MIN_OPEN_WORDS):
                    if win is None:
                        win = _Window()
                    if not win.admits(cache_idx, s0, s0 + n_lines):
                        close_window()
                        win = _Window()
                        win.admits(cache_idx, s0, s0 + n_lines)
                    win.members.append(instr)
                    win.runs.append((cache_idx, s0, n_lines, tag0, fw, ln,
                                     is_write, vp,
                                     win.ticks[cache_idx]))
                    win.ticks[cache_idx] += ln
                    win.words += ln
                    win.n_ops += 1
                else:
                    prog.append(instr)
                continue
            # Associative or write-through: generic, never fused.
            close_window()
            if is_write:
                vals = values[vpos:vpos + ln]
                vpos += ln
                prog.append((_CALL, caches[cache_idx].write_run,
                             (va, aux, vals)))
            else:
                prog.append((_CALL, caches[cache_idx].read_run,
                             (va, aux, ln)))
            continue
        # Everything below is a consistency-relevant boundary.
        close_window()
        if op == OP_MEM_WRITE:
            vals = values[vpos:vpos + ln]
            vpos += ln
            prog.append((_CALL, memory.write_words, (va, vals)))
        elif op == OP_BUS:
            if bus is not None:
                entry = sidecar[aux]
                prog.append((_CALL, partial(bus.publish, entry["k"],
                                            **entry["d"]), ()))
        elif op <= OP_D_INVAL:
            cache_idx = 0
        elif op <= OP_I_INVAL:
            cache_idx = 1
        else:
            raise TraceFormatError(f"unknown opcode {op}")
        if op == OP_MEM_WRITE or op == OP_BUS:
            continue
        cache = caches[cache_idx]
        base = op - (OP_D_READ_PAGE if cache_idx == 0 else OP_I_READ_PAGE)
        if base == 5:                                   # *_INVAL
            prog.append((_CALL, cache.invalidate_all, ()))
            continue
        if not fast[cache_idx]:
            # Associative / write-through caches take the generic methods.
            if base == 0:
                prog.append((_CALL, cache.read_page, (va, aux)))
            elif base == 1:
                vals = values[vpos:vpos + ln]
                vpos += ln
                prog.append((_CALL, cache.write_page, (va, aux, vals)))
            elif base == 2:
                prog.append((_CALL, cache.write_page,
                             (va, aux, zeros[cache_idx])))
            elif base == 3:
                prog.append((_CALL, cache.flush_page_frame,
                             (va, aux, REASONS[asid])))
            else:
                prog.append((_CALL, cache.purge_page_frame,
                             (va, aux, REASONS[asid])))
            continue
        pack = packs[cache_idx]
        want = cache._page_tags(aux)
        if base >= 3:                                   # flush / purge
            s0 = va * lpp[cache_idx]
            s1 = s0 + lpp[cache_idx]
            if bus is not None:
                # The events path must publish with exact per-op fields;
                # keep it on the cache methods.
                method = (cache.flush_page_frame if base == 3
                          else cache.purge_page_frame)
                prog.append((_CALL, method, (va, aux, REASONS[asid])))
            elif base == 3:
                key = (cache.name, REASONS[asid])
                cell = deferred.flush_cells.get(key)
                if cell is None:
                    cell = deferred.flush_cells[key] = [0, 0]
                prog.append((_FLUSH, pack, s0, s1, want, cell))
            else:
                key = (cache.name, REASONS[asid])
                cell = deferred.purge_cells.get(key)
                if cell is None:
                    cell = deferred.purge_cells[key] = [0, 0]
                const = (cache.cost.icache_purge_page
                         if cache.is_icache else -1)
                prog.append((_PURGE, pack, s0, s1, want, cell, const))
            continue
        geo = geos[cache_idx]
        addr = aux if phys_idx[cache_idx] else va
        cp = (addr // geo.page_size) % geo.num_cache_pages
        s0 = cp * lpp[cache_idx]
        s1 = s0 + lpp[cache_idx]
        if base == 0:                                   # *_READ_PAGE
            prog.append((_RPAGE, pack, s0, s1, want))
        elif base == 1:                                 # *_WRITE_PAGE
            vals = values[vpos:vpos + ln]
            vpos += ln
            prog.append((_WPAGE, pack, s0, s1, want,
                         vals.reshape(lpp[cache_idx], -1)))
        else:                                           # *_ZERO_PAGE
            prog.append((_WPAGE, pack, s0, s1, want,
                         zeros[cache_idx].reshape(lpp[cache_idx], -1)))
    close_window()
    return prog, vpos, deferred


def _execute(prog, ctx) -> tuple[int, int, int]:
    """Run a threaded program; returns (batches, batched_ops, fallbacks).

    The handlers for the specialized instructions reproduce, in scalar
    form, exactly what the equivalent :class:`Cache` word loop does to
    the tags/dirty/data/LRU arrays, the counters and the clock.

    The hot counters (hits, misses, write-backs, deferred clock cycles,
    the LRU ticks) accumulate in locals and are flushed to the live
    objects at the points where other code can observe them — before
    every ``_CALL``/``_BATCH`` (cache methods advance the clock and the
    LRU tick themselves, and on the events path a publish stamps the
    clock) and once at the end.  Counter updates are pure additions, so
    the deferral commutes with everything in between.
    """
    (ck, co, mem, caches, memory, cost, values,
     td, dyd, datd, lrud, wpl_d,
     ti, dyi, dati, lrui, wpl_i) = ctx
    dcache, icache = caches
    cost_hit = cost.cache_hit
    cost_fill = cost.line_fill
    cost_wb = cost.write_back
    fl_hit = cost.flush_line_hit
    fl_miss = cost.flush_line_miss
    pl_hit = cost.purge_line_hit
    pl_miss = cost.purge_line_miss
    batches = batched_ops = fallbacks = 0
    cyc = tlb_h = r_hit = r_miss = w_hit = w_miss = wbk = 0
    tick_d = dcache._tick
    tick_i = icache._tick
    for item in prog:
        code = item[0]
        if code == _SYNC_TLB:
            cyc += item[1]
            tlb_h += item[2]
        elif code == _D_READ1:
            _, s, tag, n = item
            old = td.item(s)
            if old == tag:
                r_hit += n
                cyc += n * cost_hit
            else:
                cyc += (n - 1) * cost_hit + cost_fill
                if old != _INVALID and dyd.item(s):
                    mem[old * wpl_d:old * wpl_d + wpl_d] = datd[s]
                    wbk += 1
                    cyc += cost_wb
                datd[s] = mem[tag * wpl_d:tag * wpl_d + wpl_d]
                td[s] = tag
                dyd[s] = False
                r_miss += 1
                r_hit += n - 1
            tick_d += n
            lrud[s] = tick_d
        elif code == _D_WRITE1:
            _, s, tag, n, fw, vals = item
            old = td.item(s)
            if old == tag:
                w_hit += n
                cyc += n * cost_hit
            else:
                cyc += (n - 1) * cost_hit + cost_fill
                if old != _INVALID and dyd.item(s):
                    mem[old * wpl_d:old * wpl_d + wpl_d] = datd[s]
                    wbk += 1
                    cyc += cost_wb
                datd[s] = mem[tag * wpl_d:tag * wpl_d + wpl_d]
                td[s] = tag
                w_miss += 1
                w_hit += n - 1
            datd[s, fw:fw + n] = vals
            dyd[s] = True
            tick_d += n
            lrud[s] = tick_d
        elif code == _SYNC_CLOCK:
            cyc += item[1]
        elif code == _CALL:
            ck.cycles += cyc
            cyc = 0
            dcache._tick = tick_d
            icache._tick = tick_i
            item[1](*item[2])
            tick_d = dcache._tick
            tick_i = icache._tick
        elif code == _I_READ1:
            _, s, tag, n = item
            old = ti.item(s)
            if old == tag:
                r_hit += n
                cyc += n * cost_hit
            else:
                cyc += (n - 1) * cost_hit + cost_fill
                if old != _INVALID and dyi.item(s):
                    mem[old * wpl_i:old * wpl_i + wpl_i] = dati[s]
                    wbk += 1
                    cyc += cost_wb
                dati[s] = mem[tag * wpl_i:tag * wpl_i + wpl_i]
                ti[s] = tag
                dyi[s] = False
                r_miss += 1
                r_hit += n - 1
            tick_i += n
            lrui[s] = tick_i
        elif code == _SYNC_DELTA:
            cyc += item[1]
            for name, v in item[2]:
                setattr(co, name, getattr(co, name) + v)
            for counter, key, v in item[3]:
                counter[key] += v
        elif code == _FLUSH:
            _, pack, s0, s1, want, cell = item
            t, dy, dat, mem2d, lpp, _page_hit = pack
            tv = t[s0:s1]
            match = tv == want
            hits = int(np.count_nonzero(match))
            cycles = hits * fl_hit + (lpp - hits) * fl_miss
            if hits:
                dyv = dy[s0:s1]
                dm = match & dyv
                nd = int(np.count_nonzero(dm))
                if nd:
                    # A physical line is unique within a set, so the
                    # scatter targets are distinct (see flush_page_frame).
                    mem2d[tv[dm]] = dat[s0:s1][dm]
                    wbk += nd
                    cycles += nd * cost_wb
                    dyv[dm] = False
                tv[match] = _INVALID
            cyc += cycles
            cell[0] += 1
            cell[1] += cycles
        elif code == _PURGE:
            _, pack, s0, s1, want, cell, const_cycles = item
            t, dy, _dat, _mem2d, lpp, _page_hit = pack
            tv = t[s0:s1]
            match = tv == want
            hits = int(np.count_nonzero(match))
            if hits:
                dy[s0:s1][match] = False
                tv[match] = _INVALID
            if const_cycles >= 0:
                cycles = const_cycles
            else:
                cycles = hits * pl_hit + (lpp - hits) * pl_miss
            cyc += cycles
            cell[0] += 1
            cell[1] += cycles
        elif code == _RPAGE:
            _, pack, s0, s1, want = item
            t, dy, dat, mem2d, lpp, page_hit = pack
            tv = t[s0:s1]
            match = tv == want
            n_miss = lpp - int(np.count_nonzero(match))
            if n_miss == 0:
                r_hit += lpp
                cyc += page_hit
            else:
                miss = ~match
                dyv = dy[s0:s1]
                victims = miss & (tv != _INVALID) & dyv
                nv = int(np.count_nonzero(victims))
                cyc += ((lpp - n_miss) * (page_hit // lpp)
                        + n_miss * cost_fill)
                if nv:
                    vt = tv[victims]
                    if nv == 1 or len(np.unique(vt)) == nv:
                        mem2d[vt] = dat[s0:s1][victims]
                    else:  # doubly-dirty aliases: last-writer-wins order
                        for i in np.flatnonzero(victims):
                            mem2d[tv.item(i)] = dat[s0 + i]
                    wbk += nv
                    cyc += nv * cost_wb
                    dyv[victims] = False
                dat[s0:s1][miss] = mem2d[want[miss]]
                tv[:] = want
                r_hit += lpp - n_miss
                r_miss += n_miss
        elif code == _WPAGE:
            _, pack, s0, s1, want, vals2d = item
            t, dy, dat, mem2d, lpp, page_hit = pack
            tv = t[s0:s1]
            dyv = dy[s0:s1]
            victims = (tv != want) & (tv != _INVALID) & dyv
            nv = int(np.count_nonzero(victims))
            cyc += page_hit
            if nv:
                vt = tv[victims]
                if nv == 1 or len(np.unique(vt)) == nv:
                    mem2d[vt] = dat[s0:s1][victims]
                else:  # doubly-dirty aliases: last-writer-wins order
                    for i in np.flatnonzero(victims):
                        mem2d[tv.item(i)] = dat[s0 + i]
                wbk += nv
                cyc += nv * cost_wb
            tv[:] = want
            dat[s0:s1] = vals2d
            dyv[:] = True
        elif code == _BATCH:
            ck.cycles += cyc
            cyc = 0
            dcache._tick = tick_d
            icache._tick = tick_i
            if _execute_batch(item[1], caches, memory, ck, co, cost,
                              values):
                batches += 1
                batched_ops += item[1].n_ops
            else:
                fallbacks += 1
                b, bo, fb = _execute(item[2], ctx)
                batches += b
                batched_ops += bo
                fallbacks += fb
            tick_d = dcache._tick
            tick_i = icache._tick
        else:  # pragma: no cover - compile emits only the codes above
            raise TraceFormatError(f"unknown instruction code {code}")
    ck.cycles += cyc
    co.tlb_hits += tlb_h
    co.read_hits += r_hit
    co.read_misses += r_miss
    co.write_hits += w_hit
    co.write_misses += w_miss
    co.write_backs += wbk
    dcache._tick = tick_d
    icache._tick = tick_i
    return batches, batched_ops, fallbacks


def _execute_batch(item: _BatchItem, caches, memory, clock, counters,
                   cost, values) -> bool:
    """Apply one fused window; returns False (touching nothing) when the
    dynamic legality probe fails and the caller must replay it exactly."""
    probes = []
    victim_parts = []
    want_parts = []
    for sub in item.subs:
        cache = caches[sub.cache_idx]
        tags = cache._tags[0][sub.sets]
        miss = tags != sub.want
        victims = miss & (tags != _INVALID) & cache._dirty[0][sub.sets]
        victim_tags = tags[victims]
        probes.append((cache, miss, victims, victim_tags))
        if victim_tags.size:
            victim_parts.append(victim_tags)
        want_parts.append(sub.want)
    if victim_parts:
        all_victims = np.concatenate(victim_parts)
        if (len(np.unique(all_victims)) != len(all_victims)
                or np.intersect1d(all_victims,
                                  np.concatenate(want_parts)).size):
            return False
    for sub, (cache, miss, victims, victim_tags) in zip(item.subs, probes):
        wpl = cache.geo.words_per_line
        data0 = cache._data[0]
        if victim_tags.size:
            memory.write_lines(victim_tags, data0[sub.sets[victims]], wpl)
        fill_sets = sub.sets[miss]
        if fill_sets.size:
            data0[fill_sets] = memory.read_lines(sub.want[miss], wpl)
        cache._tags[0][sub.sets] = sub.want
        dirty0 = cache._dirty[0]
        dirty0[fill_sets] = False
        if sub.words_written:
            dirty0[sub.sets[sub.is_write]] = True
        flat = data0.reshape(-1)
        for start, k, vp in sub.write_slices:
            flat[start:start + k] = values[vp:vp + k]
        cache._lru[0][sub.sets] = cache._tick + sub.lru_rel
        cache._tick += sub.total_words
        n_miss_read = int((miss & ~sub.is_write).sum())
        n_miss_write = int((miss & sub.is_write).sum())
        n_victims = int(victims.sum())
        counters.read_misses += n_miss_read
        counters.read_hits += sub.words_read - n_miss_read
        counters.write_misses += n_miss_write
        counters.write_hits += sub.words_written - n_miss_write
        counters.write_backs += n_victims
        clock.cycles += (sub.total_words * cost.cache_hit
                         + (n_miss_read + n_miss_write)
                         * (cost.line_fill - cost.cache_hit)
                         + n_victims * cost.write_back)
    clock.cycles += item.sync_clock
    if item.sync_delta:
        apply_counters_delta(counters, item.sync_delta)
    return True


def _restore_image(cache: Cache, image) -> None:
    cache._tags[:] = image.tags
    cache._dirty[:] = image.dirty
    cache._data[:] = image.data
    cache._lru[:] = image.lru
    cache._tick = image.tick


def replay_trace(trace: Trace, batched: bool = True) -> ReplayResult:
    """Re-execute a compiled trace and verify the equivalence contract.

    The result's ``equivalent`` flag is True iff the replayed clock,
    the full-fidelity counters state and (when the trace recorded
    events) the event JSONL hash are bit-identical to what the recorder
    captured.  ``batched=False`` disables window fusion (every op runs
    on the exact tier) — useful for isolating a fusion bug from a
    recording bug.
    """
    config = trace.config
    geo_d = CacheGeometry(**config["dcache"])
    geo_i = CacheGeometry(**config["icache"])
    cost = CostModel(**config["cost"])
    clock = Clock()
    clock.cycles = trace.start_clock
    counters = Counters()
    apply_counters_delta(counters, trace.start_counters)
    memory = PhysicalMemory(config["phys_pages"], config["page_size"])
    memory._words[:] = trace.start_memory
    dcache = Cache(geo_d, memory, cost, clock, counters, name="dcache")
    icache = Cache(geo_i, memory, cost, clock, counters, name="icache",
                   is_icache=True)
    _restore_image(dcache, trace.start_dcache)
    _restore_image(icache, trace.start_icache)

    events: list = []
    bus = None
    if trace.n_events:
        # The recording started with a fresh bus, so a fresh bus replays
        # to identical sequence numbers (and SYNC keeps the clock stamps
        # aligned).  Flush/purge events are republished by the cache code
        # itself; everything else replays as explicit BUS ops.
        bus = EventBus(clock)
        bus.enable()
        bus.subscribe(events.append)
        dcache.bus = bus
        icache.bus = bus

    # Column-wise conversion then zip: materially cheaper than a 2-D
    # tolist (which allocates one list per row before the compile loop
    # immediately unpacks and discards it).
    n_ops = len(trace.ops)
    cols = [trace.ops[name].tolist()
            for name in ("op", "asid", "va", "len", "aux")]
    rows = zip(*cols)
    prog, vpos, deferred = _compile(rows, trace.values, trace.sidecar,
                                    dcache, icache, memory, clock, counters,
                                    bus, batched)
    ctx = (clock, counters, memory._words, (dcache, icache), memory, cost,
           trace.values,
           dcache._tags[0], dcache._dirty[0], dcache._data[0],
           dcache._lru[0], geo_d.words_per_line,
           icache._tags[0], icache._dirty[0], icache._data[0],
           icache._lru[0], geo_i.words_per_line)
    batches, batched_ops, fallbacks = _execute(prog, ctx)
    deferred.apply(clock, counters, trace.sidecar)

    mismatches: list[str] = []
    if vpos != len(trace.values):
        mismatches.append(f"value stream: consumed {vpos} of "
                          f"{len(trace.values)} words")
    if clock.cycles != trace.end_clock:
        mismatches.append(f"clock: replayed {clock.cycles}, "
                          f"recorded {trace.end_clock}")
    counters_state = encode_counters(counters)
    if counters_state != trace.end_counters:
        mismatches.append("counters: replay differs by "
                          f"{diff_counters(trace.end_counters, counters_state)}")
    jsonl = sha = None
    if trace.n_events:
        jsonl = "".join(e.to_json() + "\n" for e in events)
        sha = hashlib.sha256(jsonl.encode("utf-8")).hexdigest()
        if sha != trace.end_events_sha256:
            mismatches.append(
                f"events: replayed {len(events)} events hash to {sha}, "
                f"recorded sha {trace.end_events_sha256}")
    return ReplayResult(
        equivalent=not mismatches, mismatches=mismatches,
        clock=clock.cycles, counters=counters,
        counters_state=counters_state, n_ops=n_ops,
        batches=batches, batched_ops=batched_ops, fallbacks=fallbacks,
        n_events=len(events), events_sha256=sha, events_jsonl=jsonl,
        memory=memory, dcache=dcache, icache=icache,
    )
