"""Trace format: op alphabet, counters codec, on-disk artifact container.

The op-stream is a flat structured-numpy array with fields
``(op, asid, va, len, aux)``.  Per-opcode field meaning:

===============  =====================================================
opcode           fields
===============  =====================================================
SYNC             ``va`` = clock delta, ``aux`` = sidecar index of the
                 sparse counters delta (or -1 if only the clock moved)
BUS              ``aux`` = sidecar index of ``{"k": kind, "d": detail}``
MEM_WRITE        ``va`` = physical byte address, ``len`` = word count;
                 consumes ``len`` words from the value stream
*_READ_RUN       ``va`` = vaddr, ``aux`` = paddr, ``len`` = word count
*_WRITE_RUN      as READ_RUN; consumes ``len`` values
*_READ_PAGE      ``va`` = va page base, ``aux`` = pa page base
*_WRITE_PAGE     as READ_PAGE, ``len`` = words per page; consumes them
*_ZERO_PAGE      as READ_PAGE (no values: replay regenerates zeros)
*_FLUSH/*_PURGE  ``va`` = cache page, ``aux`` = pa page base,
                 ``asid`` = index into ``REASONS``
*_INVAL          no operands (power-up purge)
===============  =====================================================

``D_*`` opcodes drive the data cache, ``I_*`` the instruction cache.
Word accesses are recorded as runs of length 1: a run of one word is
defined (and property-tested, PR 1) to be observationally equivalent to
the scalar access path, so one opcode covers both.

SYNC ops reconcile *drift*: every change to the shared clock or counters
made between recorded hardware ops (TLB accounting, fault handling,
compute time, DMA setup charges, injection recovery costs) is captured
as a delta rather than by enumerating its sources, so replay needs no
TLB, kernel, oracle or injector.

The artifact container is deliberately deterministic: a sorted-key JSON
header line followed by raw little-endian array bytes.  Compiling the
same workload twice in separate processes yields byte-identical files
(``numpy.savez`` would not: zip members carry timestamps).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.hw.params import CacheGeometry, CostModel
from repro.hw.stats import Counters, FaultKind, Reason

FORMAT_VERSION = 1
MAGIC = b"RTRACE1\n"

# ---- opcodes ---------------------------------------------------------------

OP_SYNC = 0
OP_BUS = 1
OP_MEM_WRITE = 2

OP_D_READ_RUN = 3
OP_D_WRITE_RUN = 4
OP_D_READ_PAGE = 5
OP_D_WRITE_PAGE = 6
OP_D_ZERO_PAGE = 7
OP_D_FLUSH = 8
OP_D_PURGE = 9
OP_D_INVAL = 10

OP_I_READ_RUN = 11
OP_I_WRITE_RUN = 12
OP_I_READ_PAGE = 13
OP_I_WRITE_PAGE = 14
OP_I_ZERO_PAGE = 15
OP_I_FLUSH = 16
OP_I_PURGE = 17
OP_I_INVAL = 18

OP_NAMES = {
    OP_SYNC: "SYNC", OP_BUS: "BUS", OP_MEM_WRITE: "MEM_WRITE",
    OP_D_READ_RUN: "D_READ_RUN", OP_D_WRITE_RUN: "D_WRITE_RUN",
    OP_D_READ_PAGE: "D_READ_PAGE", OP_D_WRITE_PAGE: "D_WRITE_PAGE",
    OP_D_ZERO_PAGE: "D_ZERO_PAGE", OP_D_FLUSH: "D_FLUSH",
    OP_D_PURGE: "D_PURGE", OP_D_INVAL: "D_INVAL",
    OP_I_READ_RUN: "I_READ_RUN", OP_I_WRITE_RUN: "I_WRITE_RUN",
    OP_I_READ_PAGE: "I_READ_PAGE", OP_I_WRITE_PAGE: "I_WRITE_PAGE",
    OP_I_ZERO_PAGE: "I_ZERO_PAGE", OP_I_FLUSH: "I_FLUSH",
    OP_I_PURGE: "I_PURGE", OP_I_INVAL: "I_INVAL",
}

OP_DTYPE = np.dtype([("op", np.int16), ("asid", np.int32),
                     ("va", np.int64), ("len", np.int64),
                     ("aux", np.int64)])

# Flush/purge reasons are encoded by index into this tuple; enum member
# order is part of the format (append-only).
REASONS = tuple(Reason)
REASON_INDEX = {reason: i for i, reason in enumerate(REASONS)}


class TraceFormatError(ReproError):
    """The artifact is not a trace this build can replay."""


# ---- full-fidelity counters codec ------------------------------------------
#
# Counters.snapshot() flattens the per-(cache, reason) attribution into
# totals, which is fine for tables but lossy for replay: restoring from a
# snapshot would collapse the Section 5.1 reason breakdown.  This codec
# round-trips every field exactly.

COUNTER_SCALARS = (
    "read_hits", "read_misses", "write_hits", "write_misses", "write_backs",
    "tlb_hits", "tlb_misses", "dma_reads", "dma_writes", "d_to_i_copies",
    "ipc_page_moves", "pages_zero_filled", "pages_copied",
    "pages_made_uncached", "disk_retries", "tlb_parity_recoveries",
    "frames_quarantined",
)
COUNTER_PAIR_FIELDS = ("page_flushes", "page_purges",
                       "flush_cycles", "purge_cycles")   # (cache, Reason) -> n
COUNTER_KIND_FIELDS = ("faults", "fault_cycles")          # FaultKind -> n


def encode_counters(counters: Counters) -> dict:
    """Lossless, JSON-able image of a :class:`Counters` instance."""
    state: dict = {name: getattr(counters, name) for name in COUNTER_SCALARS}
    for name in COUNTER_PAIR_FIELDS:
        state[name] = {f"{cache}|{reason.value}": n
                       for (cache, reason), n in getattr(counters, name).items()
                       if n}
    for name in COUNTER_KIND_FIELDS:
        state[name] = {kind.value: n
                       for kind, n in getattr(counters, name).items() if n}
    return state


def decode_counters(state: dict) -> Counters:
    """Rebuild a :class:`Counters` from :func:`encode_counters` output."""
    counters = Counters()
    apply_counters_delta(counters, state)
    return counters


def diff_counters(before: dict, after: dict) -> dict:
    """Sparse delta such that ``before + delta == after`` (all-additive)."""
    delta: dict = {}
    for name in COUNTER_SCALARS:
        d = after[name] - before[name]
        if d:
            delta[name] = d
    for name in COUNTER_PAIR_FIELDS + COUNTER_KIND_FIELDS:
        b, a = before[name], after[name]
        sub = {key: a.get(key, 0) - b.get(key, 0)
               for key in set(a) | set(b)
               if a.get(key, 0) != b.get(key, 0)}
        if sub:
            delta[name] = sub
    return delta


def apply_counters_delta(counters: Counters, delta: dict) -> None:
    """Add a :func:`diff_counters` delta (or a full encoded state) in place."""
    for name, value in delta.items():
        if name in COUNTER_PAIR_FIELDS:
            counter = getattr(counters, name)
            for key, n in value.items():
                cache, reason = key.split("|", 1)
                counter[(cache, Reason(reason))] += n
        elif name in COUNTER_KIND_FIELDS:
            counter = getattr(counters, name)
            for key, n in value.items():
                counter[FaultKind(key)] += n
        else:
            setattr(counters, name, getattr(counters, name) + value)


# ---- machine-config codec ---------------------------------------------------

def encode_geometry(geo: CacheGeometry) -> dict:
    return {"size": geo.size, "line_size": geo.line_size,
            "page_size": geo.page_size, "associativity": geo.associativity,
            "physically_indexed": geo.physically_indexed,
            "write_through": geo.write_through}


def encode_cost(cost: CostModel) -> dict:
    from dataclasses import asdict
    return asdict(cost)


# ---- the trace --------------------------------------------------------------

@dataclass
class CacheImage:
    """Captured state of one cache at the start of the recorded window."""

    tags: np.ndarray     # (ways, sets) int64
    dirty: np.ndarray    # (ways, sets) bool
    data: np.ndarray     # (ways, sets, words_per_line) uint64
    lru: np.ndarray      # (ways, sets) int64
    tick: int


@dataclass
class Trace:
    """A compiled workload run.

    ``ops``/``values``/``sidecar`` are the program; the ``start_*``
    fields are the machine image it executes against; ``end_clock`` /
    ``end_counters`` / ``end_events_sha256`` are the expected outcome the
    replayer verifies against (the equivalence gate).
    """

    meta: dict                   # workload/policy/scale/seed/inject/conform
    config: dict                 # dcache/icache geometry, cost model, sizes
    ops: np.ndarray              # OP_DTYPE
    values: np.ndarray           # uint64 word stream consumed by write ops
    sidecar: list                # JSON-able entries referenced by ``aux``
    start_memory: np.ndarray     # uint64 physical memory words
    start_dcache: CacheImage
    start_icache: CacheImage
    start_clock: int
    start_counters: dict         # encode_counters image
    end_clock: int
    end_counters: dict
    n_events: int = 0
    end_events_sha256: str | None = None
    events_jsonl: str | None = field(default=None, repr=False)  # not persisted

    @property
    def op_histogram(self) -> dict:
        kinds, counts = np.unique(self.ops["op"], return_counts=True)
        return {OP_NAMES[int(k)]: int(n) for k, n in zip(kinds, counts)}


def _cache_arrays(prefix: str, image: CacheImage) -> list[tuple[str, np.ndarray]]:
    return [(f"{prefix}_tags", image.tags),
            (f"{prefix}_dirty", image.dirty.astype(np.uint8)),
            (f"{prefix}_data", image.data),
            (f"{prefix}_lru", image.lru)]


def save_trace(path: str, trace: Trace) -> None:
    """Serialize deterministically: same trace -> same bytes, always."""
    arrays = ([("ops", trace.ops), ("values", trace.values),
               ("memory", trace.start_memory)]
              + _cache_arrays("dcache", trace.start_dcache)
              + _cache_arrays("icache", trace.start_icache))
    sidecar_bytes = json.dumps(trace.sidecar, sort_keys=True,
                               separators=(",", ":")).encode("utf-8")
    header = {
        "format": FORMAT_VERSION,
        "meta": trace.meta,
        "config": trace.config,
        "start": {"clock": trace.start_clock,
                  "counters": trace.start_counters,
                  "tick_d": trace.start_dcache.tick,
                  "tick_i": trace.start_icache.tick},
        "end": {"clock": trace.end_clock,
                "counters": trace.end_counters,
                "events": trace.n_events,
                "events_sha256": trace.end_events_sha256},
        "arrays": [{"name": name, "shape": list(arr.shape)}
                   for name, arr in arrays],
        "sidecar_bytes": len(sidecar_bytes),
    }
    buf = io.BytesIO()
    buf.write(MAGIC)
    buf.write(json.dumps(header, sort_keys=True,
                         separators=(",", ":")).encode("utf-8"))
    buf.write(b"\n")
    for _, arr in arrays:
        buf.write(np.ascontiguousarray(arr).tobytes())
    buf.write(sidecar_bytes)
    with open(path, "wb") as f:
        f.write(buf.getvalue())


_ARRAY_DTYPES = {
    "ops": OP_DTYPE, "values": np.uint64, "memory": np.uint64,
    "dcache_tags": np.int64, "dcache_dirty": np.uint8,
    "dcache_data": np.uint64, "dcache_lru": np.int64,
    "icache_tags": np.int64, "icache_dirty": np.uint8,
    "icache_data": np.uint64, "icache_lru": np.int64,
}


def load_trace(path: str) -> Trace:
    with open(path, "rb") as f:
        blob = f.read()
    if not blob.startswith(MAGIC):
        raise TraceFormatError(f"{path} is not a trace artifact")
    nl = blob.index(b"\n", len(MAGIC))
    header = json.loads(blob[len(MAGIC):nl].decode("utf-8"))
    if header.get("format") != FORMAT_VERSION:
        raise TraceFormatError(
            f"trace format {header.get('format')} unsupported "
            f"(this build reads {FORMAT_VERSION})")
    offset = nl + 1
    arrays = {}
    for spec in header["arrays"]:
        name, shape = spec["name"], tuple(spec["shape"])
        dtype = np.dtype(_ARRAY_DTYPES[name])
        nbytes = dtype.itemsize * int(np.prod(shape)) if shape else dtype.itemsize
        arr = np.frombuffer(blob, dtype=dtype, count=int(np.prod(shape)),
                            offset=offset).reshape(shape)
        arrays[name] = arr
        offset += nbytes
    sidecar = json.loads(blob[offset:offset + header["sidecar_bytes"]]
                         .decode("utf-8"))

    def image(prefix: str, tick: int) -> CacheImage:
        return CacheImage(tags=arrays[f"{prefix}_tags"].copy(),
                          dirty=arrays[f"{prefix}_dirty"].astype(bool),
                          data=arrays[f"{prefix}_data"].copy(),
                          lru=arrays[f"{prefix}_lru"].copy(),
                          tick=tick)

    start, end = header["start"], header["end"]
    return Trace(
        meta=header["meta"], config=header["config"],
        ops=arrays["ops"], values=arrays["values"], sidecar=sidecar,
        start_memory=arrays["memory"],
        start_dcache=image("dcache", start["tick_d"]),
        start_icache=image("icache", start["tick_i"]),
        start_clock=start["clock"], start_counters=start["counters"],
        end_clock=end["clock"], end_counters=end["counters"],
        n_events=end["events"], end_events_sha256=end["events_sha256"],
    )
