"""The trace compiler: record a live workload run as a flat op-stream.

Recording is *observation only*: the run executes through the normal
kernel/machine paths and must produce exactly the counters, clock and
events it would without the recorder (asserted by the round-trip
property tests).  The recorder wraps the depth-0 entry points of the two
caches, physical memory's mutators and the event bus with instance
attributes; a shared reentrancy depth guard suppresses inner calls
(``zero_page`` -> ``write_page``, ``read_run``'s word-loop fallback ->
``read``), so each hardware transaction is recorded exactly once, at the
granularity the machine-dependent layer issued it.

Everything else the system does to the shared clock and counters between
recorded ops — TLB accounting, fault handling, DMA setup charges,
compute time, injection recovery — is reconciled by SYNC deltas emitted
lazily before the next op.  This is what makes the compiler total: it
needs no model of the kernel, only of drift.

Attachment order matters when composing with the conformance monitor:
the recorder attaches *first* (innermost), the monitor second, and they
detach in reverse, because both restore the exact attributes they saved.
The monitor's judgments then run outside the recorder's depth guard, so
its divergence events are recorded (and replayed) like any other.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.hw.machine import Machine
from repro.hw.stats import Reason
from repro.trace.format import (
    OP_BUS, OP_D_FLUSH, OP_D_INVAL, OP_D_PURGE, OP_D_READ_PAGE,
    OP_D_READ_RUN, OP_D_WRITE_PAGE, OP_D_WRITE_RUN, OP_D_ZERO_PAGE,
    OP_I_FLUSH, OP_I_INVAL, OP_I_PURGE, OP_I_READ_PAGE, OP_I_READ_RUN,
    OP_I_WRITE_PAGE, OP_I_WRITE_RUN, OP_I_ZERO_PAGE, OP_MEM_WRITE,
    OP_SYNC, OP_DTYPE, REASON_INDEX, CacheImage, Trace, diff_counters,
    encode_cost, encode_counters, encode_geometry,
)

#: the cache entry points recorded at depth 0 (management + data ops).
_CACHE_METHODS = ("read", "write", "read_run", "write_run", "read_page",
                  "write_page", "zero_page", "flush_page_frame",
                  "purge_page_frame", "invalidate_all")
#: physical-memory mutators reachable at depth 0 (DMA deliveries and
#: uncached stores); reads need no recording and ``write_line`` /
#: ``zero_page`` have no depth-0 callers.
_MEMORY_METHODS = ("write_word", "write_words", "write_page")


def capture_cache_image(cache) -> CacheImage:
    return CacheImage(tags=cache._tags.copy(), dirty=cache._dirty.copy(),
                      data=cache._data.copy(), lru=cache._lru.copy(),
                      tick=cache._tick)


class TraceRecorder:
    """Records every depth-0 hardware transaction of a machine."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.clock = machine.clock
        self.counters = machine.counters
        self._depth = 0
        self._ops: list[tuple] = []
        self._values: list = []          # ints and uint64 arrays, in op order
        self._sidecar: list = []
        self._sidecar_index: dict[str, int] = {}
        self._originals: list[tuple[object, str, object]] = []
        self._clock_mark = 0
        self._counters_mark: dict = {}
        self._attached = False

    # ---- drift reconciliation ------------------------------------------------

    def _sidecar_ref(self, entry) -> int:
        """Intern a sidecar entry; identical entries share one slot."""
        key = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        idx = self._sidecar_index.get(key)
        if idx is None:
            idx = len(self._sidecar)
            self._sidecar.append(entry)
            self._sidecar_index[key] = idx
        return idx

    def _pre_op(self) -> None:
        """Emit a SYNC for any clock/counter drift since the last op."""
        clock_now = self.clock.cycles
        state_now = encode_counters(self.counters)
        if clock_now == self._clock_mark and state_now == self._counters_mark:
            return
        delta = diff_counters(self._counters_mark, state_now)
        aux = self._sidecar_ref(delta) if delta else -1
        self._ops.append((OP_SYNC, 0, clock_now - self._clock_mark, 0, aux))
        self._clock_mark = clock_now
        self._counters_mark = state_now

    def _post_op(self) -> None:
        self._clock_mark = self.clock.cycles
        self._counters_mark = encode_counters(self.counters)

    # ---- wrapping -------------------------------------------------------------

    def _wrap(self, obj, name: str, emit) -> None:
        orig = getattr(obj, name)
        self._originals.append((obj, name, orig))

        def wrapper(*args, **kwargs):
            if self._depth:
                return orig(*args, **kwargs)
            self._pre_op()
            emit(*args, **kwargs)
            self._depth += 1
            try:
                return orig(*args, **kwargs)
            finally:
                self._depth -= 1
                self._post_op()

        setattr(obj, name, wrapper)

    def _emit(self, op: int, asid: int = 0, va: int = 0, length: int = 0,
              aux: int = 0) -> None:
        self._ops.append((op, asid, int(va), int(length), int(aux)))

    def _wrap_cache(self, cache, base: dict) -> None:
        emitters = {
            "read": lambda va, pa: self._emit(base["run_r"], va=va,
                                              length=1, aux=pa),
            "read_run": lambda va, pa, n: self._emit(base["run_r"], va=va,
                                                     length=n, aux=pa),
            "write": lambda va, pa, value: (
                self._emit(base["run_w"], va=va, length=1, aux=pa),
                self._values.append(int(np.uint64(value)))),
            "write_run": lambda va, pa, values: (
                self._emit(base["run_w"], va=va, length=len(values), aux=pa),
                self._values.append(np.array(values, dtype=np.uint64))),
            "read_page": lambda va, pa: self._emit(base["page_r"], va=va,
                                                   aux=pa),
            "write_page": lambda va, pa, values: (
                self._emit(base["page_w"], va=va, length=len(values), aux=pa),
                self._values.append(np.array(values, dtype=np.uint64))),
            "zero_page": lambda va, pa: self._emit(base["page_z"], va=va,
                                                   aux=pa),
            "flush_page_frame": lambda cp, pa, reason=Reason.EXPLICIT:
                self._emit(base["flush"], asid=REASON_INDEX[reason],
                           va=cp, aux=pa),
            "purge_page_frame": lambda cp, pa, reason=Reason.EXPLICIT:
                self._emit(base["purge"], asid=REASON_INDEX[reason],
                           va=cp, aux=pa),
            "invalidate_all": lambda: self._emit(base["inval"]),
        }
        for name in _CACHE_METHODS:
            self._wrap(cache, name, emitters[name])

    def attach(self) -> "TraceRecorder":
        if self._attached:
            return self
        machine = self.machine
        self._clock_mark = self.clock.cycles
        self._counters_mark = encode_counters(self.counters)
        self._wrap_cache(machine.dcache, {
            "run_r": OP_D_READ_RUN, "run_w": OP_D_WRITE_RUN,
            "page_r": OP_D_READ_PAGE, "page_w": OP_D_WRITE_PAGE,
            "page_z": OP_D_ZERO_PAGE, "flush": OP_D_FLUSH,
            "purge": OP_D_PURGE, "inval": OP_D_INVAL})
        self._wrap_cache(machine.icache, {
            "run_r": OP_I_READ_RUN, "run_w": OP_I_WRITE_RUN,
            "page_r": OP_I_READ_PAGE, "page_w": OP_I_WRITE_PAGE,
            "page_z": OP_I_ZERO_PAGE, "flush": OP_I_FLUSH,
            "purge": OP_I_PURGE, "inval": OP_I_INVAL})

        memory = machine.memory
        page_size = memory.page_size
        mem_emitters = {
            "write_word": lambda pa, value: (
                self._emit(OP_MEM_WRITE, va=pa, length=1),
                self._values.append(int(np.uint64(value)))),
            "write_words": lambda pa, values: (
                self._emit(OP_MEM_WRITE, va=pa, length=len(values)),
                self._values.append(np.array(values, dtype=np.uint64))),
            "write_page": lambda ppage, values: (
                self._emit(OP_MEM_WRITE, va=ppage * page_size,
                           length=len(values)),
                self._values.append(np.array(values, dtype=np.uint64))),
        }
        for name in _MEMORY_METHODS:
            self._wrap(memory, name, mem_emitters[name])

        bus = machine.bus
        self._originals.append((bus, "tap", bus.tap))
        bus.tap = self._on_publish
        self._attached = True
        return self

    def _on_publish(self, kind: str, detail: dict) -> None:
        """Bus tap: record depth-0 publishes as explicit BUS ops.

        Publishes from inside a recorded cache operation (flush/purge
        events) are skipped — the replayed operation republishes them
        itself, at the same clock and sequence position.  Publication
        moves neither clock nor counters, so no post-op remark is needed.
        """
        if self._depth:
            return
        self._pre_op()
        # Round-trip the detail through JSON now: the replayed event then
        # renders to the same JSONL bytes (Event.to_json applies
        # default=str to the same leaves).
        jsonable = json.loads(json.dumps(detail, default=str))
        self._emit(OP_BUS, aux=self._sidecar_ref({"k": kind, "d": jsonable}))

    def detach(self) -> None:
        if not self._attached:
            return
        for obj, name, orig in reversed(self._originals):
            setattr(obj, name, orig)
        self._originals.clear()
        self._attached = False

    # ---- assembly -------------------------------------------------------------

    def finish(self) -> tuple[np.ndarray, np.ndarray, list]:
        """Emit the trailing drift SYNC and build the final arrays."""
        self._pre_op()
        ops = np.array(self._ops, dtype=OP_DTYPE)
        if self._values:
            parts = [np.atleast_1d(np.asarray(v, dtype=np.uint64))
                     for v in self._values]
            values = np.concatenate(parts)
        else:
            values = np.zeros(0, dtype=np.uint64)
        return ops, values, self._sidecar


def record_run(workload, kernel, trace_events: bool = False,
               meta: dict | None = None, monitor=None) -> Trace:
    """Record ``workload.execute(kernel)`` (setup must already have run).

    Mirrors the :func:`~repro.analysis.experiments.run_workload`
    measurement protocol: the recorded window is exactly the execute
    phase, so the trace's end-minus-start counters equal the metrics of
    an interpreted run.  With ``trace_events`` the bus is enabled for the
    window and the captured JSONL becomes part of the equivalence
    contract (its hash is stored; replay must reproduce it bit for bit).
    An unattached :class:`ConformanceMonitor` may be passed in; it is
    attached outside the recorder (see the module docstring on ordering).
    """
    machine = kernel.machine
    events: list = []
    if trace_events:
        machine.bus.enable()
        machine.bus.subscribe(events.append)

    start_memory = machine.memory._words.copy()
    start_dcache = capture_cache_image(machine.dcache)
    start_icache = capture_cache_image(machine.icache)
    start_clock = machine.clock.cycles
    start_counters = encode_counters(machine.counters)

    recorder = TraceRecorder(machine).attach()
    if monitor is not None:
        monitor.attach()
    try:
        workload.execute(kernel)
    finally:
        if monitor is not None:
            monitor.detach()
        recorder.detach()
        if trace_events:
            machine.bus.unsubscribe(events.append)
            machine.bus.disable()
    ops, values, sidecar = recorder.finish()

    jsonl = sha = None
    if trace_events:
        jsonl = "".join(e.to_json() + "\n" for e in events)
        sha = hashlib.sha256(jsonl.encode("utf-8")).hexdigest()

    config = machine.config
    return Trace(
        meta=dict(meta or {}, workload=workload.name),
        config={"dcache": encode_geometry(config.dcache),
                "icache": encode_geometry(config.icache),
                "cost": encode_cost(config.cost),
                "phys_pages": config.phys_pages,
                "page_size": config.page_size},
        ops=ops, values=values, sidecar=sidecar,
        start_memory=start_memory, start_dcache=start_dcache,
        start_icache=start_icache, start_clock=start_clock,
        start_counters=start_counters,
        end_clock=machine.clock.cycles,
        end_counters=encode_counters(machine.counters),
        n_events=len(events), end_events_sha256=sha, events_jsonl=jsonl,
    )


def compile_workload(workload, policy, config=None, buffer_cache_pages=48,
                     inject: str | None = None, seed: int = 0,
                     conform: bool = False,
                     trace_events: bool = False) -> Trace:
    """Build a kernel, run ``workload`` on it and compile the run.

    Composition happens here, at compile time: an injection plan arms the
    fault injector (its effects — dropped or duplicated flushes, parity
    recoveries, DMA retries — are baked into the recorded stream), and
    ``conform`` shadows the run with the lockstep monitor (its divergence
    events are recorded like any others).  Replay needs neither: a trace
    replays below the level where kernels, injectors and monitors exist.
    """
    from repro.analysis.experiments import evaluation_machine
    from repro.errors import ConfigurationError
    from repro.kernel.kernel import Kernel
    from repro.policy import resolve

    policy = resolve(policy)
    if policy.origin == "external":
        # Replay recomputes flush/purge costs from the encoded geometry
        # and cost model alone; an external strategy's hook behaviour
        # (exact-cost management, out-of-band lookup charges, superpage
        # short-circuits) lives in the kernel, which replay bypasses.
        raise ConfigurationError(
            f"trace compilation supports only the paper's flag-bag "
            f"policies; {policy.name!r} is an external strategy the "
            f"replay interpreter cannot reconstruct")
    if config is None:
        config = evaluation_machine()
    if config.has_hierarchy:
        # Replay rebuilds bare L1s from the encoded geometries; a victim
        # cache or L2 would change fill costs the artifact cannot carry.
        # (Set-associative and write-through L1s are fine: the encoded
        # geometry reconstructs them, via the exact interpreter tier.)
        raise ConfigurationError(
            "trace compilation does not support victim-cache or L2 "
            "geometries; record on a bare L1 or run the live simulator")
    kernel = Kernel(policy=policy, config=config,
                    buffer_cache_pages=buffer_cache_pages)
    workload.setup(kernel)

    injector = None
    if inject:
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan.parse(inject, seed=seed)
        injector = FaultInjector(plan, kernel.machine.clock)
        injector.attach_kernel(kernel)

    monitor = None
    if conform:
        from repro.conformance import ConformanceMonitor

        monitor = ConformanceMonitor(kernel,
                                     record_only=injector is not None)

    meta = {"policy": getattr(policy, "name", str(policy)),
            "inject": inject, "seed": seed if inject else None,
            "conform": bool(conform), "events": bool(trace_events)}
    trace = record_run(workload, kernel, trace_events=trace_events,
                       meta=meta, monitor=monitor)
    if monitor is not None:
        trace.meta["divergences"] = len(monitor.divergences)
    return trace
