"""Superpage-aware VIPT consistency management (VESPA, arXiv 1701.03499).

On a virtually indexed cache the synonym problem exists because the
index bits above the page offset come from the *virtual* address.  A
superpage mapping — a physically contiguous, index-aligned run of frames
mapped to an equally contiguous virtual run — pins those bits: for every
page of the region ``vpage % num_cache_pages == ppage % num_cache_pages``,
so the cache index is physically determined and **no synonym can ever
exist** for a superpage-backed frame.  VESPA exploits exactly this to
drop alias management on superpage regions:

* :meth:`enter_superpage` installs the translations with the cache
  protection permanently ``READ_WRITE`` and **does not run the
  consistency engine** — there is nothing for it to do, no alias can
  appear, and no consistency fault is ever taken on the region;
* DMA input (:meth:`on_dma_write`) purges the frame's one possible cache
  page *eagerly* instead of marking it stale and revoking protections —
  the lazy machinery exists to catch the *next* aliased access, and a
  superpage region has none to catch.

Outside superpage regions the policy is exactly configuration F, so the
strategy composes with everything else the kernel does.  The Table 2
conformance monitor needs **no waivers** for VESPA: the eager DMA purge
is an observable cache operation the model folds in, after which the
model demands nothing the implementation skipped.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.hw.stats import Reason
from repro.policy.base import ConsistencyPolicy
from repro.vm.policy import CONFIG_F
from repro.vm.prot import Prot


class VespaPolicy(ConsistencyPolicy):
    """Configuration F plus alias-free superpage regions."""

    def __init__(self):
        super().__init__(
            CONFIG_F.derive(
                "vespa",
                "F + superpage-aware VIPT: no alias management on "
                "superpage regions (arXiv 1701.03499)"),
            origin="external")

    def enter_superpage(self, pmap, asid: int, base_vpage: int,
                        base_ppage: int, npages: int, vm_prot) -> None:
        ncp = pmap.ncp
        if base_vpage % ncp != base_ppage % ncp:
            raise KernelError(
                "vespa superpage requires index-aligned bases",
                base_vpage=base_vpage, base_ppage=base_ppage)
        for i in range(npages):
            vpage, ppage = base_vpage + i, base_ppage + i
            state = pmap.state_of(ppage)
            pmap.sync_modified(state)
            state.superpage = True
            state.add_mapping(asid, vpage)
            # The frame was just prepared through its (physically
            # determined) cache page; record that residency and install
            # the translation with full cache protection — it will never
            # be revoked, so the region takes zero consistency faults.
            state.mapped[ppage % ncp] = True
            pte = pmap.page_table(asid).enter(vpage, ppage, vm_prot,
                                              cache_prot=Prot.READ_WRITE)
            pte.superpage = True
            state.last_vpage = vpage
            pmap.machine.tlb.invalidate(asid, vpage)

    def on_dma_write(self, pmap, state) -> None:
        if not state.superpage:
            return super().on_dma_write(pmap, state)
        # The frame can only ever live at one cache page.  Purge it now
        # (device data must not be shadowed by, or overwritten with, a
        # cached copy) and keep the translations writable: with no
        # synonyms possible there is no reason to take a fault later.
        cp = state.ppage % pmap.ncp
        pmap._purge_cache_page(cp, state.ppage, Reason.DMA_WRITE)
        state.mapped.clear_all()
        state.stale.clear_all()
        # PRESENT, not EMPTY: the next access refills from memory, and
        # keeping the residency bit lets the modified-bit shortcut fold
        # later stores into cache_dirty (exactly as a flush would).
        state.mapped[cp] = True
        state.cache_dirty = False
