"""The policy registry: every named consistency strategy, one namespace.

``--policy NAME`` anywhere in the CLI, the farm, the chaos harness, the
serve cohorts and the sweeps resolves through :func:`get_policy`, so an
external strategy registered here is immediately first-class everywhere
a paper configuration is.  Names are case-insensitive (matching the
long-standing behaviour of :func:`repro.vm.policy.by_name`), duplicates
are rejected at registration time, and an unknown name reports the full
sorted list of valid names.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.policy.base import ConsistencyPolicy
from repro.policy.rlt import ReverseLookupPolicy
from repro.policy.vespa import VespaPolicy
from repro.vm.policy import (CONFIG_GLOBAL, CONFIG_LADDER, PolicyConfig,
                             TABLE5_SYSTEMS)

_REGISTRY: dict[str, ConsistencyPolicy] = {}
_ORDER: list[ConsistencyPolicy] = []


def register(policy: ConsistencyPolicy) -> ConsistencyPolicy:
    """Add a policy to the registry; duplicate names are an error."""
    key = policy.name.lower()
    if key in _REGISTRY:
        raise ConfigurationError(
            f"policy name {policy.name!r} is already registered "
            f"(names are case-insensitive)")
    _REGISTRY[key] = policy
    _ORDER.append(policy)
    return policy


def get_policy(name: str) -> ConsistencyPolicy:
    """Look up a registered policy by (case-insensitive) name."""
    policy = _REGISTRY.get(name.lower())
    if policy is None:
        valid = ", ".join(sorted((p.name for p in _ORDER), key=str.lower))
        raise KeyError(f"unknown policy {name!r}; valid names: {valid}")
    return policy


def all_policies() -> tuple[ConsistencyPolicy, ...]:
    """Every registered policy, in registration order (ladder first)."""
    return tuple(_ORDER)


def resolve(spec) -> ConsistencyPolicy:
    """Normalize any accepted policy spec to a :class:`ConsistencyPolicy`.

    * a ``ConsistencyPolicy`` passes through;
    * a ``str`` resolves via :func:`get_policy`;
    * a bare :class:`PolicyConfig` (the seed-era API) is wrapped in a
      default policy, whose hooks are exactly the legacy flag behaviour.
    """
    if isinstance(spec, ConsistencyPolicy):
        return spec
    if isinstance(spec, str):
        return get_policy(spec)
    if isinstance(spec, PolicyConfig):
        return ConsistencyPolicy(spec)
    raise TypeError(f"cannot resolve {spec!r} to a consistency policy")


# ---- the built-in strategies ------------------------------------------------

for _config in CONFIG_LADDER + (CONFIG_GLOBAL,):
    register(ConsistencyPolicy(_config, origin="paper"))
for _config in TABLE5_SYSTEMS:
    register(ConsistencyPolicy(_config, origin="table5"))
register(ReverseLookupPolicy())
register(VespaPolicy())
del _config
