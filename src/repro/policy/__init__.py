"""Pluggable consistency policies: the paper's ladder plus external
strategies (reverse-lookup tables, superpage-aware VIPT) behind one
registry.  See docs/policies.md for the interface contract."""

from repro.policy.base import ConsistencyPolicy
from repro.policy.registry import (all_policies, get_policy, register,
                                   resolve)
from repro.policy.rlt import ReverseLookupPolicy
from repro.policy.vespa import VespaPolicy

__all__ = [
    "ConsistencyPolicy",
    "ReverseLookupPolicy",
    "VespaPolicy",
    "all_policies",
    "get_policy",
    "register",
    "resolve",
]
