"""Reverse-lookup-table consistency management (Desai & Deshmukh,
arXiv 2108.00444).

The paper's policies are *conservative*: every decided flush/purge walks
all ``lines_per_page`` line slots of the target cache page because the
software cannot know which lines of the frame are actually resident.
The reverse-lookup table (RLT) is a hardware structure mapping physical
page -> the set of its lines resident in the cache, making synonym
invalidation *exact*:

* an operation on a frame with **zero** resident lines is skipped
  entirely (the dominant case under lazy management, where most decided
  operations target long-cold cache pages);
* an operation that does run touches **only the resident lines** — the
  per-line miss-scan term of the cost model disappears (the cache runs
  in ``exact_management`` mode, see :meth:`Cache.flush_page_frame`).

Neither shortcut changes what ends up in the cache or memory: skipping
an operation with no resident lines is a no-op by definition (any line
previously evicted was written back by the write-back cache), and the
exact walk invalidates the same lines the conservative walk would.
Only the *cost* changes — which is the point of the strategy.

The table itself is modeled as perfect (the simulator's ground-truth
``resident_lines`` query *is* the RLT), and every consult is charged
:attr:`CostModel.rlt_lookup` cycles on the simulated clock, so the
strategy pays for its bookkeeping the same way the paper's policies pay
for their conservatism.  Counters: ``rlt_lookups`` (consults) and
``rlt_skipped_ops`` (operations proven unnecessary).

Everything *above* the flush/purge funnel is configuration F — the RLT
changes how decided operations are carried out, not which ones are
decided.
"""

from __future__ import annotations

from repro.policy.base import ConsistencyPolicy
from repro.vm.policy import CONFIG_F


def _dcaches(machine):
    """The physical data caches (per-CPU under SMP, else the one L1)."""
    cluster = getattr(machine.dcache, "cluster", None)
    if cluster is not None:
        return list(cluster.caches)
    return [machine.dcache]


class ReverseLookupPolicy(ConsistencyPolicy):
    """Configuration F with exact, RLT-backed synonym invalidation."""

    def __init__(self):
        super().__init__(
            CONFIG_F.derive(
                "rlt",
                "F + reverse-lookup table: exact synonym invalidation "
                "(arXiv 2108.00444)"),
            origin="external")

    def setup(self, pmap) -> None:
        for cache in _dcaches(pmap.machine):
            cache.exact_management = True

    # One consult answers "which lines of this frame sit in this cache
    # page"; with the answer in hand the operation is either skipped
    # (empty) or performed over exactly the resident lines.
    def _consult(self, pmap, cache_page: int, ppage: int) -> int:
        machine = pmap.machine
        machine.clock.advance(machine.config.cost.rlt_lookup)
        machine.counters.rlt_lookups += 1
        return machine.dcache.resident_lines(cache_page,
                                             pmap._pa_base(ppage))

    def do_flush(self, pmap, cache_page: int, ppage: int, reason) -> None:
        if self._consult(pmap, cache_page, ppage) == 0:
            pmap.machine.counters.rlt_skipped_ops += 1
            return
        super().do_flush(pmap, cache_page, ppage, reason)

    def do_purge(self, pmap, cache_page: int, ppage: int, reason) -> None:
        if self._consult(pmap, cache_page, ppage) == 0:
            pmap.machine.counters.rlt_skipped_ops += 1
            return
        super().do_purge(pmap, cache_page, ppage, reason)

    def waives_missed_action(self, kernel, cache, frame: int,
                             action) -> bool:
        """A skipped operation is provably harmless iff no line of the
        frame sits in the demanded cache page.

        Sound at check time, not just at skip time: the monitor checks
        *before* the triggering access executes, and the only way lines
        of ``frame`` enter the cache between the skip and the check is an
        access to ``frame`` — which would itself have been checked first.
        Residency can only have shrunk since the skip (evictions write
        dirty lines back), so zero-at-check implies the miss was exact.
        """
        return cache.resident_lines(action.cache_page,
                                    frame * kernel.machine.page_size) == 0
