"""The pluggable consistency-policy engine: hooks at every decision
point the pmap used to branch on :class:`~repro.vm.policy.PolicyConfig`
flags for.

A :class:`ConsistencyPolicy` is an object with a named strategy and a
hook for each place the machine-dependent VM layer makes a
consistency-management decision:

========================  =====================================================
Hook                      Decision
========================  =====================================================
``setup``                 one-time attachment to a booted pmap (e.g. turn on
                          exact-cost cache management)
``wants_uncached``        should this new mapping convert the frame's alias
                          set to uncached access? (Sun)
``on_map``                extra cleaning when a translation is created
                          (Tut per-VA state, old-system alias breaking)
``on_unmap``              cleaning when a translation is broken (eager vs lazy)
``on_alias_fault``        extra work when a consistency fault is resolved
``prepare_plan``          which cache page a frame is prepared through, and
                          the ``will_overwrite`` / ``need_data`` semantics
``read_window``           which cache page a frame is read through
``on_dma_read``           cache management before a device reads a frame
``on_dma_write``          cache management before a device writes a frame
``do_flush``/``do_purge`` how a decided flush/purge is actually carried out
                          (the reverse-lookup table intercepts here)
``enter_superpage``       mapping a physically contiguous, index-aligned run
                          of frames as one superpage region
``on_context_switch``     per-quantum work when the scheduler switches tasks
``waives_missed_action``  conformance: is a model-required action this policy
                          provably did not need? (see docs/policies.md)
========================  =====================================================

The **default implementation of every hook is exactly the legacy flag
behaviour**, reading ``self.flags`` — so a ``ConsistencyPolicy`` wrapped
around any :class:`PolicyConfig` is bit-identical to the seed flag path
(property-tested in ``tests/policy/test_degeneracy.py``), and an external
strategy overrides only the hooks where it genuinely differs.

Policies are stateless singletons: all per-run state lives on the pmap /
machine passed into each hook, so one registered instance serves any
number of concurrent kernels (the farm forks them freely).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.states import MemoryOp
from repro.hw.stats import Reason
from repro.vm.policy import PolicyConfig
from repro.vm.prot import AccessKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.page_state import PhysPageState
    from repro.vm.pagetable import PageTableEntry
    from repro.vm.pmap import Pmap
    from repro.vm.prot import Prot


class ConsistencyPolicy:
    """One consistency-management strategy; defaults replicate the flags.

    Attributes:
        flags: the :class:`PolicyConfig` flag bag consumed by the parts
            of the kernel that are genuinely flag-like (free-list
            coloring, address-selection, the global address space).
        name: registry name (defaults to ``flags.name``).
        description: one-line summary (defaults to ``flags.description``).
        origin: where the strategy comes from — ``"paper"`` (the A–F
            ladder and G), ``"table5"`` (the related-systems rows), or
            ``"external"`` (strategies beyond the 1992 design space).
    """

    def __init__(self, flags: PolicyConfig, *, name: str | None = None,
                 description: str | None = None, origin: str = "paper"):
        self.flags = flags
        self.name = name if name is not None else flags.name
        self.description = (description if description is not None
                            else flags.description)
        self.origin = origin

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"origin={self.origin!r})")

    # ---- lifecycle ---------------------------------------------------------

    def setup(self, pmap: "Pmap") -> None:
        """Called once from ``Pmap.__init__`` after the engine is built."""

    # ---- mapping entry / removal -------------------------------------------

    def wants_uncached(self, pmap: "Pmap", state: "PhysPageState",
                       vpage: int) -> bool:
        """Should this new mapping turn the frame's alias set uncached?"""
        return (self.flags.uncached_aliases
                and pmap._needs_uncached(state, vpage))

    def on_map(self, pmap: "Pmap", state: "PhysPageState", asid: int,
               vpage: int, access: AccessKind, reason: Reason) -> None:
        """Pre-engine work when a translation is created."""
        if self.flags.tut_equal_va_only:
            pmap._tut_clean(state, vpage, reason)
        if self.flags.eager_break_aliases:
            pmap._eager_break(state, asid, vpage, access)

    def on_unmap(self, pmap: "Pmap", state: "PhysPageState",
                 cache_page: int, reason: Reason) -> None:
        """Cleaning when a translation is broken (Section 2.5 vs 2.3)."""
        if not self.flags.lazy_unmap:
            pmap._eager_clean(state, cache_page, reason)

    def on_alias_fault(self, pmap: "Pmap", state: "PhysPageState",
                       asid: int, vpage: int, access: AccessKind) -> None:
        """Pre-engine work when a consistency fault is resolved."""
        if self.flags.eager_break_aliases:
            pmap._eager_break(state, asid, vpage, access)

    # ---- page preparation ---------------------------------------------------

    def prepare_plan(self, pmap: "Pmap", state: "PhysPageState",
                     ppage: int,
                     ultimate_vpage: int | None) -> tuple[int, bool, bool]:
        """``(prep_cache_page, will_overwrite, need_data)`` for preparing
        ``ppage`` (zero-fill or copy destination)."""
        return (pmap._prep_cache_page(ppage, ultimate_vpage),
                self.flags.opt_will_overwrite,
                not self.flags.opt_need_data)

    def read_window(self, pmap: "Pmap", state: "PhysPageState",
                    src_ppage: int) -> int:
        """Cache page through which the kernel reads a frame's contents."""
        if state.cache_dirty and self.flags.aligned_prepare:
            # Read through the cache page where the data is already dirty:
            # aligned, so no flush is needed.
            return state.find_mapped_cache_page()
        return src_ppage % pmap.ncp

    # ---- DMA preparation ----------------------------------------------------

    def on_dma_read(self, pmap: "Pmap", state: "PhysPageState") -> None:
        """Before a device reads the frame (flush dirty data to memory)."""
        pmap.engine(state, MemoryOp.DMA_READ, reason=Reason.DMA_READ)
        pmap._post_engine(state)

    def on_dma_write(self, pmap: "Pmap", state: "PhysPageState") -> None:
        """Before a device writes the frame (purge dirty data, mark every
        cached copy stale)."""
        pmap.engine(state, MemoryOp.DMA_WRITE, need_data=False,
                    reason=Reason.DMA_WRITE)
        pmap._post_engine(state)

    # ---- how decided operations are carried out -----------------------------

    def do_flush(self, pmap: "Pmap", cache_page: int, ppage: int,
                 reason: Reason) -> None:
        """Carry out a flush the engine (or an eager path) decided on."""
        pmap.machine.dcache.flush_page_frame(cache_page,
                                             pmap._pa_base(ppage), reason)

    def do_purge(self, pmap: "Pmap", cache_page: int, ppage: int,
                 reason: Reason) -> None:
        """Carry out a purge the engine (or an eager path) decided on."""
        pmap.machine.dcache.purge_page_frame(cache_page,
                                             pmap._pa_base(ppage), reason)

    # ---- superpages ---------------------------------------------------------

    def enter_superpage(self, pmap: "Pmap", asid: int, base_vpage: int,
                        base_ppage: int, npages: int,
                        vm_prot: "Prot") -> None:
        """Map ``npages`` physically contiguous frames starting at
        ``base_ppage`` to the virtual run starting at ``base_vpage``.

        The default treats the region as ``npages`` ordinary 4K mappings
        run through the normal consistency algorithm — superpages gain
        nothing under the paper's policies, which is exactly the baseline
        VESPA improves on.
        """
        for i in range(npages):
            pte = pmap.enter(asid, base_vpage + i, base_ppage + i, vm_prot,
                             AccessKind.WRITE, reason=Reason.NEW_MAPPING)
            pte.superpage = True
            pmap.state_of(base_ppage + i).superpage = True

    # ---- scheduling ---------------------------------------------------------

    def on_context_switch(self, kernel, tasklet) -> None:
        """Per-quantum hook when the scheduler is about to run a tasklet.

        The paper's policies (and both external strategies shipped here)
        need no per-switch work on a physically tagged cache; policies for
        virtually *tagged* caches would flush here.
        """

    # ---- conformance --------------------------------------------------------

    def waives_missed_action(self, kernel, cache, frame: int,
                             action) -> bool:
        """May the lockstep monitor excuse a model-required flush/purge
        this policy did not perform?

        The Table 2 model is exact for the paper's policies, so the
        default waives nothing.  A policy with better information than
        the model (e.g. the reverse-lookup table) overrides this with a
        *provable-harmlessness* predicate; see docs/policies.md for the
        soundness argument the override must satisfy.
        """
        return False
