"""The ``serve`` macro-workload: a population of users against the farm.

The ROADMAP's north star asks for "heavy traffic from millions of users"
against the paper's system.  This workload is that scenario: a
population of simulated users issuing file syscalls at the user-level
Unix server — the Section 4.2 request/reply exchange over shared channel
pages, IPC page transfers out of the buffer cache, staging-page
preparation — so every request exercises exactly the consistency
machinery the paper manages.

**Cohorts are the unit of sharding.**  The population splits into
cohorts; each cohort is one farm job that boots a fresh kernel, so
cohorts are independent pure functions of ``(cohort, users, ...)`` and
the farm can run them serially or across any pool width with
bit-identical merged results (:func:`repro.farm.suites.farm_serve`).

**Every user is deterministic.**  A user's whole behaviour — which
frontend process carries the request, which hot file, which page, and
whether this user also writes — derives from ``crc32(cohort/user)``, a
stable hash (Python's ``hash()`` is per-interpreter seeded).  The cohort
result carries a checksum folded over every page the users read; because
on-disk blocks are synthesized from ``(file_id, page)`` and cohort
kernels are freshly booted, the checksum is reproducible anywhere — any
divergence between two runs of the same cohort is a real consistency
bug, not noise.  (Written data is deliberately *excluded* from the
checksum: fresh write tokens come from a process-global counter that is
not part of the spec.)

**Frontends multiplex users.**  Real servers don't keep one process per
user; a small pool of frontend processes carries the whole cohort's
traffic, which also keeps the per-request cost in the syscall/IPC path
rather than in task setup.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.vm.policy import NEW_SYSTEM, PolicyConfig

#: every user stats, opens, reads and closes (4 syscalls)...
BASE_SYSCALLS_PER_USER = 4
#: ...every 4th rereads a second page (+1), and every 16th also writes a
#: scratch file: create/open/write/close/remove (+5).
RE_READ_EVERY = 4
WRITER_EVERY = 16


@dataclass(frozen=True)
class ServeCohortResult:
    """What one cohort of users did to one freshly booted system."""

    cohort: int
    users: int
    frontends: int
    requests: int            # server syscalls executed for the cohort
    reads: int               # file pages IPC-transferred to users
    writes: int              # file pages written through the server
    cycles: int              # simulated machine time consumed
    checksum: int            # crc32 folded over every page read
    bc_hits: int
    bc_misses: int
    counters: dict = field(repr=False)
    coverage: dict | None = field(default=None, repr=False)

    @property
    def cycles_per_request(self) -> float:
        return self.cycles / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        return {"cohort": self.cohort, "users": self.users,
                "frontends": self.frontends, "requests": self.requests,
                "reads": self.reads, "writes": self.writes,
                "cycles": self.cycles, "checksum": self.checksum,
                "bc_hits": self.bc_hits, "bc_misses": self.bc_misses,
                "cycles_per_request": self.cycles_per_request,
                "counters": dict(self.counters),
                "coverage": self.coverage}

    @classmethod
    def from_dict(cls, data: dict) -> "ServeCohortResult":
        return cls(cohort=data["cohort"], users=data["users"],
                   frontends=data["frontends"], requests=data["requests"],
                   reads=data["reads"], writes=data["writes"],
                   cycles=data["cycles"], checksum=data["checksum"],
                   bc_hits=data["bc_hits"], bc_misses=data["bc_misses"],
                   counters=data["counters"],
                   coverage=data.get("coverage"))


def user_hash(cohort: int, user: int) -> int:
    """The stable per-user behaviour seed."""
    return zlib.crc32(f"{cohort}/{user}".encode()) & 0xFFFFFFFF


def run_serve_cohort(cohort: int, users: int,
                     policy: PolicyConfig | str = NEW_SYSTEM,
                     hot_files: int = 6, file_pages: int = 4,
                     frontends: int = 4,
                     buffer_cache_pages: int = 48,
                     conform: bool = False) -> ServeCohortResult:
    """Serve one cohort's traffic on a fresh kernel; pure in its args.

    With ``conform`` a lockstep Table 2 shadow rides the whole cohort
    (every line-state transition checked, arc coverage collected) —
    expensive, so the big benchmark runs leave it off while the CI smoke
    turns it on.
    """
    if isinstance(policy, str):
        from repro.policy import get_policy
        policy = get_policy(policy)
    kernel = Kernel(policy=policy, buffer_cache_pages=buffer_cache_pages)
    monitor = None
    if conform:
        from repro.conformance import ConformanceMonitor
        monitor = ConformanceMonitor(kernel)
        monitor.attach()

    # The cohort's content: hot files that predate the traffic, on disk,
    # synthesized from (file_id, page) — the same bytes in every boot.
    names = [f"srv/hot{i}" for i in range(hot_files)]
    for name in names:
        kernel.fs.create(name, size_pages=file_pages, on_disk=True)
    pool = [UserProcess(kernel, name=f"fe{i}") for i in range(frontends)]

    base_syscalls = kernel.unix_server.syscalls
    base_cycles = kernel.machine.clock.cycles
    checksum = 0
    reads = writes = 0
    try:
        for user in range(users):
            h = user_hash(cohort, user)
            frontend = pool[h % frontends]
            name = names[(h >> 4) % hot_files]
            frontend.stat(name)
            fd = frontend.open(name)
            values = frontend.read_file_page(fd, (h >> 8) % file_pages)
            checksum = zlib.crc32(values.tobytes(), checksum)
            reads += 1
            if h % RE_READ_EVERY == 0:
                values = frontend.read_file_page(fd,
                                                 (h >> 16) % file_pages)
                checksum = zlib.crc32(values.tobytes(), checksum)
                reads += 1
            frontend.close(fd)
            if h % WRITER_EVERY == 0:
                # This user uploads: a scratch file written through the
                # server's buffer cache, then removed.  Its token values
                # come from a process-global counter, so they never feed
                # the checksum — only the (deterministic) machine events
                # they cause are measured.
                scratch = f"srv/tmp{user}"
                frontend.create(scratch)
                scratch_fd = frontend.open(scratch)
                frontend.write_file_page(scratch_fd, 0)
                frontend.close(scratch_fd)
                frontend.remove(scratch)
                writes += 1
    finally:
        if monitor is not None:
            monitor.detach()

    counters = kernel.machine.counters.snapshot()
    result = ServeCohortResult(
        cohort=cohort, users=users, frontends=frontends,
        requests=kernel.unix_server.syscalls - base_syscalls,
        reads=reads, writes=writes,
        cycles=kernel.machine.clock.cycles - base_cycles,
        checksum=checksum,
        bc_hits=kernel.buffer_cache.hits,
        bc_misses=kernel.buffer_cache.misses,
        counters=counters,
        coverage=monitor.coverage.to_dict() if monitor is not None
        else None)
    if monitor is not None and not monitor.ok:
        raise AssertionError(
            f"serve cohort {cohort}: lockstep divergence "
            f"{monitor.divergences[0]}")
    return result


@dataclass(frozen=True)
class ServeReport:
    """The merged view of a whole population, cohorts combined."""

    cohorts: int
    users: int
    frontends: int
    requests: int
    reads: int
    writes: int
    cycles: int
    checksum: int            # crc32 over per-cohort checksums, in order
    bc_hits: int
    bc_misses: int
    counters: dict = field(repr=False)
    coverage: dict | None = field(default=None, repr=False)

    @property
    def cycles_per_request(self) -> float:
        return self.cycles / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        return {"cohorts": self.cohorts, "users": self.users,
                "frontends": self.frontends, "requests": self.requests,
                "reads": self.reads, "writes": self.writes,
                "cycles": self.cycles, "checksum": self.checksum,
                "bc_hits": self.bc_hits, "bc_misses": self.bc_misses,
                "cycles_per_request": self.cycles_per_request,
                "counters": dict(self.counters),
                "coverage": self.coverage}

    def summary(self) -> str:
        line = (f"served {self.requests} requests from {self.users} users "
                f"in {self.cohorts} cohorts "
                f"({self.cycles_per_request:.0f} cycles/request, "
                f"buffer cache {self.bc_hits}h/{self.bc_misses}m, "
                f"checksum {self.checksum:#010x})")
        if self.coverage is not None:
            from repro.conformance import ArcCoverage
            line += ("; " + ArcCoverage.from_dict(self.coverage).summary())
        return line


def merge_cohorts(results: list[ServeCohortResult]) -> ServeReport:
    """Combine per-cohort results; order-stable and associative-safe.

    Scalar counters sum; the population checksum folds the per-cohort
    checksums *in cohort order*, so any merged report over the same
    cohorts is bit-identical however the cohorts were executed.
    """
    if not results:
        raise ValueError("merge_cohorts needs at least one cohort")
    results = sorted(results, key=lambda r: r.cohort)
    counters: dict = {}
    for result in results:
        for key, value in result.counters.items():
            counters[key] = counters.get(key, 0) + value
    coverage = None
    if all(r.coverage is not None for r in results):
        from repro.conformance import ArcCoverage
        merged = ArcCoverage()
        for result in results:
            merged.merge(ArcCoverage.from_dict(result.coverage))
        coverage = merged.to_dict()
    checksum = 0
    for result in results:
        checksum = zlib.crc32(
            result.checksum.to_bytes(4, "little"), checksum)
    return ServeReport(
        cohorts=len(results),
        users=sum(r.users for r in results),
        frontends=results[0].frontends,
        requests=sum(r.requests for r in results),
        reads=sum(r.reads for r in results),
        writes=sum(r.writes for r in results),
        cycles=sum(r.cycles for r in results),
        checksum=checksum,
        bc_hits=sum(r.bc_hits for r in results),
        bc_misses=sum(r.bc_misses for r in results),
        counters=counters,
        coverage=coverage)
