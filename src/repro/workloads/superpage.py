"""The superpage workload: a zero-copy device receive/transmit buffer.

A network-style device streams packet bursts into a region the CPU then
parses and annotates in place, and periodically the annotated pages are
transmitted back out — the zero-copy I/O pattern that motivates
superpage-aware VIPT management (VESPA, arXiv 1701.03499).  The region
is a :meth:`~repro.kernel.task.Task.map_superpage` run: physically
contiguous frames under an index-aligned virtual run, so the cache index
of every line is pinned by the physical address alone.

Under the paper's policies each incoming DMA burst drives the Table 2
engine per page (flushing or purging whatever the CPU left in the
window); a superpage-aware policy exploits the alignment invariant to
eliminate that alias management entirely — the only work left is the
purge that makes the device's words visible.  The workload runs
unchanged under every registered policy, which is what makes it a
comparison point: same traffic, different management bills.
"""

from __future__ import annotations

import numpy as np

from repro.kernel.kernel import Kernel
from repro.workloads.base import Workload


class SuperpageRx(Workload):
    """Receive bursts into a superpage ring, annotate, transmit back."""

    name = "superpage-rx"

    #: every 4th burst, the annotated pages are DMA-read back out
    TX_EVERY = 4

    def __init__(self, scale: float = 1.0):
        self.scale = scale
        self.npages = 8
        self.bursts = max(1, int(24 * scale))
        self.checksum = 0

    def setup(self, kernel: Kernel) -> None:
        self.task = kernel.create_task("superpage-rx")
        self.base = self.task.map_superpage(self.npages)
        table = kernel.pmap.page_table(self.task.asid)
        self.frames = [table.lookup(self.base + i).ppage
                       for i in range(self.npages)]

    def execute(self, kernel: Kernel) -> None:
        machine = kernel.machine
        words = machine.page_size // 4
        checksum = 0
        for burst in range(self.bursts):
            # The device fills the whole ring (one packet per page)...
            for i, frame in enumerate(self.frames):
                payload = np.full(words, (burst * 131 + i * 17 + 1) & 0xFFFF,
                                  dtype=np.uint32)
                kernel.pmap.prepare_dma_write(frame)
                machine.dma.dma_write(frame, payload)
            # ...the CPU parses each packet and stamps a header word...
            for i in range(self.npages):
                vpage = self.base + i
                checksum = (checksum + self.task.read(vpage, 1)) & 0xFFFFFFFF
                self.task.write(vpage, 0, (burst << 8) | i)
            # ...and periodically the annotated ring is transmitted.
            if burst % self.TX_EVERY == 0:
                for i, frame in enumerate(self.frames):
                    kernel.pmap.prepare_dma_read(frame)
                    out = machine.dma.dma_read(frame)
                    assert out[0] == (burst << 8) | i, (
                        f"transmit saw a stale header on page {i} of "
                        f"burst {burst}: {out[0]:#x}")
        self.checksum = checksum
