"""Workload framework.

A workload is a setup phase (creating input files and processes — not
measured) followed by an execute phase (measured).  The harness in
:mod:`repro.analysis.experiments` snapshots the machine clock and counters
around ``execute`` so a run reports exactly what the paper's tables
report: elapsed time, fault counts, and cache-management operation counts
with their cycle costs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.kernel.kernel import Kernel


class Workload(abc.ABC):
    """One benchmark program."""

    #: short identifier used in tables
    name: str = "workload"

    @abc.abstractmethod
    def setup(self, kernel: Kernel) -> None:
        """Create input files and long-lived processes (not measured)."""

    @abc.abstractmethod
    def execute(self, kernel: Kernel) -> None:
        """Run the benchmark (measured)."""

    def run(self, kernel: Kernel) -> None:
        """Setup then execute (for callers that do not split measurement)."""
        self.setup(kernel)
        self.execute(kernel)

    def record(self, kernel: Kernel, trace_events: bool = False):
        """Set up on ``kernel`` and compile the execute phase to a trace.

        Returns a :class:`repro.trace.format.Trace` whose recorded window
        is exactly the measured window of :func:`run_workload`, so the
        trace's end-minus-start counters equal an interpreted run's
        metrics.  Imported lazily: the workload layer stays importable
        without the trace package.
        """
        from repro.trace.record import record_run

        self.setup(kernel)
        return record_run(self, kernel, trace_events=trace_events)


@dataclass(frozen=True)
class PaperNumbers:
    """The paper's reported measurements for one benchmark (Table 1)."""

    old_seconds: float
    new_seconds: float
    gain_percent: float
    old_flushes_thousands: float | None = None
    new_flushes_thousands: float | None = None
