"""afs-bench: a file-intensive shell script, modeled on the Andrew
benchmark [Satyanarayanan et al. 85] the paper uses.

The Andrew benchmark's five phases are reproduced at reduced scale:
MakeDir (create a directory tree), Copy (copy a source tree), ScanDir
(stat every file twice), ReadAll (read every byte of every file), and
Make (compile part of the tree).  Every phase exercises the Unix server's
shared syscall channels, the IPC page-transfer path, the buffer cache,
and — in Make — the fork/exec/text-fault path.
"""

from __future__ import annotations

from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.workloads.base import PaperNumbers, Workload

PAPER = PaperNumbers(old_seconds=66.0, new_seconds=59.4, gain_percent=10.0)


class AfsBench(Workload):
    """The file-intensive script."""

    name = "afs-bench"

    #: compute-intensity calibration: chosen so the old-vs-new gain lands
    #: near the paper's 10% (see EXPERIMENTS.md, calibration notes).
    CPU_FACTOR = 4.5

    def __init__(self, scale: float = 1.0):
        self.n_dirs = max(2, round(4 * scale))
        self.n_files = max(4, round(16 * scale))
        self.pages_per_file = 2
        self.n_compiles = max(2, round(6 * scale))

    def _c(self, units: int) -> int:
        return max(1, round(units * self.CPU_FACTOR))

    def setup(self, kernel: Kernel) -> None:
        for i in range(self.n_files):
            kernel.fs.create(f"/afs/src/f{i}.c",
                             size_pages=self.pages_per_file, on_disk=True)
        self.cc = kernel.exec_loader.register_program(
            "afs-cc", text_pages=3, data_pages=2)
        self.shell = UserProcess(kernel, "afs-shell")

    def execute(self, kernel: Kernel) -> None:
        shell = self.shell
        # Phase 1: MakeDir.
        for d in range(self.n_dirs):
            shell.create(f"/afs/work/dir{d}/.exists")
            shell.compute(self._c(1))
        # Phase 2: Copy the source tree.
        for i in range(self.n_files):
            shell.copy_file(f"/afs/src/f{i}.c",
                            f"/afs/work/dir{i % self.n_dirs}/f{i}.c")
        # Phase 3: ScanDir — stat every file, twice.
        for _ in range(2):
            for i in range(self.n_files):
                shell.stat(f"/afs/work/dir{i % self.n_dirs}/f{i}.c")
                shell.compute(self._c(1))
        # Phase 4: ReadAll — read every page of every file.
        for i in range(self.n_files):
            fd = shell.open(f"/afs/work/dir{i % self.n_dirs}/f{i}.c")
            shell.read_file_pages(fd, self.pages_per_file,
                                  compute_units=self._c(1))
            shell.close(fd)
        # Phase 5: Make — compile a subset of the tree.
        for i in range(self.n_compiles):
            src = f"/afs/work/dir{i % self.n_dirs}/f{i}.c"
            child = shell.spawn(self.cc, work_units=self._c(4))
            fd = child.open(src)
            child.read_file_pages(fd, self.pages_per_file)
            child.close(fd)
            child.create(f"/afs/work/obj/f{i}.o")
            ofd = child.open(f"/afs/work/obj/f{i}.o")
            child.write_file_page(ofd, 0)
            child.close(ofd)
            child.exit()
        shell.compute(self._c(8))


def run(kernel: Kernel, scale: float = 1.0) -> AfsBench:
    workload = AfsBench(scale)
    workload.run(kernel)
    return workload
