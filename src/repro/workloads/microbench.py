"""The contrived Section 2.5 microbenchmark.

"A single thread repeatedly wrote one physical address through two
virtual addresses.  When the virtual addresses were aligned, a loop of
1,000,000 writes completed in a fraction of a second.  When unaligned,
the loop took over 2 minutes."

With aligned aliases both virtual addresses select the same cache line,
so after warmup every write is a cache hit and no consistency machinery
runs.  With unaligned aliases every alternation is a consistency fault
that flushes the previously dirty cache page and purges the newly stale
one — three orders of magnitude slower per write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.prot import Prot
from repro.vm.vm_object import Backing, VMObject


@dataclass(frozen=True)
class AliasLoopResult:
    """Measurements from one run of the write loop."""

    aligned: bool
    iterations: int
    cycles: int
    seconds: float
    consistency_faults: int
    page_flushes: int
    page_purges: int

    @property
    def cycles_per_write(self) -> float:
        return self.cycles / self.iterations


def run_alias_write_loop(kernel: Kernel, iterations: int,
                         aligned: bool,
                         run_words: int = 1) -> AliasLoopResult:
    """Write one physical page alternately through two virtual addresses.

    Returns the cost of the loop.  The two mappings live in one task; the
    ``aligned`` flag controls whether the second virtual page selects the
    same cache page as the first.  With ``run_words > 1`` each iteration
    stores a contiguous run through the block API instead of one word —
    the batched variant of the same alternation pattern.
    """
    proc = UserProcess(kernel, "alias-loop")
    page_object = VMObject(1, Backing.ZERO_FILL)
    ncp = kernel.machine.dcache.geo.num_cache_pages
    vpage_a = proc.task.map_shared(page_object, Prot.READ_WRITE)
    color_a = proc.task.space.cache_page_of(vpage_a)
    color_b = color_a if aligned else (color_a + 1) % ncp
    vpage_b = proc.task.map_shared(page_object, Prot.READ_WRITE,
                                   color=color_b)

    counters = kernel.machine.counters
    start_cycles = kernel.machine.clock.cycles
    start_faults = counters.faults.copy()
    start_flushes = counters.total_flushes()
    start_purges = counters.total_purges()

    value = 1
    for i in range(iterations):
        vpage = vpage_a if (i & 1) == 0 else vpage_b
        if run_words == 1:
            proc.task.write(vpage, 0, value)
        else:
            proc.task.write_block(vpage, 0,
                                  range(value, value + run_words))
        value += run_words

    from repro.hw.stats import FaultKind
    cycles = kernel.machine.clock.cycles - start_cycles
    result = AliasLoopResult(
        aligned=aligned,
        iterations=iterations,
        cycles=cycles,
        seconds=kernel.machine.config.cost.seconds(cycles),
        consistency_faults=(counters.faults[FaultKind.CONSISTENCY]
                            - start_faults[FaultKind.CONSISTENCY]),
        page_flushes=counters.total_flushes() - start_flushes,
        page_purges=counters.total_purges() - start_purges,
    )
    proc.exit()
    return result


def run_pair(kernel_factory, iterations: int = 10_000
             ) -> tuple[AliasLoopResult, AliasLoopResult]:
    """Run the loop aligned and unaligned on fresh kernels; returns both."""
    aligned = run_alias_write_loop(kernel_factory(), iterations, aligned=True)
    unaligned = run_alias_write_loop(kernel_factory(), iterations,
                                     aligned=False)
    return aligned, unaligned
