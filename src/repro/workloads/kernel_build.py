"""kernel-build: building a kernel from ~200 source files.

Each compilation forks the shell, execs the compiler (text faults copy
pages from the buffer cache into instruction space), reads the source
file and a few shared headers (mostly buffer-cache hits after warmup),
writes an object file (write-behind DMA later), and exits (releasing
frames back to the free list — the recycling that makes new-mapping
purges the dominant cost in configuration F, Section 5.1).  A final link
step reads every object file and writes the kernel image.

This is the paper's largest benchmark (678.9 s old, 620.9 s new, 8.5%);
ours runs the same operation mix at a documented fraction of the file
sizes.
"""

from __future__ import annotations

from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.workloads.base import PaperNumbers, Workload

PAPER = PaperNumbers(old_seconds=678.9, new_seconds=620.9, gain_percent=8.5)


class KernelBuild(Workload):
    """make: compile n_sources files, then link."""

    name = "kernel-build"

    def __init__(self, scale: float = 1.0, n_sources: int | None = None):
        self.n_sources = (n_sources if n_sources is not None
                          else max(8, round(40 * scale)))
        self.n_headers = max(3, round(8 * scale))
        self.src_pages = 2
        self.obj_pages = 1

    def setup(self, kernel: Kernel) -> None:
        for i in range(self.n_sources):
            kernel.fs.create(f"/sys/src/file{i}.c", size_pages=self.src_pages,
                             on_disk=True)
        for i in range(self.n_headers):
            kernel.fs.create(f"/sys/include/hdr{i}.h", size_pages=1,
                             on_disk=True)
        self.cc = kernel.exec_loader.register_program(
            "cc1", text_pages=4, data_pages=3)
        self.ld = kernel.exec_loader.register_program(
            "ld", text_pages=3, data_pages=2)
        self.make = UserProcess(kernel, "make")

    def execute(self, kernel: Kernel) -> None:
        make = self.make
        for i in range(self.n_sources):
            make.stat(f"/sys/src/file{i}.c")
            cc = make.spawn(self.cc, work_units=12)
            # Read the source and a couple of headers.
            fd = cc.open(f"/sys/src/file{i}.c")
            cc.read_file_pages(fd, self.src_pages, compute_units=8)
            cc.close(fd)
            for h in (i % self.n_headers, (i + 1) % self.n_headers):
                hfd = cc.open(f"/sys/include/hdr{h}.h")
                cc.read_file_page(hfd, 0)
                cc.close(hfd)
            # Write the object file.
            cc.create(f"/sys/obj/file{i}.o")
            ofd = cc.open(f"/sys/obj/file{i}.o")
            cc.write_file_pages(ofd, self.obj_pages)
            cc.close(ofd)
            cc.exit()
        # Link.
        ld = make.spawn(self.ld, work_units=16)
        for i in range(self.n_sources):
            fd = ld.open(f"/sys/obj/file{i}.o")
            ld.read_file_pages(fd, self.obj_pages)
            ld.close(fd)
            ld.compute(4)
        ld.create("/sys/kernel.img")
        kfd = ld.open("/sys/kernel.img")
        ld.write_file_pages(kfd, max(4, self.n_sources // 8))
        ld.close(kfd)
        ld.exit()


def run(kernel: Kernel, scale: float = 1.0) -> KernelBuild:
    workload = KernelBuild(scale)
    workload.run(kernel)
    return workload
