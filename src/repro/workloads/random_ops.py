"""Randomized alias/remap/DMA stressor.

Drives the whole system — CPU reads and writes through randomly aligned
and unaligned aliases in several tasks, mapping churn, and disk DMA in
both directions — while the staleness oracle checks every transferred
value.  This is the workload behind the headline property test: *under
any policy, arbitrary interleavings never return stale data*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess, fresh_tokens
from repro.prot import Prot
from repro.vm.vm_object import Backing, VMObject
from repro.workloads.base import Workload


@dataclass
class StressStats:
    """What a stress run did."""

    reads: int = 0
    writes: int = 0
    page_reads: int = 0
    page_writes: int = 0
    block_reads: int = 0
    block_writes: int = 0
    remaps: int = 0
    dma_ins: int = 0
    dma_outs: int = 0
    forks: int = 0


class AliasStressor:
    """A reproducible random workload over shared pages.

    Args:
        kernel: the booted system to stress.
        n_tasks: how many tasks share the pages.
        n_pages: how many independent shared pages to create.
        seed: RNG seed (runs are deterministic given the seed).
    """

    def __init__(self, kernel: Kernel, n_tasks: int = 3, n_pages: int = 4,
                 seed: int = 0):
        self.kernel = kernel
        self.rng = random.Random(seed)
        self.stats = StressStats()
        self.procs = [UserProcess(kernel, f"stress{i}")
                      for i in range(n_tasks)]
        self.objects = [VMObject(1, Backing.ZERO_FILL)
                        for _ in range(n_pages)]
        # mappings[obj_index] = list of (proc_index, vpage)
        self.mappings: list[list[tuple[int, int]]] = [[] for _ in self.objects]
        ncp = kernel.machine.dcache.geo.num_cache_pages
        self._ncp = ncp
        for obj_index in range(n_pages):
            self._map_somewhere(obj_index)
        # a scratch file for DMA traffic
        self.scratch = kernel.fs.create("/stress/scratch",
                                        size_pages=n_pages, on_disk=True)
        self._value = 1

    # ---- individual actions -------------------------------------------------------

    def _map_somewhere(self, obj_index: int) -> None:
        proc_index = self.rng.randrange(len(self.procs))
        color = self.rng.randrange(self._ncp) if self.rng.random() < 0.5 else None
        vpage = self.procs[proc_index].task.map_shared(
            self.objects[obj_index], Prot.READ_WRITE, color=color)
        # Under the global-address-space model re-sharing is idempotent,
        # so the same (task, vpage) pair can come back; keep one entry.
        if (proc_index, vpage) not in self.mappings[obj_index]:
            self.mappings[obj_index].append((proc_index, vpage))

    def _pick_mapping(self, obj_index: int) -> tuple[int, int] | None:
        options = self.mappings[obj_index]
        if not options:
            return None
        return self.rng.choice(options)

    def _frame(self, obj_index: int) -> int | None:
        return self.objects[obj_index].resident_page(0)

    def do_write(self, obj_index: int) -> None:
        mapping = self._pick_mapping(obj_index)
        if mapping is None:
            return
        proc_index, vpage = mapping
        word = self.rng.randrange(16)
        self.procs[proc_index].task.write(vpage, word, self._value)
        self._value += 1
        self.stats.writes += 1

    def do_read(self, obj_index: int) -> None:
        mapping = self._pick_mapping(obj_index)
        if mapping is None:
            return
        proc_index, vpage = mapping
        word = self.rng.randrange(16)
        self.procs[proc_index].task.read(vpage, word)
        self.stats.reads += 1

    def do_page_write(self, obj_index: int) -> None:
        mapping = self._pick_mapping(obj_index)
        if mapping is None:
            return
        proc_index, vpage = mapping
        values = fresh_tokens(self.kernel.machine.memory.words_per_page)
        self.procs[proc_index].task.write_block(vpage, 0, values)
        self.stats.page_writes += 1

    def do_page_read(self, obj_index: int) -> None:
        mapping = self._pick_mapping(obj_index)
        if mapping is None:
            return
        proc_index, vpage = mapping
        self.procs[proc_index].task.read_block(
            vpage, 0, self.kernel.machine.memory.words_per_page)
        self.stats.page_reads += 1

    def do_block_write(self, obj_index: int) -> None:
        """A partial-page contiguous run through a random alias."""
        mapping = self._pick_mapping(obj_index)
        if mapping is None:
            return
        proc_index, vpage = mapping
        wpp = self.kernel.machine.memory.words_per_page
        word = self.rng.randrange(wpp // 2)
        n_words = self.rng.randrange(2, wpp - word + 1)
        self.procs[proc_index].task.write_block(vpage, word,
                                                fresh_tokens(n_words))
        self.stats.block_writes += 1

    def do_block_read(self, obj_index: int) -> None:
        mapping = self._pick_mapping(obj_index)
        if mapping is None:
            return
        proc_index, vpage = mapping
        wpp = self.kernel.machine.memory.words_per_page
        word = self.rng.randrange(wpp // 2)
        n_words = self.rng.randrange(2, wpp - word + 1)
        self.procs[proc_index].task.read_block(vpage, word, n_words)
        self.stats.block_reads += 1

    def do_remap(self, obj_index: int) -> None:
        """Unmap one alias and map the object somewhere else — the 'new
        mapping' problem of Section 2.3."""
        options = self.mappings[obj_index]
        if len(options) > 1 or (options and self.rng.random() < 0.5):
            proc_index, vpage = options.pop(
                self.rng.randrange(len(options)))
            self.procs[proc_index].task.unmap(vpage)
        self._map_somewhere(obj_index)
        self.stats.remaps += 1

    def do_dma_in(self, obj_index: int) -> None:
        """Disk -> memory (DMA-write) over the shared page's frame."""
        frame = self._frame(obj_index)
        if frame is None:
            return
        self.kernel.disk.read_block(self.scratch.file_id,
                                    obj_index, frame)
        self.stats.dma_ins += 1

    def do_dma_out(self, obj_index: int) -> None:
        """Memory -> disk (DMA-read) of the shared page's frame."""
        frame = self._frame(obj_index)
        if frame is None:
            return
        self.kernel.disk.write_block(self.scratch.file_id, obj_index, frame)
        self.stats.dma_outs += 1

    ACTIONS = ("write", "write", "read", "read", "page_write", "page_read",
               "block_write", "block_read", "remap", "dma_in", "dma_out")

    def step(self) -> None:
        obj_index = self.rng.randrange(len(self.objects))
        action = self.rng.choice(self.ACTIONS)
        getattr(self, f"do_{action}")(obj_index)

    def run(self, steps: int) -> StressStats:
        for _ in range(steps):
            self.step()
        return self.stats


def run(kernel: Kernel, steps: int = 500, seed: int = 0,
        n_tasks: int = 3, n_pages: int = 4) -> StressStats:
    """Convenience entry point: build a stressor and run it."""
    return AliasStressor(kernel, n_tasks=n_tasks, n_pages=n_pages,
                         seed=seed).run(steps)


class RandomOps(Workload):
    """The stressor as a :class:`Workload`, for the trace round-trip tests.

    Unlike the paper benchmarks, the action mix here hits every recorded
    operation class — word and block accesses through random aliases,
    page transfers, remap churn, DMA in both directions — so a compile →
    replay round trip over it exercises the whole op alphabet.  Not part
    of the evaluation workload set (``scale`` maps to stress steps, not
    to a paper-sized input).
    """

    name = "random-ops"

    def __init__(self, scale: float = 1.0, seed: int = 0,
                 n_tasks: int = 3, n_pages: int = 4):
        self.steps = max(1, int(100 * scale))
        self.seed = seed
        self.n_tasks = n_tasks
        self.n_pages = n_pages
        self.stats: StressStats | None = None
        self._stressor: AliasStressor | None = None

    def setup(self, kernel: Kernel) -> None:
        self._stressor = AliasStressor(kernel, n_tasks=self.n_tasks,
                                       n_pages=self.n_pages, seed=self.seed)

    def execute(self, kernel: Kernel) -> None:
        assert self._stressor is not None, "setup() must run first"
        self.stats = self._stressor.run(self.steps)
