"""latex-bench: formatting a version of the paper with TeX.

A single long-running process reads the document and style files, makes
two compute-heavy formatting passes (TeX resolves cross references on the
second pass), and writes the .dvi, .log and .aux outputs.  Relative to
afs-bench this workload is compute-dominated with moderate file traffic —
which is why the paper reports a smaller (5%) improvement for it.
"""

from __future__ import annotations

from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.workloads.base import PaperNumbers, Workload

PAPER = PaperNumbers(old_seconds=5.8, new_seconds=5.5, gain_percent=5.0)


class LatexBench(Workload):
    """Format a paper: two passes over the sources, three output files."""

    name = "latex-paper"

    def __init__(self, scale: float = 1.0):
        self.tex_pages = max(2, round(6 * scale))
        self.style_pages = max(1, round(3 * scale))
        self.dvi_pages = max(2, round(4 * scale))
        self.compute_per_page = 14

    def setup(self, kernel: Kernel) -> None:
        kernel.fs.create("/tex/paper.tex", size_pages=self.tex_pages,
                         on_disk=True)
        kernel.fs.create("/tex/asplos.sty", size_pages=self.style_pages,
                         on_disk=True)
        self.latex = kernel.exec_loader.register_program(
            "latex", text_pages=5, data_pages=4)
        self.shell = UserProcess(kernel, "tex-shell")

    def execute(self, kernel: Kernel) -> None:
        proc = self.shell.spawn(self.latex, work_units=2)
        for pass_number in range(2):
            # Read the style file and the document.
            for name, pages in (("/tex/asplos.sty", self.style_pages),
                                ("/tex/paper.tex", self.tex_pages)):
                fd = proc.open(name)
                proc.read_file_pages(fd, pages,
                                     compute_units=self.compute_per_page)
                proc.close(fd)
            # The second pass also reads the .aux from the first.
            if pass_number == 1:
                fd = proc.open("/tex/paper.aux")
                proc.read_file_page(fd, 0)
                proc.close(fd)
            # Write the cross-reference file.
            if pass_number == 0:
                proc.create("/tex/paper.aux")
            fd = proc.open("/tex/paper.aux")
            proc.write_file_page(fd, 0)
            proc.close(fd)
        # Emit the outputs.
        proc.create("/tex/paper.dvi")
        fd = proc.open("/tex/paper.dvi")
        proc.write_file_pages(fd, self.dvi_pages,
                              compute_units=self.compute_per_page)
        proc.close(fd)
        proc.create("/tex/paper.log")
        fd = proc.open("/tex/paper.log")
        proc.write_file_page(fd, 0)
        proc.close(fd)
        proc.exit()


def run(kernel: Kernel, scale: float = 1.0) -> LatexBench:
    workload = LatexBench(scale)
    workload.run(kernel)
    return workload
