"""Benchmark workloads: the paper's three programs, the Section 2.5
alignment microbenchmark, a randomized alias/DMA stressor, and the
Section 3.3 multi-CPU sharing workloads."""

from repro.workloads.afs_bench import AfsBench
from repro.workloads.base import PaperNumbers, Workload
from repro.workloads.kernel_build import KernelBuild
from repro.workloads.latex_bench import LatexBench
from repro.workloads.microbench import AliasLoopResult, run_alias_write_loop
from repro.workloads.random_ops import AliasStressor, RandomOps, StressStats
from repro.workloads.smp import (SmpRingResult, SmpServerResult,
                                 run_smp_ring, run_smp_unix_server)

__all__ = [
    "Workload", "PaperNumbers", "AfsBench", "LatexBench", "KernelBuild",
    "AliasStressor", "RandomOps", "StressStats", "AliasLoopResult",
    "run_alias_write_loop",
    "SmpRingResult", "SmpServerResult", "run_smp_ring",
    "run_smp_unix_server",
]
