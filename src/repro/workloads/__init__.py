"""Benchmark workloads: the paper's three programs, the Section 2.5
alignment microbenchmark, and a randomized alias/DMA stressor."""

from repro.workloads.afs_bench import AfsBench
from repro.workloads.base import PaperNumbers, Workload
from repro.workloads.kernel_build import KernelBuild
from repro.workloads.latex_bench import LatexBench
from repro.workloads.microbench import AliasLoopResult, run_alias_write_loop
from repro.workloads.random_ops import AliasStressor, RandomOps, StressStats

__all__ = [
    "Workload", "PaperNumbers", "AfsBench", "LatexBench", "KernelBuild",
    "AliasStressor", "RandomOps", "StressStats", "AliasLoopResult",
    "run_alias_write_loop",
]
