"""A shared-memory ring buffer between two processes.

Section 2.2 observes that applications rarely need shared memory at
*specific* addresses — "the name of a piece of virtual memory is much
less important than other attributes" — so the VM system is free to pick
aligning addresses.  This workload makes that observation quantitative:
a producer and a consumer exchange records through a shared ring (data
pages plus a control page holding head/tail indices), with the mapping
addresses either chosen by the VM to align or deliberately conflicting.

The unaligned ring turns every index update and every record into
consistency-fault ping-pong; the aligned ring runs at cache speed.  This
is the application-level face of the Section 2.5 microbenchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.prot import Prot
from repro.vm.vm_object import Backing, VMObject

HEAD_WORD = 0     # next slot the producer will fill (control page)
TAIL_WORD = 1     # next slot the consumer will take
WORDS_PER_RECORD = 8


@dataclass(frozen=True)
class RingResult:
    """Measurements from one producer/consumer run."""

    aligned: bool
    records: int
    cycles: int
    consistency_faults: int
    page_flushes: int
    checksum: int

    @property
    def cycles_per_record(self) -> float:
        return self.cycles / self.records if self.records else 0.0


class SharedRing:
    """The ring: one control page plus ``data_pages`` record pages,
    mapped into both tasks."""

    def __init__(self, kernel: Kernel, producer: UserProcess,
                 consumer: UserProcess, data_pages: int = 2,
                 aligned: bool = True):
        self.kernel = kernel
        self.producer = producer
        self.consumer = consumer
        self.data_pages = data_pages
        self.slots_per_page = (kernel.machine.memory.words_per_page
                               // WORDS_PER_RECORD)
        self.capacity = data_pages * self.slots_per_page
        ncp = kernel.machine.dcache.geo.num_cache_pages

        self.ring_object = VMObject(1 + data_pages, Backing.ZERO_FILL)
        self.prod_base = producer.task.map_shared(self.ring_object,
                                                  Prot.READ_WRITE)
        if aligned:
            color = producer.task.space.cache_page_of(self.prod_base)
        else:
            color = (producer.task.space.cache_page_of(self.prod_base)
                     + 1) % ncp
        self.cons_base = consumer.task.map_shared(self.ring_object,
                                                  Prot.READ_WRITE,
                                                  color=color)

    # ---- slot addressing -----------------------------------------------------------

    def _slot(self, base: int, index: int) -> tuple[int, int]:
        slot = index % self.capacity
        page = 1 + slot // self.slots_per_page
        word = (slot % self.slots_per_page) * WORDS_PER_RECORD
        return base + page, word

    # ---- the two sides --------------------------------------------------------------

    def produce(self, value: int) -> None:
        task = self.producer.task
        head = task.read(self.prod_base, HEAD_WORD)
        page, word = self._slot(self.prod_base, head)
        # the record is a contiguous run: one block store
        task.write_block(page, word, (value, value ^ 0xFFFF))
        task.write(self.prod_base, HEAD_WORD, head + 1)

    def consume(self) -> int | None:
        task = self.consumer.task
        tail = task.read(self.cons_base, TAIL_WORD)
        head = task.read(self.cons_base, HEAD_WORD)
        if tail == head:
            return None   # empty
        page, word = self._slot(self.cons_base, tail)
        record = task.read_block(page, word, 2)
        value, check = int(record[0]), int(record[1])
        assert check == value ^ 0xFFFF, "payload corrupted"
        task.write(self.cons_base, TAIL_WORD, tail + 1)
        return value


def run_ring(kernel: Kernel, records: int = 200, data_pages: int = 2,
             aligned: bool = True, batch: int = 4) -> RingResult:
    """Drive ``records`` records through a ring; returns the measurements.

    The producer fills a small batch, then the consumer drains it —
    the alternation pattern that makes unaligned sharing expensive.
    """
    from repro.hw.stats import FaultKind

    producer = UserProcess(kernel, "ring-producer")
    consumer = UserProcess(kernel, "ring-consumer")
    ring = SharedRing(kernel, producer, consumer, data_pages, aligned)

    counters = kernel.machine.counters
    start_cycles = kernel.machine.clock.cycles
    start_faults = counters.faults[FaultKind.CONSISTENCY]
    start_flushes = counters.total_flushes()

    produced = 0
    checksum = 0
    while produced < records:
        burst = min(batch, records - produced,
                    ring.capacity - 1)   # never overfill
        for _ in range(burst):
            ring.produce(produced)
            produced += 1
        for _ in range(burst):
            value = ring.consume()
            assert value is not None
            checksum = (checksum + value) & 0xFFFFFFFF

    result = RingResult(
        aligned=aligned,
        records=records,
        cycles=kernel.machine.clock.cycles - start_cycles,
        consistency_faults=(counters.faults[FaultKind.CONSISTENCY]
                            - start_faults),
        page_flushes=counters.total_flushes() - start_flushes,
        checksum=checksum,
    )
    producer.exit()
    consumer.exit()
    return result
