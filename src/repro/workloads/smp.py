"""Multi-CPU workloads: the paper's sharing patterns on N coherent CPUs.

Section 3.3 claims a cache-coherent multiprocessor changes nothing about
the software alias problem: hardware snooping resolves sharing through
*aligned* addresses (equivalent lines), while *unaligned* sharing keeps
paying the same consistency faults and flush/purge traffic as on one
CPU.  These workloads make the claim measurable:

* :func:`run_smp_ring` — producer/consumer pairs exchanging records
  through shared rings (:mod:`repro.workloads.shmem_ring`), each pair
  split across two CPUs and driven by the deterministic round-robin
  :class:`~repro.kernel.scheduler.Scheduler`.  Aligned rings ride the
  snoop protocol; unaligned rings ping-pong through software
  consistency faults on every CPU.
* :func:`run_smp_unix_server` — the Section 4.2 Unix server on CPU 0
  serving file syscalls from one client per remaining CPU, so every
  request/reply crosses the coherence fabric between the client's cache
  and the server's.  Channel alignment follows the kernel's policy
  (``align_server_pages``), exactly as on the uniprocessor.

The simulator charges every CPU to one shared clock (accesses are
serialized), so these results measure per-record/per-request *cost* —
coherence traffic, faults, flushes, cycles — not parallel throughput.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.hw.stats import FaultKind
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.kernel.scheduler import Scheduler
from repro.workloads.shmem_ring import HEAD_WORD, TAIL_WORD, SharedRing


@dataclass(frozen=True)
class SmpRingResult:
    """Measurements from one multi-CPU ring run."""

    n_cpus: int
    aligned: bool
    pairs: int
    records: int                 # total across all pairs
    cycles: int
    consistency_faults: int
    page_flushes: int
    coherence_invalidations: int
    coherence_writebacks: int
    checksum: int

    @property
    def cycles_per_record(self) -> float:
        return self.cycles / self.records if self.records else 0.0

    def to_dict(self) -> dict:
        data = asdict(self)
        data["cycles_per_record"] = self.cycles_per_record
        return data


@dataclass(frozen=True)
class SmpServerResult:
    """Measurements from one multi-CPU Unix-server run."""

    n_cpus: int
    clients: int
    requests: int
    cycles: int
    consistency_faults: int
    coherence_invalidations: int
    coherence_writebacks: int

    @property
    def cycles_per_request(self) -> float:
        return self.cycles / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        data = asdict(self)
        data["cycles_per_request"] = self.cycles_per_request
        return data


def _n_cpus(kernel: Kernel) -> int:
    cluster = kernel.machine.cluster
    return 1 if cluster is None else len(cluster)


# ---- producer/consumer rings across CPUs -----------------------------------


def _produce(ring: SharedRing, records: int, batch: int):
    task = ring.producer.task
    produced = 0
    while produced < records:
        head = task.read(ring.prod_base, HEAD_WORD)
        tail = task.read(ring.prod_base, TAIL_WORD)
        space = ring.capacity - 1 - (head - tail)
        for _ in range(min(batch, records - produced, space)):
            ring.produce(produced)
            produced += 1
        yield


def _consume(ring: SharedRing, records: int, batch: int, sink: list):
    consumed = 0
    while consumed < records:
        for _ in range(batch):
            value = ring.consume()
            if value is None:
                break
            sink[0] = (sink[0] + value) & 0xFFFFFFFF
            consumed += 1
        yield


def run_smp_ring(kernel: Kernel, records_per_pair: int = 120,
                 data_pages: int = 2, aligned: bool = True,
                 batch: int = 4) -> SmpRingResult:
    """Drive one ring per CPU pair through the round-robin scheduler.

    With N CPUs there are ``max(1, N // 2)`` rings; pair ``p`` places
    its producer on CPU ``2p mod N`` and its consumer on ``(2p+1) mod
    N``, so from two CPUs up every ring's control and data pages bounce
    between two caches.  All rings interleave in one deterministic
    schedule — the contention pattern, not just the totals, is
    reproducible.
    """
    n = _n_cpus(kernel)
    pairs = max(1, n // 2)
    scheduler = Scheduler(kernel)

    rings = []
    sinks = []
    for p in range(pairs):
        prod_cpu, cons_cpu = (2 * p) % n, (2 * p + 1) % n
        producer = UserProcess(kernel, f"ring{p}-producer",
                               task=kernel.create_task(f"ring{p}-producer",
                                                       cpu=prod_cpu))
        consumer = UserProcess(kernel, f"ring{p}-consumer",
                               task=kernel.create_task(f"ring{p}-consumer",
                                                       cpu=cons_cpu))
        ring = SharedRing(kernel, producer, consumer, data_pages, aligned)
        sink = [0]
        scheduler.spawn(f"ring{p}-produce",
                        _produce(ring, records_per_pair, batch), cpu=prod_cpu)
        scheduler.spawn(f"ring{p}-consume",
                        _consume(ring, records_per_pair, batch, sink),
                        cpu=cons_cpu)
        rings.append(ring)
        sinks.append(sink)

    counters = kernel.machine.counters
    start_cycles = kernel.machine.clock.cycles
    start_faults = counters.faults[FaultKind.CONSISTENCY]
    start_flushes = counters.total_flushes()
    start_inval = counters.coherence_invalidations
    start_wb = counters.coherence_writebacks

    scheduler.run()

    expected = sum(range(records_per_pair)) & 0xFFFFFFFF
    checksum = 0
    for sink in sinks:
        assert sink[0] == expected, "ring payload corrupted"
        checksum = (checksum + sink[0]) & 0xFFFFFFFF

    result = SmpRingResult(
        n_cpus=n,
        aligned=aligned,
        pairs=pairs,
        records=pairs * records_per_pair,
        cycles=kernel.machine.clock.cycles - start_cycles,
        consistency_faults=(counters.faults[FaultKind.CONSISTENCY]
                            - start_faults),
        page_flushes=counters.total_flushes() - start_flushes,
        coherence_invalidations=(counters.coherence_invalidations
                                 - start_inval),
        coherence_writebacks=counters.coherence_writebacks - start_wb,
        checksum=checksum,
    )
    for ring in rings:
        ring.producer.exit()
        ring.consumer.exit()
    return result


# ---- the Unix server under multi-CPU load ----------------------------------


def _client(proc: UserProcess, name: str, pages: int, rounds: int,
            counter: list):
    proc.create(name)
    fd = proc.open(name)
    counter[0] += 2
    yield
    for _ in range(rounds):
        for page in range(pages):
            proc.write_file_page(fd, page)
            counter[0] += 1
            yield
        for page in range(pages):
            proc.read_file_page(fd, page)
            counter[0] += 1
            yield
    proc.close(fd)
    counter[0] += 1


def run_smp_unix_server(kernel: Kernel, pages_per_client: int = 3,
                        rounds: int = 2) -> SmpServerResult:
    """One file-syscall client per non-server CPU, served by the Unix
    server on CPU 0 (asid 1 binds there by construction).

    Every syscall moves request and reply pages between the client's
    cache and the server's, through whatever channel alignment the
    kernel's policy picked — the cross-CPU version of the Section 4.2
    measurement.  On one CPU the single client shares CPU 0 with the
    server (the degenerate baseline).
    """
    n = _n_cpus(kernel)
    scheduler = Scheduler(kernel)
    client_cpus = list(range(1, n)) or [0]
    requests = [0]
    procs = []
    for cpu in client_cpus:
        proc = UserProcess(kernel, f"smp-client{cpu}",
                           task=kernel.create_task(f"smp-client{cpu}",
                                                   cpu=cpu))
        scheduler.spawn(f"smp-client{cpu}",
                        _client(proc, f"/smp/c{cpu}", pages_per_client,
                                rounds, requests),
                        cpu=cpu)
        procs.append(proc)

    counters = kernel.machine.counters
    start_cycles = kernel.machine.clock.cycles
    start_faults = counters.faults[FaultKind.CONSISTENCY]
    start_inval = counters.coherence_invalidations
    start_wb = counters.coherence_writebacks

    scheduler.run()

    result = SmpServerResult(
        n_cpus=n,
        clients=len(client_cpus),
        requests=requests[0],
        cycles=kernel.machine.clock.cycles - start_cycles,
        consistency_faults=(counters.faults[FaultKind.CONSISTENCY]
                            - start_faults),
        coherence_invalidations=(counters.coherence_invalidations
                                 - start_inval),
        coherence_writebacks=counters.coherence_writebacks - start_wb,
    )
    for proc in procs:
        proc.exit()
    return result
