"""Section 3.3: applying the consistency model to other architectures.

The paper shows the model specializes cleanly:

* **Write-through caches** — memory is never stale with respect to the
  cache, so the Dirty state collapses into Present and the Flush
  operation disappears.
* **Physically indexed caches** — all similarly mapped virtual addresses
  naturally align, so the "other unaligned lines" column is irrelevant;
  only DMA creates consistency problems.
* **DMA through the cache** — CPU-read/DMA-read fold into a single *read*
  and CPU-write/DMA-write into a single *write*, each using the CPU
  transition rules.
* **Set-associative caches / cache-coherent multiprocessors** — no rule
  changes: hardware guarantees a physical tag is unique within a set (or
  across the distributed set), so the same transitions apply per set.

Each variant here is derived *programmatically* from the canonical
Table 2, which keeps the derivations honest: the tests assert structural
facts like "the write-through tables contain no FLUSH action" rather than
trusting hand-copied tables.
"""

from __future__ import annotations

from repro.core.model import ConsistencyModel, RequiredAction
from repro.core.states import Action, LineState, MemoryOp
from repro.core.transitions import OTHER_TRANSITIONS, TARGET_TRANSITIONS
from repro.errors import ReproError

TransitionTable = dict[tuple[MemoryOp, LineState], tuple[Action, LineState]]


def _collapse_dirty(table: TransitionTable) -> TransitionTable:
    """Derive a write-through table: drop Dirty rows, map Dirty results to
    Present.  Flush actions only ever apply to Dirty lines, so none
    survive the derivation."""
    out: TransitionTable = {}
    for (op, state), (action, nxt) in table.items():
        if state is LineState.DIRTY:
            continue
        if nxt is LineState.DIRTY:
            nxt = LineState.PRESENT
        out[(op, state)] = (action, nxt)
    return out


WRITE_THROUGH_TARGET: TransitionTable = _collapse_dirty(TARGET_TRANSITIONS)
WRITE_THROUGH_OTHER: TransitionTable = _collapse_dirty(OTHER_TRANSITIONS)


class WriteThroughModel(ConsistencyModel):
    """The model specialized to a write-through cache: three states, no
    flushes.  Aliases can still be stale (a write through one alias leaves
    old data cached under unaligned aliases), so Purge survives."""

    def _apply_with_target(self, op, target):
        self._check_state_domain()
        actions: list[RequiredAction] = []
        for c in range(self.num_cache_pages):
            if c == target:
                continue
            action, nxt = WRITE_THROUGH_OTHER[(op, self.states[c])]
            if action != Action.NONE:
                actions.append(RequiredAction(action, c))
            self.states[c] = nxt
        action, nxt = WRITE_THROUGH_TARGET[(op, self.states[target])]
        if action != Action.NONE:
            actions.append(RequiredAction(action, target))
        self.states[target] = nxt
        return actions

    def apply(self, op, target_cache_page=None):
        if op.is_cpu or op.is_cache_op:
            if target_cache_page is None:
                raise ReproError(f"{op} requires a target cache page")
            return self._apply_with_target(op, target_cache_page)
        self._check_state_domain()
        actions: list[RequiredAction] = []
        for c in range(self.num_cache_pages):
            action, nxt = WRITE_THROUGH_OTHER[(op, self.states[c])]
            if action != Action.NONE:
                actions.append(RequiredAction(action, c))
            self.states[c] = nxt
        return actions

    def _check_state_domain(self):
        if LineState.DIRTY in self.states:
            raise ReproError("write-through model cannot hold a Dirty line")


class PhysicallyIndexedModel:
    """The model specialized to a physically indexed cache.

    Every alias selects the same cache location, so one state per physical
    page suffices and only the target column applies.  DMA remains the
    sole source of inconsistency; the write-back/write-through split is
    still just the presence or absence of the Dirty state.
    """

    def __init__(self, write_through: bool = False):
        self.write_through = write_through
        self.state = LineState.EMPTY

    def apply(self, op: MemoryOp) -> list[RequiredAction]:
        table = WRITE_THROUGH_TARGET if self.write_through else TARGET_TRANSITIONS
        action, nxt = table[(op, self.state)]
        self.state = nxt
        if action != Action.NONE:
            return [RequiredAction(action, 0)]
        return []


class PhysicallyIndexedPageModel(ConsistencyModel):
    """The physically indexed variant in monitor-drivable, per-frame form.

    :class:`PhysicallyIndexedModel` states the Section 3.3 derivation at
    its purest — one state, target column only.  The lockstep monitor,
    however, shadows a physical frame with one state per *cache page*, so
    this class presents the same derivation on that interface: every
    column evolves by the **target** table alone.  Physical indexing
    means a frame occupies exactly one cache page (all aliases naturally
    align), so the "others" column of Table 2 is vacuous — the unused
    columns simply stay Empty forever, and DMA (which addresses the frame
    wherever it is cached) applies the target table to each column.
    """

    def __init__(self, num_cache_pages: int, write_through: bool = False):
        super().__init__(num_cache_pages)
        self.write_through = write_through

    def apply(self, op, target_cache_page=None):
        table = (WRITE_THROUGH_TARGET if self.write_through
                 else TARGET_TRANSITIONS)
        if self.write_through and LineState.DIRTY in self.states:
            raise ReproError("write-through model cannot hold a Dirty line")
        if op.is_cpu or op.is_cache_op:
            if target_cache_page is None:
                raise ReproError(f"{op} requires a target cache page")
            columns = [target_cache_page]
        else:
            columns = range(self.num_cache_pages)
        actions: list[RequiredAction] = []
        for c in columns:
            action, nxt = table[(op, self.states[c])]
            if action != Action.NONE:
                actions.append(RequiredAction(action, c))
            self.states[c] = nxt
        return actions


class DmaThroughCacheModel(ConsistencyModel):
    """The model for hardware where DMA accesses go through the cache:
    CPU-read/DMA-read fold into *read*, CPU-write/DMA-write into *write*,
    both using the CPU transition rules (the device behaves like another
    source of CPU accesses through some virtual window)."""

    _FOLD = {
        MemoryOp.DMA_READ: MemoryOp.CPU_READ,
        MemoryOp.DMA_WRITE: MemoryOp.CPU_WRITE,
    }

    def apply(self, op, target_cache_page=None):
        op = self._FOLD.get(op, op)
        if target_cache_page is None:
            raise ReproError(
                "DMA through the cache addresses a virtual window; "
                "a target cache page is always required")
        return super().apply(op, target_cache_page)


def model_factory_for_geometry(geometry) -> "type | callable":
    """The derived Table 2 a cache of this geometry must be shadowed with.

    Returns a callable ``factory(num_cache_pages) -> model`` — the hook
    the lockstep monitor and exhaustive checker use to verify every
    hierarchy configuration against its *derived* table:

    * write-through → :class:`WriteThroughModel` (Dirty collapsed,
      no Flush);
    * physically indexed → :class:`PhysicallyIndexedPageModel`
      (target column only; composes with write-through);
    * everything else — any associativity, victim cache, or L2 —
      → the canonical :class:`ConsistencyModel`, *unchanged*: that is
      Section 3.3's claim (:func:`set_associative_note`,
      :func:`multiprocessor_note`), and the lower hierarchy levels hold
      only memory-equal copies so they add no consistency state.
    """
    return model_factory_by_name(model_name_for_geometry(geometry))


def model_name_for_geometry(geometry) -> str:
    """The farm-spec name of the derived table for this geometry (the
    JSON-scalar form of :func:`model_factory_for_geometry`)."""
    if geometry.physically_indexed:
        return "pi+wt" if geometry.write_through else "pi"
    return "wt" if geometry.write_through else "canonical"


_MODEL_FACTORIES = {
    "canonical": ConsistencyModel,
    "wt": WriteThroughModel,
    "pi": lambda ncp: PhysicallyIndexedPageModel(ncp),
    "pi+wt": lambda ncp: PhysicallyIndexedPageModel(ncp, write_through=True),
}


def model_factory_by_name(name: str):
    """Resolve a derived-table name (as carried in a farm job spec) to a
    ``factory(num_cache_pages) -> model`` callable."""
    try:
        return _MODEL_FACTORIES[name]
    except KeyError:
        raise ReproError(f"unknown consistency-model variant {name!r}; "
                         f"expected one of {sorted(_MODEL_FACTORIES)}")


def set_associative_note() -> str:
    """Section 3.3's observation for set-associative caches, as checkable
    documentation: the rules are unchanged because physical tags are
    unique within a set."""
    return ("Set-associative caches: consistency rules unchanged; hardware "
            "guarantees the physical tags within a set are unique, so a "
            "physical line has at most one copy per set and the per-set "
            "behaviour matches the direct-mapped model.")


def multiprocessor_note() -> str:
    """Section 3.3's observation for cache-coherent multiprocessors."""
    return ("Cache-coherent multiprocessors: the per-processor caches form "
            "a distributed set-associative cache; hardware keeps the "
            "intra-set (inter-cache) copies consistent, so the transition "
            "rules again apply without change.")
