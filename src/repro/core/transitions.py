"""Table 2: the cache-line state transitions, encoded as data.

For each operation applied to a target virtual address, the table gives
the transition (and required consistency action) for

* the **target** cache line — the one selected by the cache index
  function for the target virtual address, and
* **all other** cache lines that share the same physical mapping but do
  not align with the target.

Normalization notes (documented divergences from the scanned table, whose
OCR is internally inconsistent; see DESIGN.md):

* For DMA operations the paper states that "all cache lines that contain
  the physical address referenced by the DMA operation share the same
  transitions", so the target and other columns are identical for
  DMA-read and DMA-write.
* A flush physically removes a line from the cache, so a flushed dirty
  line transitions to EMPTY.  (The model is allowed to be *pessimistic* —
  a PRESENT model state for a physically absent line is sound — but the
  canonical table here uses the precise post-states.)
* The prose requires that "a CPU-write to a stale line requires purging",
  after which the written line is DIRTY; the table encodes S -(purge)-> D
  for the CPU-write target accordingly.
* A CPU write-allocate fills the rest of the line from memory, so a dirty
  unaligned alias must be *flushed* (not merely invalidated) before a
  CPU-read **or** CPU-write through another alias; otherwise the fill
  would read stale memory.
"""

from __future__ import annotations

from repro.core.states import Action, LineState, MemoryOp

E, P, D, S = (LineState.EMPTY, LineState.PRESENT, LineState.DIRTY,
              LineState.STALE)
NONE, PURGE, FLUSH = Action.NONE, Action.PURGE, Action.FLUSH

# (operation, current state) -> (required action, next state)
TARGET_TRANSITIONS: dict[tuple[MemoryOp, LineState],
                         tuple[Action, LineState]] = {
    (MemoryOp.CPU_READ, E): (NONE, P),
    (MemoryOp.CPU_READ, P): (NONE, P),
    (MemoryOp.CPU_READ, D): (NONE, D),
    (MemoryOp.CPU_READ, S): (PURGE, P),

    (MemoryOp.CPU_WRITE, E): (NONE, D),
    (MemoryOp.CPU_WRITE, P): (NONE, D),
    (MemoryOp.CPU_WRITE, D): (NONE, D),
    (MemoryOp.CPU_WRITE, S): (PURGE, D),

    (MemoryOp.DMA_READ, E): (NONE, E),
    (MemoryOp.DMA_READ, P): (NONE, P),
    (MemoryOp.DMA_READ, D): (FLUSH, E),
    (MemoryOp.DMA_READ, S): (NONE, S),

    (MemoryOp.DMA_WRITE, E): (NONE, E),
    (MemoryOp.DMA_WRITE, P): (NONE, S),
    (MemoryOp.DMA_WRITE, D): (PURGE, E),
    (MemoryOp.DMA_WRITE, S): (NONE, S),

    (MemoryOp.PURGE, E): (NONE, E),
    (MemoryOp.PURGE, P): (NONE, E),
    (MemoryOp.PURGE, D): (NONE, E),
    (MemoryOp.PURGE, S): (NONE, E),

    (MemoryOp.FLUSH, E): (NONE, E),
    (MemoryOp.FLUSH, P): (NONE, E),
    (MemoryOp.FLUSH, D): (NONE, E),
    (MemoryOp.FLUSH, S): (NONE, E),
}

# Transitions for all similarly mapped but unaligned cache lines.
OTHER_TRANSITIONS: dict[tuple[MemoryOp, LineState],
                        tuple[Action, LineState]] = {
    (MemoryOp.CPU_READ, E): (NONE, E),
    (MemoryOp.CPU_READ, P): (NONE, P),
    (MemoryOp.CPU_READ, D): (FLUSH, E),
    (MemoryOp.CPU_READ, S): (NONE, S),

    (MemoryOp.CPU_WRITE, E): (NONE, E),
    (MemoryOp.CPU_WRITE, P): (NONE, S),
    (MemoryOp.CPU_WRITE, D): (FLUSH, E),
    (MemoryOp.CPU_WRITE, S): (NONE, S),

    # DMA does not go through the cache: same transitions as the target.
    (MemoryOp.DMA_READ, E): (NONE, E),
    (MemoryOp.DMA_READ, P): (NONE, P),
    (MemoryOp.DMA_READ, D): (FLUSH, E),
    (MemoryOp.DMA_READ, S): (NONE, S),

    (MemoryOp.DMA_WRITE, E): (NONE, E),
    (MemoryOp.DMA_WRITE, P): (NONE, S),
    (MemoryOp.DMA_WRITE, D): (PURGE, E),
    (MemoryOp.DMA_WRITE, S): (NONE, S),

    # Purge/flush of the target address leave other lines unchanged.
    (MemoryOp.PURGE, E): (NONE, E),
    (MemoryOp.PURGE, P): (NONE, P),
    (MemoryOp.PURGE, D): (NONE, D),
    (MemoryOp.PURGE, S): (NONE, S),

    (MemoryOp.FLUSH, E): (NONE, E),
    (MemoryOp.FLUSH, P): (NONE, P),
    (MemoryOp.FLUSH, D): (NONE, D),
    (MemoryOp.FLUSH, S): (NONE, S),
}


def target_transition(op: MemoryOp,
                      state: LineState) -> tuple[Action, LineState]:
    """Required (action, next state) for the target cache line."""
    return TARGET_TRANSITIONS[(op, state)]


def other_transition(op: MemoryOp,
                     state: LineState) -> tuple[Action, LineState]:
    """Required (action, next state) for an unaligned similarly mapped line."""
    return OTHER_TRANSITIONS[(op, state)]


def render_table2() -> str:
    """Regenerate Table 2 as text, in the paper's layout."""
    lines = ["Operation     | Target line        | Other unaligned lines",
             "--------------+--------------------+----------------------"]
    for op in MemoryOp:
        for i, state in enumerate(LineState):
            t_act, t_next = TARGET_TRANSITIONS[(op, state)]
            o_act, o_next = OTHER_TRANSITIONS[(op, state)]
            t_arrow = (f"{state} -({t_act})-> {t_next}" if t_act != NONE
                       else f"{state} -> {t_next}")
            o_arrow = (f"{state} -({o_act})-> {o_next}" if o_act != NONE
                       else f"{state} -> {o_next}")
            label = str(op) if i == 0 else ""
            lines.append(f"{label:<13} | {t_arrow:<18} | {o_arrow}")
    return "\n".join(lines)
