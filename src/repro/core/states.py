"""Consistency states and memory-system events (Section 3.2).

For any virtual address, a cache line is in one of four states:

* **EMPTY** — the line does not contain the data at that virtual address;
  an access misses and transfers a value from main memory.
* **PRESENT** — the line contains the correct data for the address.
* **DIRTY** — like PRESENT, but the line has been written by the CPU and
  may be inconsistent with memory or another cache line.
* **STALE** — the line's data for the cached physical address is
  inconsistent with a more recently written version in memory or in
  another cache line.

Six events change consistency state: CPU-read, CPU-write, DMA-read,
DMA-write, Purge and Flush.  The first four can create inconsistencies;
the last two resolve them.
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """The four consistency states of a cache line (or cache page)."""

    EMPTY = "E"
    PRESENT = "P"
    DIRTY = "D"
    STALE = "S"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MemoryOp(enum.Enum):
    """The six events of the consistency model."""

    CPU_READ = "CPU-read"
    CPU_WRITE = "CPU-write"
    DMA_READ = "DMA-read"       # device reads memory
    DMA_WRITE = "DMA-write"     # device writes memory
    PURGE = "Purge"
    FLUSH = "Flush"

    @property
    def is_cpu(self) -> bool:
        return self in (MemoryOp.CPU_READ, MemoryOp.CPU_WRITE)

    @property
    def is_dma(self) -> bool:
        return self in (MemoryOp.DMA_READ, MemoryOp.DMA_WRITE)

    @property
    def is_cache_op(self) -> bool:
        return self in (MemoryOp.PURGE, MemoryOp.FLUSH)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Action(enum.Enum):
    """Cache consistency operation required to force a transition."""

    NONE = "-"
    PURGE = "purge"
    FLUSH = "flush"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# The event alphabet, grouped as Table 2 groups it.  These are THE
# module-level definitions every enumerator builds from — the exhaustive
# checker and the conformance explorer share them (a sync test asserts
# the derived alphabets agree), so a new event added here reaches both.

#: targeted events: each pairs with a cache page (Table 2's CPU rows).
CPU_EVENTS = (MemoryOp.CPU_READ, MemoryOp.CPU_WRITE)
#: untargeted events: DMA acts on the physical page (Table 2's DMA rows).
DMA_EVENTS = (MemoryOp.DMA_READ, MemoryOp.DMA_WRITE)
#: explicit cache management (Table 2's last rows); these never *require*
#: actions, so the exhaustive refinement check leaves them out by default.
CACHE_OP_EVENTS = (MemoryOp.PURGE, MemoryOp.FLUSH)
#: an engine Action rendered as the event the model consumes.
ACTION_EVENT = {Action.PURGE: MemoryOp.PURGE, Action.FLUSH: MemoryOp.FLUSH}
