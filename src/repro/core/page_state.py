"""Per-physical-page consistency state (Table 3) and the mapping list.

Each resident physical page ``p`` is represented by a structure holding:

* ``mappings`` — the list of virtual mappings for the page,
* ``mapped`` — a bit vector with one bit per cache page, indicating which
  cache pages may contain data from ``p``,
* ``stale`` — a bit vector indicating which cache pages may contain
  *stale* data from ``p``,
* ``cache_dirty`` — a single bit: the page may be dirty within a cache
  page; that cache page is the (unique) one whose ``mapped`` bit is set.

The decoding into the four consistency states follows Table 3:

====================  ==========  =========  ============
Cache page state       mapped[c]   stale[c]   cache_dirty
====================  ==========  =========  ============
Empty                  false       false      —
Present                true        false      false
Dirty                  true        false      true
Stale                  false       true       —
====================  ==========  =========  ============

State exists only for physically resident pages; the virtual memory
system already denies access to non-resident ones (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitvector import BitVector
from repro.core.states import LineState
from repro.errors import ReproError


@dataclass
class Mapping:
    """One virtual mapping of a physical page.

    ``modified`` mirrors the hardware page-modified bit: the paper's
    implementation "sets P[p].cache_dirty whenever the virtual memory
    system sets the page-modified bit yet the number of mapped bits is
    one" (Section 4.1), avoiding a write fault on every re-dirtying of a
    page whose mapping is already writable.
    """

    asid: int
    vpage: int
    modified: bool = False

    @property
    def key(self) -> tuple[int, int]:
        return (self.asid, self.vpage)


class PhysPageState:
    """Consistency bookkeeping for one physical page frame."""

    def __init__(self, ppage: int, num_cache_pages: int,
                 num_icache_pages: int | None = None):
        self.ppage = ppage
        self.num_cache_pages = num_cache_pages
        self.mapped = BitVector(num_cache_pages)
        self.stale = BitVector(num_cache_pages)
        self.cache_dirty = False
        self.mappings: list[Mapping] = []
        # Separate state for the instruction cache (Section 4.1: "it is
        # necessary to maintain cache page state for both caches").  The
        # icache never holds dirty data, so two bit vectors suffice.
        ni = num_icache_pages if num_icache_pages is not None else num_cache_pages
        self.imapped = BitVector(ni)
        self.istale = BitVector(ni)
        # Cache page and virtual page of the most recent mapping, kept
        # across unmaps so a new mapping (or the free-list allocator) can
        # align with it; ``last_vpage`` also supports the Tut emulation,
        # which keeps consistency state per virtual address.
        self.last_cache_page: int | None = None
        self.last_vpage: int | None = None
        # The frame is accessed uncached (Sun-style alias handling): no
        # cache state exists while this is set.
        self.uncached = False
        # The frame backs a superpage region (physically contiguous,
        # index-aligned): its cache index is physically determined, so a
        # superpage-aware policy (VESPA) can skip alias management.
        self.superpage = False
        # On a physically indexed cache every virtual address of this
        # frame selects the same cache page (derived from the physical
        # page), so all aliases align by construction (Section 3.3).
        # The two caches may be indexed differently; track them apart.
        self.pa_indexed = False
        self.ipa_indexed = False

    # ---- decoding (Table 3) --------------------------------------------------

    def decode(self, cache_page: int) -> LineState:
        """The consistency state of ``cache_page`` with respect to this
        physical page, per Table 3."""
        if self.stale[cache_page]:
            return LineState.STALE
        if not self.mapped[cache_page]:
            return LineState.EMPTY
        if self.cache_dirty and self.find_mapped_cache_page() == cache_page:
            return LineState.DIRTY
        return LineState.PRESENT

    def find_mapped_cache_page(self) -> int:
        """The cache page holding this page's (unique) dirty data.

        Mirrors the paper's ``find_mapped_cache_page``; meaningful when
        ``cache_dirty`` is set, in which case exactly one mapped bit is on.
        """
        first = self.mapped.first()
        if first is None:
            raise ReproError(
                f"find_mapped_cache_page on frame {self.ppage} with no "
                f"mapped cache page")
        return first

    # ---- invariants -------------------------------------------------------------

    def validate(self) -> None:
        """Raise if the encoding violates its structural invariants."""
        for c in range(self.num_cache_pages):
            if self.mapped[c] and self.stale[c]:
                raise ReproError(
                    f"frame {self.ppage}: cache page {c} both mapped and stale")
        if self.cache_dirty and self.mapped.count() != 1:
            raise ReproError(
                f"frame {self.ppage}: cache_dirty with "
                f"{self.mapped.count()} mapped cache pages (must be 1)")

    # ---- mapping list ---------------------------------------------------------

    def add_mapping(self, asid: int, vpage: int) -> Mapping:
        existing = self.find_mapping(asid, vpage)
        if existing is not None:
            return existing
        mapping = Mapping(asid, vpage)
        self.mappings.append(mapping)
        return mapping

    def remove_mapping(self, asid: int, vpage: int) -> Mapping | None:
        mapping = self.find_mapping(asid, vpage)
        if mapping is not None:
            self.mappings.remove(mapping)
        return mapping

    def find_mapping(self, asid: int, vpage: int) -> Mapping | None:
        for mapping in self.mappings:
            if mapping.asid == asid and mapping.vpage == vpage:
                return mapping
        return None

    def cache_page_of(self, vpage: int) -> int:
        if self.pa_indexed:
            return self.ppage % self.num_cache_pages
        return vpage % self.num_cache_pages

    def icache_page_of(self, vpage: int) -> int:
        if self.ipa_indexed:
            return self.ppage % self.imapped.width
        return vpage % self.imapped.width

    def reset(self) -> None:
        """Forget all consistency state (used by eager policies after they
        have cleaned the cache, and when a frame is reused from scratch)."""
        self.mapped.clear_all()
        self.stale.clear_all()
        self.imapped.clear_all()
        self.istale.clear_all()
        self.cache_dirty = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        states = "".join(str(self.decode(c))
                         for c in range(self.num_cache_pages))
        return (f"PhysPageState(p={self.ppage}, states={states}, "
                f"dirty={self.cache_dirty}, mappings={len(self.mappings)})")
