"""Bounded exhaustive checking of the consistency machinery.

The hypothesis suites sample the behaviour space; this module *covers*
it, for small parameters: every sequence of memory events up to a given
depth over a given number of cache pages is enumerated, and for each
step three judgments are made:

1. the model's single-dirty invariant holds (Section 3.2);
2. the Figure 1 engine's page state stays structurally valid (Table 3);
3. the engine performs every action the model requires (refinement) —
   with a flush accepted where a purge is required, since a flush also
   removes the line.

The walk is a depth-first search that shares common prefixes (one model
and one engine state, snapshotted and restored around each branch) and
deduplicates on the combined (model, engine) state: the judgments at a
node depend only on the current state, so a subtree rooted at a state
already explored with at least as much remaining depth cannot contain a
new violation and is counted without being replayed.  That collapses the
8^6 = 262,144 sequences of the depth-6 / 3-page default to a few hundred
engine calls, so the full run stays well under a second.  This is the
strongest correctness statement in the repository short of a real proof:
*no* event sequence within the bound can make the implementation skip a
required consistency action.

The event alphabet is shared with the conformance explorer
(:mod:`repro.conformance.explorer`), which extends it with explicit
Purge/Flush events (``include_cache_ops=True``) — those rows of Table 2
never require actions, so the exhaustive refinement check keeps the
default alphabet of inconsistency-*creating* events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache_control import CacheControl
from repro.core.model import ConsistencyModel
from repro.core.page_state import PhysPageState
from repro.core.states import (CACHE_OP_EVENTS, CPU_EVENTS, DMA_EVENTS,
                               Action, MemoryOp)


def event_alphabet(num_cache_pages: int, include_cache_ops: bool = False
                   ) -> list[tuple[MemoryOp, int | None]]:
    """All distinct events over ``num_cache_pages`` cache pages.

    Built from the module-level event groups in :mod:`repro.core.states`
    (the one definition the conformance explorer shares).  With
    ``include_cache_ops`` the alphabet also carries explicit Purge and
    Flush events per cache page (the last two rows of Table 2), which
    the conformance explorer drives directly at the page-state level.
    """
    events: list[tuple[MemoryOp, int | None]] = []
    for op in CPU_EVENTS:
        for target in range(num_cache_pages):
            events.append((op, target))
    for op in DMA_EVENTS:
        events.append((op, None))
    if include_cache_ops:
        for op in CACHE_OP_EVENTS:
            for target in range(num_cache_pages):
                events.append((op, target))
    return events


@dataclass
class CheckReport:
    """What an exhaustive run covered.

    ``sequences`` counts complete depth-``depth`` event sequences whose
    every step was judged (directly or via a deduplicated subtree);
    ``steps`` counts the engine transitions actually executed.  A report
    produced by a prefix shard (see :func:`shard_prefixes`) records the
    alphabet-index prefix it covered; :func:`merge_reports` combines the
    shards back into the full-space report.
    """

    num_cache_pages: int
    depth: int
    sequences: int
    steps: int
    violations: list[str]
    prefix: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {"num_cache_pages": self.num_cache_pages,
                "depth": self.depth, "sequences": self.sequences,
                "steps": self.steps, "violations": list(self.violations),
                "prefix": list(self.prefix)}

    @classmethod
    def from_dict(cls, data: dict) -> "CheckReport":
        return cls(num_cache_pages=data["num_cache_pages"],
                   depth=data["depth"], sequences=data["sequences"],
                   steps=data["steps"],
                   violations=list(data["violations"]),
                   prefix=tuple(data.get("prefix", ())))


def shard_prefixes(num_cache_pages: int,
                   shard_depth: int = 1) -> list[tuple[int, ...]]:
    """Every alphabet-index prefix of length ``shard_depth``: the shard
    space of one exhaustive run.  Each prefix names a disjoint subtree of
    the event-sequence space, so the shards can be checked independently
    (on the farm) and merged; their union is exactly the full run."""
    fanout = len(event_alphabet(num_cache_pages))
    prefixes: list[tuple[int, ...]] = [()]
    for _ in range(shard_depth):
        prefixes = [p + (i,) for p in prefixes for i in range(fanout)]
    return prefixes


def merge_reports(reports: list[CheckReport]) -> CheckReport:
    """Combine per-prefix shard reports into the full-space report.

    Callers are expected to pass one report per prefix of a complete
    :func:`shard_prefixes` shard space; sequence and step counts add up
    (the subtrees are disjoint) and violations concatenate.
    """
    if not reports:
        raise ValueError("no shard reports to merge")
    first = reports[0]
    violations: list[str] = []
    for report in reports:
        violations += report.violations
    return CheckReport(num_cache_pages=first.num_cache_pages,
                       depth=first.depth,
                       sequences=sum(r.sequences for r in reports),
                       steps=sum(r.steps for r in reports),
                       violations=violations)


class _ActionCollector:
    def __init__(self) -> None:
        self.performed: set[tuple[Action, int]] = set()

    def flush(self, cache_page, ppage, reason):
        self.performed.add((Action.FLUSH, cache_page))

    def purge(self, cache_page, ppage, reason):
        self.performed.add((Action.PURGE, cache_page))

    def protect(self, mapping, prot):
        pass

    def satisfied(self, action: Action, cache_page: int) -> bool:
        if (action, cache_page) in self.performed:
            return True
        # A flush removes the line too, so it satisfies a purge demand.
        return (action is Action.PURGE
                and (Action.FLUSH, cache_page) in self.performed)


def check_all_sequences(num_cache_pages: int = 3, depth: int = 6,
                        stop_at_first: bool = True,
                        dedup: bool = True,
                        prefix: tuple[int, ...] = (),
                        model_factory=ConsistencyModel) -> CheckReport:
    """Cover every event sequence up to ``depth`` and check the three
    judgments at every step.  Returns a report; ``ok`` means no sequence
    violated anything.  ``dedup=False`` disables the state deduplication
    (every prefix is walked explicitly; used to validate the dedup).

    ``prefix`` restricts the walk to the subtree whose first events are
    the given alphabet indices (see :func:`shard_prefixes`): those events
    are applied — and judged — first, then every suffix of the remaining
    depth is covered.  ``depth`` stays the *total* sequence depth, so the
    reports of a full shard space merge into exactly the unsharded run.

    ``model_factory`` selects which derived Table 2 the Section 4 engine
    is checked against — ``factory(num_cache_pages) -> model``, e.g. a
    :mod:`repro.core.variants` class.  Soundness: the engine performs the
    canonical actions, every variant demands a subset of them, and the
    variant's own state invariants are validated at each step.  (The
    physically indexed variant must run at ``num_cache_pages=1``: its
    hardware maps each frame to a single cache page, which the
    multi-target event alphabet would otherwise contradict.)
    """
    alphabet = event_alphabet(num_cache_pages)
    if len(prefix) > depth:
        raise ValueError(f"prefix of length {len(prefix)} exceeds "
                         f"depth {depth}")
    violations: list[str] = []
    sequences = 0
    steps = 0

    model = model_factory(num_cache_pages)
    state = PhysPageState(0, num_cache_pages)
    collector = _ActionCollector()
    engine = CacheControl(collector.flush, collector.purge,
                          collector.protect)
    path: list[tuple[MemoryOp, int | None]] = []
    # (remaining depth, model states, mapped, stale, dirty) -> judged.
    visited: set[tuple] = set()
    fanout = len(alphabet)

    def snapshot() -> tuple:
        return (tuple(model.states), state.mapped._bits, state.stale._bits,
                state.cache_dirty)

    def restore(snap: tuple) -> None:
        model.states = list(snap[0])
        state.mapped._bits = snap[1]
        state.stale._bits = snap[2]
        state.cache_dirty = snap[3]

    def judge(op: MemoryOp, target: int | None) -> bool:
        """Apply one event to both sides and judge it; True == violated."""
        nonlocal steps
        steps += 1
        required = model.apply(op, target)
        collector.performed.clear()
        engine(state, op, target if op.is_cpu else None,
               need_data=(op is not MemoryOp.DMA_WRITE))
        try:
            model.validate()
            state.validate()
        except Exception as error:  # structural invariant broken
            violations.append(f"{tuple(path)}: invariant: {error}")
            return True
        missing = [a for a in required
                   if not collector.satisfied(a.action, a.cache_page)]
        if missing:
            violations.append(f"{tuple(path)}: engine skipped {missing}")
            return True
        return False

    def visit(remaining: int) -> bool:
        """Walk all suffixes of the current state; True aborts the search."""
        nonlocal sequences
        if remaining == 0:
            sequences += 1
            return False
        if dedup:
            key = (remaining,) + snapshot()
            if key in visited:
                sequences += fanout ** remaining
                return False
            visited.add(key)
        snap = snapshot()
        for op, target in alphabet:
            path.append((op, target))
            if judge(op, target):
                path.pop()
                restore(snap)
                if stop_at_first:
                    return True
                continue
            if visit(remaining - 1):
                return True
            path.pop()
            restore(snap)
        return False

    # The shard prefix is applied — and judged — before the walk; its
    # subtree then covers every suffix of the remaining depth.
    for index in prefix:
        op, target = alphabet[index]
        path.append((op, target))
        if judge(op, target):
            return CheckReport(num_cache_pages, depth, 0, steps, violations,
                               tuple(prefix))
    visit(depth - len(prefix))
    return CheckReport(num_cache_pages, depth, sequences, steps, violations,
                       tuple(prefix))
