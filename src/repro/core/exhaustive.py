"""Bounded exhaustive checking of the consistency machinery.

The hypothesis suites sample the behaviour space; this module *covers*
it, for small parameters: every sequence of memory events up to a given
depth over a given number of cache pages is enumerated, and for each
step three judgments are made:

1. the model's single-dirty invariant holds (Section 3.2);
2. the Figure 1 engine's page state stays structurally valid (Table 3);
3. the engine performs every action the model requires (refinement) —
   with a flush accepted where a purge is required, since a flush also
   removes the line.

With 2 cache pages and depth 5 this checks 6^5 = 7,776 sequences ×
5 steps exhaustively in well under a second; the benchmark runs depth 6.
This is the strongest correctness statement in the repository short of a
real proof: *no* event sequence within the bound can make the
implementation skip a required consistency action.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.cache_control import CacheControl
from repro.core.model import ConsistencyModel
from repro.core.page_state import PhysPageState
from repro.core.states import Action, MemoryOp


def event_alphabet(num_cache_pages: int) -> list[tuple[MemoryOp, int | None]]:
    """All distinct events over ``num_cache_pages`` cache pages."""
    events: list[tuple[MemoryOp, int | None]] = []
    for op in (MemoryOp.CPU_READ, MemoryOp.CPU_WRITE):
        for target in range(num_cache_pages):
            events.append((op, target))
    events.append((MemoryOp.DMA_READ, None))
    events.append((MemoryOp.DMA_WRITE, None))
    return events


@dataclass
class CheckReport:
    """What an exhaustive run covered."""

    num_cache_pages: int
    depth: int
    sequences: int
    steps: int
    violations: list[str]

    @property
    def ok(self) -> bool:
        return not self.violations


class _ActionCollector:
    def __init__(self) -> None:
        self.performed: set[tuple[Action, int]] = set()

    def flush(self, cache_page, ppage, reason):
        self.performed.add((Action.FLUSH, cache_page))

    def purge(self, cache_page, ppage, reason):
        self.performed.add((Action.PURGE, cache_page))

    def protect(self, mapping, prot):
        pass

    def satisfied(self, action: Action, cache_page: int) -> bool:
        if (action, cache_page) in self.performed:
            return True
        # A flush removes the line too, so it satisfies a purge demand.
        return (action is Action.PURGE
                and (Action.FLUSH, cache_page) in self.performed)


def check_all_sequences(num_cache_pages: int = 2, depth: int = 5,
                        stop_at_first: bool = True) -> CheckReport:
    """Enumerate every event sequence up to ``depth`` and check the three
    judgments at every step.  Returns a report; ``ok`` means no sequence
    violated anything."""
    alphabet = event_alphabet(num_cache_pages)
    violations: list[str] = []
    sequences = 0
    steps = 0
    for sequence in itertools.product(alphabet, repeat=depth):
        sequences += 1
        model = ConsistencyModel(num_cache_pages)
        state = PhysPageState(0, num_cache_pages)
        collector = _ActionCollector()
        engine = CacheControl(collector.flush, collector.purge,
                              collector.protect)
        for position, (op, target) in enumerate(sequence):
            steps += 1
            required = model.apply(op, target)
            collector.performed.clear()
            engine(state, op, target if op.is_cpu else None,
                   need_data=(op is not MemoryOp.DMA_WRITE))
            try:
                model.validate()
                state.validate()
            except Exception as error:  # structural invariant broken
                violations.append(
                    f"{sequence[:position + 1]}: invariant: {error}")
                break
            missing = [a for a in required
                       if not collector.satisfied(a.action, a.cache_page)]
            if missing:
                violations.append(
                    f"{sequence[:position + 1]}: engine skipped {missing}")
                break
        if violations and stop_at_first:
            break
    return CheckReport(num_cache_pages, depth, sequences, steps, violations)
