"""The paper's contribution: consistency model, state encoding, algorithm."""

from repro.core.bitvector import BitVector
from repro.core.cache_control import CacheControl, PerformedOp
from repro.core.model import ConsistencyModel, RequiredAction
from repro.core.oracle import ShadowMemory, Violation
from repro.core.page_state import Mapping, PhysPageState
from repro.core.states import Action, LineState, MemoryOp

__all__ = [
    "Action", "LineState", "MemoryOp", "BitVector", "PhysPageState",
    "Mapping", "ConsistencyModel", "RequiredAction", "CacheControl",
    "PerformedOp", "ShadowMemory", "Violation",
]
