"""The staleness oracle: an executable form of the paper's correctness
condition.

Section 3.1 restates the whole consistency problem as: *"A correctly
functioning memory system must never transfer stale data to either the CPU
or a DMA device."*  :class:`ShadowMemory` tracks, for every physical word,
the most recently written value in program order — regardless of which
virtual alias or device performed the write.  Every value the memory
system hands to the CPU (through any alias) or to a device (through DMA)
is compared against this record.

A consistency policy is *correct* exactly when a run never raises
:class:`~repro.errors.StaleDataError`.  The fault-injection tests use the
oracle in recording mode to demonstrate that each consistency action in
the algorithm is necessary: disabling the action makes the oracle observe
a stale transfer on a witness workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StaleDataError
from repro.hw.params import WORD_SIZE


@dataclass(frozen=True)
class Violation:
    """One observed stale transfer."""

    kind: str          # "cpu-read" or "dma-read"
    paddr: int         # physical byte address of the first stale word
    expected: int
    actual: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.kind} at paddr {self.paddr:#x}: "
                f"expected {self.expected:#x}, got {self.actual:#x}")


class ShadowMemory:
    """Program-order shadow of physical memory.

    Args:
        num_pages: physical frames to shadow.
        page_size: bytes per frame.
        record_only: when True, violations are appended to
            :attr:`violations` instead of raising — used by the
            fault-injection tests, which *expect* staleness.  The flag may
            be toggled mid-run: each check consults the current value, so
            a harness can record during a chaos window and fail fast
            outside it.

    Accounting: :attr:`checks` counts *check calls*, not words — a
    page-granularity or run-granularity check counts once however many
    words it compares.  Per-word divergence detail is carried by the
    :class:`Violation` it records instead.
    """

    def __init__(self, num_pages: int, page_size: int,
                 record_only: bool = False):
        self.page_size = page_size
        self.words_per_page = page_size // WORD_SIZE
        self._shadow = np.zeros(num_pages * self.words_per_page,
                                dtype=np.uint64)
        self.record_only = record_only
        self.violations: list[Violation] = []
        self.checks = 0

    # ---- recording writes ----------------------------------------------------

    def note_cpu_write(self, paddr: int, value: int) -> None:
        self._shadow[paddr // WORD_SIZE] = np.uint64(value)

    def note_page_write(self, pa_page_base: int, values: np.ndarray) -> None:
        start = pa_page_base // WORD_SIZE
        self._shadow[start:start + self.words_per_page] = values

    def note_dma_write(self, ppage: int, values: np.ndarray) -> None:
        self.note_page_write(ppage * self.page_size, values)

    def note_run_write(self, paddr: int, values: np.ndarray) -> None:
        start = paddr // WORD_SIZE
        self._shadow[start:start + len(values)] = values

    # ---- checking reads --------------------------------------------------------

    def check_cpu_read(self, paddr: int, value: int) -> None:
        self.checks += 1
        expected = int(self._shadow[paddr // WORD_SIZE])
        if value != expected:
            self._violate("cpu-read", paddr, expected, value)

    def check_page_read(self, pa_page_base: int, values: np.ndarray) -> None:
        self.checks += 1
        start = pa_page_base // WORD_SIZE
        expected = self._shadow[start:start + self.words_per_page]
        bad = np.flatnonzero(expected != values)
        if len(bad):
            i = int(bad[0])
            self._violate("cpu-read", pa_page_base + i * WORD_SIZE,
                          int(expected[i]), int(values[i]))

    def check_run_read(self, paddr: int, values: np.ndarray) -> None:
        self.checks += 1
        start = paddr // WORD_SIZE
        expected = self._shadow[start:start + len(values)]
        bad = np.flatnonzero(expected != values)
        if len(bad):
            i = int(bad[0])
            self._violate("cpu-read", paddr + i * WORD_SIZE,
                          int(expected[i]), int(values[i]))

    def check_dma_read(self, ppage: int, values: np.ndarray) -> None:
        self.checks += 1
        start = ppage * self.words_per_page
        expected = self._shadow[start:start + self.words_per_page]
        bad = np.flatnonzero(expected != values)
        if len(bad):
            i = int(bad[0])
            self._violate("dma-read", ppage * self.page_size + i * WORD_SIZE,
                          int(expected[i]), int(values[i]))

    # ---- misc --------------------------------------------------------------------

    def expected_word(self, paddr: int) -> int:
        """The program-order current value of a physical word."""
        return int(self._shadow[paddr // WORD_SIZE])

    def expected_page(self, pa_page_base: int) -> np.ndarray:
        """The program-order current contents of a whole frame (a copy).

        The fault injector uses this to classify an injected omission at
        injection time: skipping a flush is *consequential* exactly when
        physical memory diverges from this record.
        """
        start = pa_page_base // WORD_SIZE
        return self._shadow[start:start + self.words_per_page].copy()

    @property
    def clean(self) -> bool:
        return not self.violations

    def _violate(self, kind: str, paddr: int, expected: int,
                 actual: int) -> None:
        violation = Violation(kind, paddr, expected, actual)
        self.violations.append(violation)
        if not self.record_only:
            raise StaleDataError(str(violation), paddr=paddr,
                                 expected=expected, actual=actual)
