"""A fixed-width bit vector.

The implementation of Section 4 keeps two bit vectors per physical page —
``mapped`` and ``stale`` — with one bit per *cache page*.  The paper notes
that the data structures "lend themselves to efficient state modification"
(marking all mapped pages stale is a bitwise-or followed by a clear); this
class exposes exactly those operations over a single Python integer.
"""

from __future__ import annotations

from repro.errors import AddressError


class BitVector:
    """``width`` bits, each addressable by index, backed by one int."""

    __slots__ = ("width", "_bits")

    def __init__(self, width: int, bits: int = 0):
        if width <= 0:
            raise AddressError("bit vector width must be positive")
        self.width = width
        self._bits = bits & ((1 << width) - 1)

    def _check(self, i: int) -> None:
        if not 0 <= i < self.width:
            raise AddressError(f"bit index {i} out of range [0, {self.width})")

    def __getitem__(self, i: int) -> bool:
        self._check(i)
        return bool((self._bits >> i) & 1)

    def __setitem__(self, i: int, value: bool) -> None:
        self._check(i)
        if value:
            self._bits |= (1 << i)
        else:
            self._bits &= ~(1 << i)

    def or_with(self, other: "BitVector") -> None:
        """``self |= other`` — used for ``stale = stale | mapped``."""
        if other.width != self.width:
            raise AddressError("bit vector widths differ")
        self._bits |= other._bits

    def clear_all(self) -> None:
        """``bitwise_clear`` from the paper's pseudo-code."""
        self._bits = 0

    def count(self) -> int:
        return self._bits.bit_count()

    def any(self) -> bool:
        return self._bits != 0

    def indices(self) -> list[int]:
        """Indices of the set bits, ascending."""
        return [i for i in range(self.width) if (self._bits >> i) & 1]

    def first(self) -> int | None:
        """Index of the lowest set bit, or None if empty."""
        if not self._bits:
            return None
        return (self._bits & -self._bits).bit_length() - 1

    def copy(self) -> "BitVector":
        return BitVector(self.width, self._bits)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, BitVector) and other.width == self.width
                and other._bits == self._bits)

    def __hash__(self) -> int:
        return hash((self.width, self._bits))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bits = "".join("1" if self[i] else "0" for i in range(self.width))
        return f"BitVector({bits})"
