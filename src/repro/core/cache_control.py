"""The CacheControl algorithm of Figure 1.

This is the software implementation of the consistency model: it runs on
every operation that could change the consistency state of cache pages
(CPU accesses caught by virtual-memory protection, and DMA scheduling),
updates the per-physical-page state (:class:`PhysPageState`), performs the
required flush/purge operations through callbacks, and re-derives the
virtual-memory protections of every mapping so that inconsistencies can
never be perceived.

The body mirrors the paper's six stanzas:

1. compute the physical page and target cache page;
2. remove the contents of a dirty cache page when it is not the target
   (flush if its data is needed, else purge — the ``need_data``
   optimization);
3. ensure the target cache page is not stale (purge, unless the caller
   promises to overwrite it entirely — the ``will_overwrite``
   optimization);
4. writes into the memory system force all mapped pages stale and
   unmapped; a CPU-write then marks its target mapped, not-stale, dirty;
5. a CPU-read marks its target cache page mapped;
6. set protections for every mapping to match the new state.

Atomicity: on the paper's uniprocessor the sequence runs with interrupts
disabled; in the simulator each call is naturally atomic.

The ``eager_purge_stale`` flag turns the engine into the "old"-style
eager policy of Section 2.5 for ablation: instead of *marking* unaligned
pages stale it purges them immediately (stale data never lingers), which
is correct but performs cache operations at inconsistency-creation time
rather than at detection time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.page_state import Mapping, PhysPageState
from repro.core.states import Action, MemoryOp
from repro.errors import ReproError
from repro.hw.stats import Reason
from repro.prot import Prot

# Callback signatures.  flush/purge receive (cache_page, ppage, reason);
# set_protection receives (mapping, consistency protection or None to
# leave the current protection in place, as the paper's final stanza does
# for mapped non-stale pages during DMA operations).
FlushFn = Callable[[int, int, Reason], None]
PurgeFn = Callable[[int, int, Reason], None]
ProtectFn = Callable[[Mapping, Optional[Prot]], None]


@dataclass(frozen=True)
class PerformedOp:
    """A flush or purge the algorithm carried out (for tests/metrics)."""

    action: Action
    cache_page: int


class CacheControl:
    """The Figure 1 engine, independent of any particular cache hardware."""

    def __init__(self, flush_cache_page: FlushFn, purge_cache_page: PurgeFn,
                 set_protection: ProtectFn,
                 eager_purge_stale: bool = False):
        self._flush = flush_cache_page
        self._purge = purge_cache_page
        self._protect = set_protection
        self.eager_purge_stale = eager_purge_stale

    def __call__(self, state: PhysPageState, op: MemoryOp,
                 target_vpage: int | None = None, *,
                 will_overwrite: bool = False, need_data: bool = True,
                 reason: Reason = Reason.EXPLICIT,
                 update_protections: bool = True) -> list[PerformedOp]:
        """Run CacheControl for one operation on one physical page.

        Args:
            state: the physical page's consistency bookkeeping.
            op: one of CPU_READ / CPU_WRITE / DMA_READ / DMA_WRITE.
            target_vpage: the virtual page of the access (CPU ops only).
            will_overwrite: the stale target data will be entirely
                overwritten before it is read, so its purge can be skipped.
            need_data: dirty cache data is still useful; if False it can be
                purged instead of flushed (dead data, e.g. a recycled page).
            reason: attribution tag for the metrics.
            update_protections: skip stanza 6 (used for transient kernel
                windows that have no user mappings to re-protect).

        Returns:
            The flush/purge operations performed, in order.
        """
        if op.is_cache_op:
            raise ReproError("CacheControl handles memory operations; call "
                             "flush/purge callbacks directly for cache ops")
        if op.is_cpu and target_vpage is None:
            raise ReproError(f"{op} requires a target virtual page")

        performed: list[PerformedOp] = []
        p = state.ppage

        # Stanza 1: physical page and target cache page.
        c = state.cache_page_of(target_vpage) if op.is_cpu else None

        # Stanza 2: clean the dirty cache page if it is not the target.
        if state.cache_dirty:
            w = state.find_mapped_cache_page()
            if op.is_dma or w != c:
                if need_data:
                    self._flush(w, p, reason)
                    performed.append(PerformedOp(Action.FLUSH, w))
                else:
                    self._purge(w, p, reason)
                    performed.append(PerformedOp(Action.PURGE, w))
                state.cache_dirty = False
                # Note: mapped[w] deliberately stays set, as in Figure 1.
                # After the flush, memory matches the cleaned page, so a
                # Present state for w is sound (pessimism in the safe
                # direction, Section 3.2); a subsequent write will mark it
                # stale through stanza 4.

        # Stanza 3: ensure the target cache page is not stale (CPU only).
        if op.is_cpu and state.stale[c]:
            if not will_overwrite:
                self._purge(c, p, reason)
                performed.append(PerformedOp(Action.PURGE, c))
            state.stale[c] = False

        # Stanza 4: writes force all mapped and stale pages to stale and
        # all mapped pages to unmapped; a CPU-write then reinstates its
        # own target as mapped, not stale, and dirty.
        if op in (MemoryOp.DMA_WRITE, MemoryOp.CPU_WRITE):
            state.stale.or_with(state.mapped)
            state.mapped.clear_all()
            if op is MemoryOp.CPU_WRITE:
                state.stale[c] = False
                state.cache_dirty = True
                state.mapped[c] = True
            if self.eager_purge_stale:
                for cp in state.stale.indices():
                    self._purge(cp, p, reason)
                    performed.append(PerformedOp(Action.PURGE, cp))
                state.stale.clear_all()

        # Stanza 5: a CPU-read marks the target cache page mapped.
        if op is MemoryOp.CPU_READ:
            state.mapped[c] = True

        if op.is_cpu:
            state.last_cache_page = c

        # Stanza 6: set protections for all virtual addresses mapping to p
        # so inconsistencies cannot be perceived, subsequent accesses are
        # detected, and the current operation can complete.
        if update_protections:
            self.update_protections(state, op)

        return performed

    def update_protections(self, state: PhysPageState, op: MemoryOp) -> None:
        """Stanza 6, callable on its own (e.g. after an unmap)."""
        for mapping in state.mappings:
            cv = state.cache_page_of(mapping.vpage)
            if state.stale[cv]:
                self._protect(mapping, Prot.NONE)
            elif not state.mapped[cv]:
                self._protect(mapping, Prot.NONE)
            elif op is MemoryOp.CPU_WRITE:
                self._protect(mapping, Prot.READ_WRITE)
            elif op is MemoryOp.CPU_READ:
                self._protect(mapping, Prot.READ)
            else:
                self._protect(mapping, None)  # DMA: leave unchanged
