"""The formal consistency model of Section 3, executable.

:class:`ConsistencyModel` tracks the consistency state of every cache page
with respect to **one** physical page, and applies the Table 2 transitions
for each memory-system event.  Aliasing is captured naturally: all virtual
addresses that align (select the same cache page) share one state, while
unaligned aliases occupy distinct states — so aligned aliases never
require consistency actions.

This class is the *specification*.  The page-granularity algorithm of
Figure 1 (:mod:`repro.core.cache_control`) is an implementation that may
be pessimistic (it may perform extra flushes or purges) but must never
admit an access the model says requires an action it did not perform; the
refinement property tests check exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.states import Action, LineState, MemoryOp
from repro.core.transitions import other_transition, target_transition
from repro.errors import ReproError


@dataclass(frozen=True)
class RequiredAction:
    """One consistency action Table 2 demands for an event."""

    action: Action          # PURGE or FLUSH
    cache_page: int         # which cache page it applies to

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.action} cache page {self.cache_page}"


class ConsistencyModel:
    """States of all cache pages with respect to one physical page.

    At power-up all lines are Empty (Section 3.2).  ``apply`` performs one
    event atomically: it computes the required actions, transitions the
    target cache page by the target column and every other cache page by
    the other column, and returns the actions in the order they must be
    performed (actions strictly precede the access itself).
    """

    def __init__(self, num_cache_pages: int):
        if num_cache_pages <= 0:
            raise ReproError("need at least one cache page")
        self.num_cache_pages = num_cache_pages
        self.states = [LineState.EMPTY] * num_cache_pages

    # ---- event application ------------------------------------------------------

    def apply(self, op: MemoryOp,
              target_cache_page: int | None = None) -> list[RequiredAction]:
        """Apply one event; returns the consistency actions it required.

        ``target_cache_page`` selects the target line for CPU operations
        and for explicit Purge/Flush.  For DMA operations the paper notes
        all lines sharing the physical address transition identically, so
        the target may be omitted.
        """
        if op.is_cpu or op.is_cache_op:
            if target_cache_page is None:
                raise ReproError(f"{op} requires a target cache page")
            return self._apply_with_target(op, target_cache_page)
        # DMA: uniform transitions for every cache page.
        actions: list[RequiredAction] = []
        for c in range(self.num_cache_pages):
            action, nxt = other_transition(op, self.states[c])
            if action != Action.NONE:
                actions.append(RequiredAction(action, c))
            self.states[c] = nxt
        return actions

    def _apply_with_target(self, op: MemoryOp,
                           target: int) -> list[RequiredAction]:
        self._check_page(target)
        actions: list[RequiredAction] = []
        # Other lines first: their obligations (e.g. flushing a dirty
        # unaligned alias) must complete before the target access touches
        # memory (Section 3.2: "the requisite state transitions must occur
        # atomically" and an empty line must not be read "before dirty
        # data in another similarly mapped line has been flushed").
        for c in range(self.num_cache_pages):
            if c == target:
                continue
            action, nxt = other_transition(op, self.states[c])
            if action != Action.NONE:
                actions.append(RequiredAction(action, c))
            self.states[c] = nxt
        action, nxt = target_transition(op, self.states[target])
        if action != Action.NONE:
            actions.append(RequiredAction(action, target))
        self.states[target] = nxt
        return actions

    def _check_page(self, cache_page: int) -> None:
        if not 0 <= cache_page < self.num_cache_pages:
            raise ReproError(f"cache page {cache_page} out of range "
                             f"[0, {self.num_cache_pages})")

    # ---- queries -----------------------------------------------------------------

    def state(self, cache_page: int) -> LineState:
        self._check_page(cache_page)
        return self.states[cache_page]

    def dirty_cache_pages(self) -> list[int]:
        return [c for c, s in enumerate(self.states) if s == LineState.DIRTY]

    def stale_cache_pages(self) -> list[int]:
        return [c for c, s in enumerate(self.states) if s == LineState.STALE]

    def validate(self) -> None:
        """Model invariant: data corresponding to a physical address is
        dirty in at most one cache line (Section 3.2 correctness argument)."""
        if len(self.dirty_cache_pages()) > 1:
            raise ReproError(
                f"model invariant violated: dirty in cache pages "
                f"{self.dirty_cache_pages()}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ConsistencyModel(" + "".join(map(str, self.states)) + ")"
