"""Experiment harness: run workloads under configurations, regenerate the
paper's tables."""

from repro.analysis.charts import render_comparison_chart, render_ladder_chart
from repro.analysis.comparison import SystemTraits, render_table5, table5_matrix
from repro.analysis.sweep import SweepPoint, render_sweep, sweep_cache_sizes
from repro.analysis.trace import TraceEvent, Tracer
from repro.analysis.experiments import (Table1Row, evaluation_machine,
                                        make_workload, run_alignment_micro,
                                        run_table1, run_table4,
                                        run_table5_probe, run_workload)
from repro.analysis.metrics import OpCost, RunMetrics, diff_metrics
from repro.analysis.tables import (render_micro, render_overhead_summary,
                                   render_table1, render_table4)

__all__ = [
    "RunMetrics", "OpCost", "diff_metrics", "run_workload", "run_table1",
    "run_table4", "run_table5_probe", "run_alignment_micro", "Table1Row",
    "make_workload", "evaluation_machine", "render_table1", "render_table4",
    "render_table5", "render_micro", "render_overhead_summary",
    "SystemTraits", "table5_matrix", "Tracer", "TraceEvent",
    "render_ladder_chart", "render_comparison_chart",
    "SweepPoint", "sweep_cache_sizes", "render_sweep",
]
