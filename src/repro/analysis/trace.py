"""Event tracing: observe the consistency machinery at work.

A :class:`Tracer` instruments a booted kernel and records every
consistency-relevant event — flushes and purges (with cache page, frame
and reason), faults (with classification), DMA transfers, page
preparations and swaps — as a structured, ordered trace.  Uses:

* debugging a policy ("why was this page flushed twice?"),
* workload characterization (the per-reason breakdowns of Section 5.1),
* regression artifacts (dump a golden trace, diff against it),
* teaching — the examples print trace excerpts to show the machinery.

The tracer is pure observation: it wraps the pmap's callback layer and
the fault dispatcher without changing any behaviour, costs, or counters,
and can be detached again.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hw.stats import FaultKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    seq: int
    cycles: int          # machine time when the event happened
    kind: str            # "flush" | "purge" | "fault" | "dma-read" | ...
    detail: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({"seq": self.seq, "cycles": self.cycles,
                           "kind": self.kind, **self.detail},
                          sort_keys=True)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.cycles:>10}] {self.kind:<10} {detail}"


class Tracer:
    """Attachable event recorder for one kernel."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.events: list[TraceEvent] = []
        self._seq = 0
        self._originals: dict[str, object] = {}
        self._attached = False

    # ---- attachment ------------------------------------------------------------

    def attach(self) -> "Tracer":
        """Install the instrumentation (idempotent)."""
        if self._attached:
            return self
        pmap = self.kernel.pmap
        kernel = self.kernel
        dma = self.kernel.machine.dma
        self._originals = {
            "flush": pmap._flush_cache_page,
            "purge": pmap._purge_cache_page,
            "fault": kernel.handle_fault,
            "dma_write": dma.dma_write,
            "dma_read": dma.dma_read,
        }

        def traced_flush(cache_page, ppage, reason):
            self._record("flush", cache_page=cache_page, frame=ppage,
                         reason=str(reason))
            self._originals["flush"](cache_page, ppage, reason)

        def traced_purge(cache_page, ppage, reason):
            self._record("purge", cache_page=cache_page, frame=ppage,
                         reason=str(reason))
            self._originals["purge"](cache_page, ppage, reason)

        def traced_fault(info):
            vpage = info.vaddr // kernel.machine.page_size
            before = dict(kernel.machine.counters.faults)
            self._originals["fault"](info)
            after = kernel.machine.counters.faults
            kind = next((k for k in FaultKind
                         if after[k] > before.get(k, 0)), None)
            self._record("fault", asid=info.asid, vpage=vpage,
                         access=info.access.value,
                         classified=str(kind) if kind else "retried")

        def traced_dma_write(ppage, values):
            self._record("dma-write", frame=ppage)
            return self._originals["dma_write"](ppage, values)

        def traced_dma_read(ppage):
            self._record("dma-read", frame=ppage)
            return self._originals["dma_read"](ppage)

        pmap._flush_cache_page = traced_flush
        pmap._purge_cache_page = traced_purge
        # the engine holds bound references; repoint them too
        pmap.engine._flush = traced_flush
        pmap.engine._purge = traced_purge
        kernel.handle_fault = traced_fault
        kernel.machine.fault_handler = traced_fault
        dma.dma_write = traced_dma_write
        dma.dma_read = traced_dma_read
        self._attached = True
        return self

    def detach(self) -> None:
        """Remove the instrumentation, restoring the original plumbing."""
        if not self._attached:
            return
        pmap = self.kernel.pmap
        pmap._flush_cache_page = self._originals["flush"]
        pmap._purge_cache_page = self._originals["purge"]
        pmap.engine._flush = self._originals["flush"]
        pmap.engine._purge = self._originals["purge"]
        self.kernel.handle_fault = self._originals["fault"]
        self.kernel.machine.fault_handler = self._originals["fault"]
        self.kernel.machine.dma.dma_write = self._originals["dma_write"]
        self.kernel.machine.dma.dma_read = self._originals["dma_read"]
        self._attached = False

    def __enter__(self) -> "Tracer":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ---- recording -----------------------------------------------------------------

    def _record(self, kind: str, **detail) -> None:
        self.events.append(TraceEvent(self._seq,
                                      self.kernel.machine.clock.cycles,
                                      kind, detail))
        self._seq += 1

    # ---- consumption -----------------------------------------------------------------

    def filter(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def summary(self) -> dict[str, int]:
        """Event counts by kind (and by reason for cache operations)."""
        counts: Counter = Counter()
        for event in self.events:
            counts[event.kind] += 1
            reason = event.detail.get("reason")
            if reason:
                counts[f"{event.kind}:{reason}"] += 1
        return dict(counts)

    def frames_touched(self) -> set[int]:
        return {e.detail["frame"] for e in self.events
                if "frame" in e.detail}

    def to_jsonl(self, path) -> int:
        """Write the trace as JSON lines; returns the event count."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(event.to_json() + "\n")
        return len(self.events)

    @staticmethod
    def load_jsonl(path) -> list[dict]:
        with open(path) as handle:
            return [json.loads(line) for line in handle if line.strip()]


@dataclass(frozen=True)
class TraceDiff:
    """The first point where two traces disagree (None == identical)."""

    index: int                 # first diverging event index
    expected: dict | None      # golden event at that index (None: ran long)
    actual: dict | None        # recorded event at that index (None: ran short)

    def render(self) -> str:
        def fmt(event):
            if event is None:
                return "<trace ends>"
            detail = {k: v for k, v in sorted(event.items())
                      if k not in ("seq", "cycles")}
            return (f"[{event.get('cycles', '?'):>10}] "
                    + " ".join(f"{k}={v}" for k, v in detail.items()))
        return (f"first divergence at event {self.index}\n"
                f"  expected: {fmt(self.expected)}\n"
                f"  actual:   {fmt(self.actual)}")


def _normalize(event) -> dict:
    """Canonical comparison form: a TraceEvent or a loaded dict both
    reduce to the same sorted-key dict (the to_json round trip)."""
    if isinstance(event, TraceEvent):
        return json.loads(event.to_json())
    return dict(event)


def diff_traces(expected, actual) -> TraceDiff | None:
    """Compare two traces event by event; each side may be a list of
    :class:`TraceEvent` or of dicts (as loaded from a golden ``.jsonl``).
    Returns the first divergence, or None when the traces are identical
    — including in length."""
    for i, (want, got) in enumerate(zip(expected, actual)):
        want, got = _normalize(want), _normalize(got)
        if want != got:
            return TraceDiff(i, want, got)
    if len(expected) != len(actual):
        i = min(len(expected), len(actual))
        want = _normalize(expected[i]) if i < len(expected) else None
        got = _normalize(actual[i]) if i < len(actual) else None
        return TraceDiff(i, want, got)
    return None
