"""Table 5: the related-systems comparison, with measured evidence.

The paper compares five operating systems for virtually indexed caches
qualitatively.  Here each system is expressed as a policy configuration
(:data:`repro.vm.policy.TABLE5_SYSTEMS`), so each claimed property is both
stated (from the configuration flags) and *measurable* (by running the
probe workload and checking the behavioural signature, which the tests
do).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import RunMetrics
from repro.vm.policy import PolicyConfig, TABLE5_SYSTEMS


@dataclass(frozen=True)
class SystemTraits:
    """The Table 5 columns for one system."""

    name: str
    handles_unaligned_aliases: bool
    lazy_unmap: bool
    aligns_shared_pages: bool
    aligned_prepare: bool
    exploits_need_data: bool
    exploits_will_overwrite: bool
    uncached_unaligned_aliases: bool
    state_granularity: str      # "cache page", "virtual address", "none"


def traits_of(policy: PolicyConfig) -> SystemTraits:
    """Derive the Table 5 row from a policy configuration."""
    if policy.tut_equal_va_only:
        granularity = "virtual address"
    elif policy.lazy_unmap:
        granularity = "cache page"
    else:
        granularity = "none (eager)"
    return SystemTraits(
        name=policy.name,
        handles_unaligned_aliases=True,   # all five systems do (Section 6)
        lazy_unmap=policy.lazy_unmap,
        aligns_shared_pages=policy.align_ipc or policy.align_server_pages,
        aligned_prepare=policy.aligned_prepare,
        exploits_need_data=policy.opt_need_data,
        exploits_will_overwrite=policy.opt_will_overwrite,
        uncached_unaligned_aliases=policy.uncached_aliases,
        state_granularity=granularity,
    )


def table5_matrix() -> list[SystemTraits]:
    return [traits_of(system) for system in TABLE5_SYSTEMS]


def render_table5(measurements: list[RunMetrics] | None = None) -> str:
    """Render the qualitative matrix, optionally with measured evidence."""

    def yn(flag: bool) -> str:
        return "yes" if flag else "no"

    lines = [
        "Table 5: consistency management in five operating systems",
        f"{'System':<8} {'aliases':>8} {'lazy unmap':>11} {'align':>6} "
        f"{'al.prep':>8} {'need-data':>10} {'will-ovw':>9} "
        f"{'uncached':>9}  state kept per",
        "-" * 86,
    ]
    for traits in table5_matrix():
        lines.append(
            f"{traits.name:<8} {yn(traits.handles_unaligned_aliases):>8} "
            f"{yn(traits.lazy_unmap):>11} {yn(traits.aligns_shared_pages):>6} "
            f"{yn(traits.aligned_prepare):>8} "
            f"{yn(traits.exploits_need_data):>10} "
            f"{yn(traits.exploits_will_overwrite):>9} "
            f"{yn(traits.uncached_unaligned_aliases):>9}  "
            f"{traits.state_granularity}")
    if measurements:
        lines.append("")
        lines.append("Measured on the alias/remap probe workload:")
        lines.append(f"{'System':<8} {'time(s)':>9} {'flushes':>8} "
                     f"{'purges':>7} {'cons faults':>12}")
        for m in measurements:
            lines.append(f"{m.config_name:<8} {m.seconds:>9.4f} "
                         f"{m.page_flushes:>8} {m.page_purges:>7} "
                         f"{m.consistency_faults.count:>12}")
    return "\n".join(lines)
