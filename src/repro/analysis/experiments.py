"""The experiment runner: workloads × configurations → RunMetrics.

One function per experiment of the evaluation section:

* :func:`run_workload` — boot a kernel under a configuration, run one
  workload, return its metrics (the primitive everything else uses).
* :func:`run_table1` — the old-vs-new comparison (Table 1).
* :func:`run_table4` — the full A–F configuration ladder (Table 4).
* :func:`run_table5_probe` — behavioural probes for the related-systems
  comparison (Table 5).
* :func:`run_alignment_micro` — the contrived Section 2.5 loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.vm.policy import (CONFIG_LADDER, NEW_SYSTEM, OLD_SYSTEM,
                             TABLE5_SYSTEMS, PolicyConfig)
from repro.workloads.afs_bench import AfsBench
from repro.workloads.base import Workload
from repro.workloads.kernel_build import KernelBuild
from repro.workloads.latex_bench import LatexBench
from repro.workloads.microbench import AliasLoopResult, run_alias_write_loop
from repro.analysis.metrics import RunMetrics, diff_metrics, snapshot_counters


#: the single source of truth for how large a run of the paper's
#: workloads is relative to the published sizes.  The CLI and the
#: benchmark suite both import this; EXPERIMENTS.md numbers are recorded
#: at this scale.
DEFAULT_SCALE = 1.0


def evaluation_machine(**overrides) -> MachineConfig:
    """The machine configuration used for the evaluation runs.

    Physical memory is kept modest (relative to the workloads) so frames
    recycle through the free list, reproducing the "random physical page
    from the kernel's free page list" purges that dominate configuration F
    (Section 5.1).
    """
    params = dict(phys_pages=320)
    params.update(overrides)
    return MachineConfig(**params)


WORKLOADS = {
    "afs-bench": AfsBench,
    "latex-paper": LatexBench,
    "kernel-build": KernelBuild,
}


def make_workload(name: str, scale: float = DEFAULT_SCALE) -> Workload:
    return WORKLOADS[name](scale)


def run_workload(workload: Workload, policy,
                 config: MachineConfig | None = None,
                 buffer_cache_pages: int = 48,
                 kernel: Kernel | None = None) -> RunMetrics:
    """Boot a fresh kernel under ``policy`` and measure one execution.

    ``policy`` is anything :func:`repro.policy.resolve` accepts: a
    :class:`PolicyConfig` flag bag, a registered policy name, or a
    :class:`~repro.policy.ConsistencyPolicy` instance.  A pre-booted
    ``kernel`` may be supplied instead (the CLI uses this to attach a
    fault injector before the workload starts); it must have been built
    with the same policy.
    """
    from repro.policy import resolve
    policy = resolve(policy)
    if kernel is None:
        kernel = Kernel(policy=policy,
                        config=config or evaluation_machine(),
                        buffer_cache_pages=buffer_cache_pages)
    workload.setup(kernel)
    before = snapshot_counters(kernel.machine.counters)
    start_cycles = kernel.machine.clock.cycles
    workload.execute(kernel)
    cycles = kernel.machine.clock.cycles - start_cycles
    after = snapshot_counters(kernel.machine.counters)
    kernel.shutdown()
    return diff_metrics(policy.name, workload.name, before, after, cycles,
                        kernel.machine.config.cost)


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's old-vs-new comparison."""

    workload: str
    old: RunMetrics
    new: RunMetrics

    @property
    def gain_percent(self) -> float:
        return 100.0 * (self.old.seconds - self.new.seconds) / self.old.seconds


def run_table1(scale: float = DEFAULT_SCALE,
               config: MachineConfig | None = None) -> list[Table1Row]:
    """Table 1: each benchmark on the old and new kernels."""
    rows = []
    for name in WORKLOADS:
        old = run_workload(make_workload(name, scale), OLD_SYSTEM,
                           config=config)
        new = run_workload(make_workload(name, scale), NEW_SYSTEM,
                           config=config)
        rows.append(Table1Row(name, old, new))
    return rows


def run_table4(scale: float = DEFAULT_SCALE,
               config: MachineConfig | None = None,
               workload_names: tuple[str, ...] | None = None,
               ) -> dict[str, list[RunMetrics]]:
    """Table 4: each benchmark across the six configurations A-F."""
    results: dict[str, list[RunMetrics]] = {}
    for name in (workload_names or tuple(WORKLOADS)):
        results[name] = [
            run_workload(make_workload(name, scale), policy, config=config)
            for policy in CONFIG_LADDER
        ]
    return results


def run_table5_probe(scale: float = DEFAULT_SCALE,
                     config: MachineConfig | None = None) -> list[RunMetrics]:
    """Measure the Table 5 systems on a common alias/remap-heavy probe
    (afs-bench), giving behavioural evidence for the qualitative claims."""
    return [run_workload(AfsBench(scale), system, config=config)
            for system in TABLE5_SYSTEMS]


def run_alignment_micro(iterations: int = 10_000,
                        policy: PolicyConfig = NEW_SYSTEM,
                        config: MachineConfig | None = None,
                        ) -> tuple[AliasLoopResult, AliasLoopResult]:
    """The Section 2.5 microbenchmark: aligned vs unaligned write loop."""
    aligned = run_alias_write_loop(
        Kernel(policy=policy, config=config or evaluation_machine()),
        iterations, aligned=True)
    unaligned = run_alias_write_loop(
        Kernel(policy=policy, config=config or evaluation_machine()),
        iterations, aligned=False)
    return aligned, unaligned
