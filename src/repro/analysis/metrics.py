"""Run metrics: the quantities the paper's tables report.

A :class:`RunMetrics` is a frozen snapshot-difference over one measured
workload execution: elapsed time, fault counts and costs, flush/purge
counts and costs split by cache and by reason, and the derived quantities
quoted in Section 5.1 (total virtually-indexed-cache overhead, DMA-read
flush share, new-mapping purge share, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.hw.params import CostModel
from repro.hw.stats import Counters, FaultKind, Reason


@dataclass(frozen=True)
class OpCost:
    """Count and average cycle cost of one operation class."""

    count: int
    cycles: int

    @property
    def avg_cycles(self) -> float:
        return self.cycles / self.count if self.count else 0.0

    def to_pair(self) -> list:
        return [self.count, self.cycles]

    @classmethod
    def from_pair(cls, pair) -> "OpCost":
        return cls(int(pair[0]), int(pair[1]))


@dataclass(frozen=True)
class RunMetrics:
    """Measured quantities for one workload execution."""

    config_name: str
    workload_name: str
    cycles: int
    seconds: float

    mapping_faults: OpCost
    consistency_faults: OpCost

    dcache_flushes: OpCost
    dcache_purges: OpCost
    icache_flushes: OpCost
    icache_purges: OpCost

    dma_read_flushes: OpCost       # flushes performed to drive DMA-reads
    d_to_i_flushes: OpCost         # flushes for data->instruction copies
    new_mapping_purges: OpCost
    dma_write_purges: OpCost
    d_to_i_icache_purges: OpCost

    dma_reads: int
    dma_writes: int
    d_to_i_copies: int
    ipc_page_moves: int
    pages_zero_filled: int
    pages_copied: int

    @property
    def page_flushes(self) -> int:
        return self.dcache_flushes.count + self.icache_flushes.count

    @property
    def page_purges(self) -> int:
        return self.dcache_purges.count + self.icache_purges.count

    @property
    def consistency_overhead_cycles(self) -> int:
        """Cycles attributable to the cache being virtually indexed:
        consistency-fault handling plus data-cache purging for reasons
        other than DMA (Section 5.1's accounting)."""
        non_dma_purge_cycles = (self.dcache_purges.cycles
                                - self.dma_write_purges.cycles)
        return self.consistency_faults.cycles + non_dma_purge_cycles

    @property
    def architecture_independent_cycles(self) -> int:
        """Cycles required regardless of cache architecture: DMA-driven
        flushing/purging and the instruction-space copies."""
        return (self.dma_read_flushes.cycles + self.dma_write_purges.cycles
                + self.d_to_i_flushes.cycles
                + self.d_to_i_icache_purges.cycles)

    @property
    def consistency_overhead_fraction(self) -> float:
        return (self.consistency_overhead_cycles / self.cycles
                if self.cycles else 0.0)

    def to_dict(self) -> dict:
        """A JSON-safe encoding that :meth:`from_dict` inverts exactly
        (the farm's result cache round-trips metrics through JSON; the
        equivalence tests assert ``from_dict(to_dict(m)) == m``)."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = value.to_pair() if isinstance(value, OpCost) \
                else value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunMetrics":
        kwargs = {}
        for f in fields(cls):
            value = data[f.name]
            kwargs[f.name] = (OpCost.from_pair(value)
                              if f.type == "OpCost" else value)
        return cls(**kwargs)


def snapshot_counters(counters: Counters) -> dict:
    """Deep-copy the counter state (for before/after differencing)."""
    return {
        "faults": counters.faults.copy(),
        "fault_cycles": counters.fault_cycles.copy(),
        "page_flushes": counters.page_flushes.copy(),
        "page_purges": counters.page_purges.copy(),
        "flush_cycles": counters.flush_cycles.copy(),
        "purge_cycles": counters.purge_cycles.copy(),
        "dma_reads": counters.dma_reads,
        "dma_writes": counters.dma_writes,
        "d_to_i_copies": counters.d_to_i_copies,
        "ipc_page_moves": counters.ipc_page_moves,
        "pages_zero_filled": counters.pages_zero_filled,
        "pages_copied": counters.pages_copied,
    }


def diff_metrics(config_name: str, workload_name: str,
                 before: dict, after: dict,
                 cycles: int, cost: CostModel) -> RunMetrics:
    """Build a RunMetrics from counter snapshots around an execution."""

    def _op(kind_counter: str, cycle_counter: str, cache: str | None,
            reason: Reason | None) -> OpCost:
        def total(snap, counter):
            # A cluster's per-CPU caches are named "cpu{i}.dcache"; the
            # suffix match aggregates them into the plain-name totals
            # (same rule as Counters._total).
            return sum(n for (c, r), n in snap[counter].items()
                       if (cache is None or c == cache
                           or c.endswith("." + cache))
                       and (reason is None or r == reason))
        return OpCost(total(after, kind_counter) - total(before, kind_counter),
                      total(after, cycle_counter) - total(before, cycle_counter))

    def _fault(kind: FaultKind) -> OpCost:
        return OpCost(after["faults"][kind] - before["faults"][kind],
                      after["fault_cycles"][kind] - before["fault_cycles"][kind])

    return RunMetrics(
        config_name=config_name,
        workload_name=workload_name,
        cycles=cycles,
        seconds=cost.seconds(cycles),
        mapping_faults=_fault(FaultKind.MAPPING),
        consistency_faults=_fault(FaultKind.CONSISTENCY),
        dcache_flushes=_op("page_flushes", "flush_cycles", "dcache", None),
        dcache_purges=_op("page_purges", "purge_cycles", "dcache", None),
        icache_flushes=_op("page_flushes", "flush_cycles", "icache", None),
        icache_purges=_op("page_purges", "purge_cycles", "icache", None),
        dma_read_flushes=_op("page_flushes", "flush_cycles", "dcache",
                             Reason.DMA_READ),
        d_to_i_flushes=_op("page_flushes", "flush_cycles", "dcache",
                           Reason.D_TO_I_COPY),
        new_mapping_purges=_op("page_purges", "purge_cycles", "dcache",
                               Reason.NEW_MAPPING),
        dma_write_purges=_op("page_purges", "purge_cycles", "dcache",
                             Reason.DMA_WRITE),
        d_to_i_icache_purges=_op("page_purges", "purge_cycles", "icache",
                                 Reason.D_TO_I_COPY),
        dma_reads=after["dma_reads"] - before["dma_reads"],
        dma_writes=after["dma_writes"] - before["dma_writes"],
        d_to_i_copies=after["d_to_i_copies"] - before["d_to_i_copies"],
        ipc_page_moves=after["ipc_page_moves"] - before["ipc_page_moves"],
        pages_zero_filled=(after["pages_zero_filled"]
                           - before["pages_zero_filled"]),
        pages_copied=after["pages_copied"] - before["pages_copied"],
    )
