"""Table renderers: print the regenerated evaluation tables in the
paper's row format.

Absolute numbers differ from the paper (our workloads run at a documented
fraction of the 1992 scale and our cycle costs are calibrated, not
measured on a 720); what these tables are for is checking the *shape*
claims — who wins, by roughly what factor, and where each cost lives.
"""

from __future__ import annotations

from repro.analysis.experiments import Table1Row
from repro.analysis.metrics import RunMetrics
from repro.workloads import afs_bench, kernel_build, latex_bench

_PAPER_TABLE1 = {
    "afs-bench": afs_bench.PAPER,
    "latex-paper": latex_bench.PAPER,
    "kernel-build": kernel_build.PAPER,
}


def render_table1(rows: list[Table1Row]) -> str:
    """Table 1: elapsed time, page flushes and purges, old vs new."""
    lines = [
        "Table 1: performance of the benchmarks under the old and new "
        "consistency management",
        f"{'Program':<14} {'old(s)':>9} {'new(s)':>9} {'gain':>6} "
        f"{'paper':>6} | {'flushes old':>11} {'new':>7} | "
        f"{'purges old':>10} {'new':>7}",
        "-" * 96,
    ]
    for row in rows:
        paper = _PAPER_TABLE1[row.workload]
        lines.append(
            f"{row.workload:<14} {row.old.seconds:>9.4f} "
            f"{row.new.seconds:>9.4f} {row.gain_percent:>5.1f}% "
            f"{paper.gain_percent:>5.1f}% | "
            f"{row.old.page_flushes:>11} {row.new.page_flushes:>7} | "
            f"{row.old.page_purges:>10} {row.new.page_purges:>7}")
    return "\n".join(lines)


def render_table4(results: dict[str, list[RunMetrics]]) -> str:
    """Table 4: per-configuration breakdown for each benchmark."""
    lines = ["Table 4: benchmarks across configurations A-F "
             "(counts with average cycles per operation)"]
    header = (f"  {'cfg':<4} {'time(s)':>9} "
              f"{'map flt':>8} {'cons flt':>9} "
              f"{'D-flush':>8} {'cyc':>5} {'D-purge':>8} {'cyc':>5} "
              f"{'I-purge':>8} {'DMA-fl':>7} {'d2i':>5}")
    for name, metrics in results.items():
        lines.append(f"\n{name}:")
        lines.append(header)
        lines.append("  " + "-" * 92)
        for m in metrics:
            lines.append(
                f"  {m.config_name:<4} {m.seconds:>9.4f} "
                f"{m.mapping_faults.count:>8} {m.consistency_faults.count:>9} "
                f"{m.dcache_flushes.count:>8} "
                f"{m.dcache_flushes.avg_cycles:>5.0f} "
                f"{m.dcache_purges.count:>8} "
                f"{m.dcache_purges.avg_cycles:>5.0f} "
                f"{m.icache_purges.count:>8} "
                f"{m.dma_read_flushes.count:>7} "
                f"{m.d_to_i_copies:>5}")
    return "\n".join(lines)


def render_overhead_summary(metrics: list[RunMetrics]) -> str:
    """Section 5.1's closing accounting: total virtually-indexed-cache
    overhead vs architecture-independent cache management, as fractions of
    execution time (the paper reports 0.22% and 0.21% for configuration F
    over the three benchmarks)."""
    total_cycles = sum(m.cycles for m in metrics)
    vi_overhead = sum(m.consistency_overhead_cycles for m in metrics)
    arch_indep = sum(m.architecture_independent_cycles for m in metrics)
    lines = [
        "Section 5.1 overhead accounting (configuration "
        f"{metrics[0].config_name}):",
        f"  total execution:                {total_cycles:>12} cycles",
        f"  virtually-indexed-cache overhead: {vi_overhead:>10} cycles "
        f"({100 * vi_overhead / total_cycles:.3f}%)",
        f"  architecture-independent mgmt:    {arch_indep:>10} cycles "
        f"({100 * arch_indep / total_cycles:.3f}%)",
    ]
    return "\n".join(lines)


def render_micro(aligned, unaligned) -> str:
    """The Section 2.5 contrived benchmark."""
    ratio = unaligned.cycles / max(aligned.cycles, 1)
    return "\n".join([
        "Section 2.5 microbenchmark: one physical page written through two "
        "virtual addresses",
        f"  aligned:   {aligned.iterations} writes in "
        f"{aligned.seconds:.4f}s ({aligned.cycles_per_write:.1f} cyc/write, "
        f"{aligned.consistency_faults} consistency faults)",
        f"  unaligned: {unaligned.iterations} writes in "
        f"{unaligned.seconds:.4f}s ({unaligned.cycles_per_write:.1f} "
        f"cyc/write, {unaligned.consistency_faults} consistency faults)",
        f"  slowdown:  {ratio:.0f}x   (paper: 'a fraction of a second' vs "
        "'over 2 minutes')",
    ])
