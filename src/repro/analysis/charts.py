"""ASCII charts for the evaluation results.

Terminal-friendly visualizations of the configuration ladder: horizontal
bars for elapsed time and for the cache-management operation counts, so
the A→F story is visible at a glance in the CLI and the bench artifacts.
"""

from __future__ import annotations

from repro.analysis.metrics import RunMetrics

BAR_WIDTH = 40


def _bar(value: float, maximum: float, width: int = BAR_WIDTH) -> str:
    if maximum <= 0:
        return ""
    filled = round(width * value / maximum)
    return "#" * filled


def render_ladder_chart(metrics: list[RunMetrics],
                        title: str | None = None) -> str:
    """Bar chart of one benchmark across the configuration ladder."""
    if not metrics:
        return "(no data)"
    lines = []
    workload = metrics[0].workload_name
    lines.append(title or f"{workload}: elapsed time by configuration")
    max_seconds = max(m.seconds for m in metrics)
    for m in metrics:
        lines.append(f"  {m.config_name:<3} {m.seconds:>8.4f}s "
                     f"|{_bar(m.seconds, max_seconds)}")
    lines.append("")
    lines.append(f"{workload}: cache management operations")
    max_ops = max(m.page_flushes + m.page_purges for m in metrics) or 1
    for m in metrics:
        ops = m.page_flushes + m.page_purges
        flush_part = round(BAR_WIDTH * m.page_flushes / max_ops)
        purge_part = round(BAR_WIDTH * m.page_purges / max_ops)
        lines.append(f"  {m.config_name:<3} {ops:>8} "
                     f"|{'F' * flush_part}{'P' * purge_part}")
    lines.append("      (F = flushes, P = purges)")
    return "\n".join(lines)


def render_comparison_chart(labels: list[str], values: list[float],
                            title: str, unit: str = "") -> str:
    """Generic labeled horizontal bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must pair up")
    lines = [title]
    maximum = max(values) if values else 0
    width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        lines.append(f"  {label:<{width}} {value:>10.1f}{unit} "
                     f"|{_bar(value, maximum)}")
    return "\n".join(lines)
