"""Parameter sweeps: how the evaluation's shapes move with the machine.

The paper measured one machine (a 720 with a 256 KiB data cache).  The
simulator can sweep machine parameters and show how the policy trade-offs
move — most interestingly with cache size: the smaller the cache, the
more often lazily deferred flush/purge targets have already been evicted
by natural replacement, which is the effect the paper credits for cheap
deferred operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiments import make_workload, run_workload
from repro.analysis.metrics import RunMetrics
from repro.hw.params import CacheGeometry, MachineConfig
from repro.vm.policy import PolicyConfig, by_name


@dataclass(frozen=True)
class SweepPoint:
    """One (cache size, policy) measurement."""

    dcache_kib: int
    metrics: RunMetrics

    @property
    def avg_purge_cycles(self) -> float:
        return self.metrics.dcache_purges.avg_cycles

    @property
    def avg_flush_cycles(self) -> float:
        return self.metrics.dcache_flushes.avg_cycles


def machine_with_dcache(kib: int, phys_pages: int = 320) -> MachineConfig:
    """An evaluation machine with a resized data cache (icache scaled to
    half, as on the 720)."""
    return MachineConfig(
        dcache=CacheGeometry(size=kib * 1024),
        icache=CacheGeometry(size=max(8, kib // 2) * 1024),
        phys_pages=phys_pages)


def sweep_cache_sizes(workload_name: str, policy: PolicyConfig,
                      sizes_kib: tuple[int, ...] = (32, 64, 128, 256),
                      scale: float = 0.5, jobs: int = 1,
                      executor=None,
                      geometry: str | None = None) -> list[SweepPoint]:
    """Run one workload/policy across data-cache sizes.

    With ``jobs > 1`` (or an explicit farm ``executor``) each size runs
    as one farm job — identical points, sharded and cacheable (see
    :mod:`repro.farm`); every sweep point is a pure function of
    (workload, policy, size, scale, geometry).  ``geometry`` is an
    :func:`~repro.hw.params.apply_geometry` spec ("2way+victim8+l2")
    applied on top of each resized machine."""
    if jobs <= 1 and executor is None:
        points = []
        for kib in sizes_kib:
            config = machine_with_dcache(kib)
            if geometry is not None:
                from repro.hw.params import apply_geometry
                config = apply_geometry(config, geometry)
            metrics = run_workload(make_workload(workload_name, scale),
                                   policy, config=config)
            points.append(SweepPoint(kib, metrics))
        return points
    from repro.farm import Executor, farm_sweep_points

    if executor is None:
        executor = Executor(jobs=jobs)
    return farm_sweep_points(workload_name, policy.name, tuple(sizes_kib),
                             scale, executor, geometry=geometry)


def run_sweep(workload_name: str, policy_names: tuple[str, ...],
              sizes_kib: tuple[int, ...], scale: float = 0.5,
              jobs: int = 1, executor=None,
              geometry: str | None = None) -> dict[str, list[SweepPoint]]:
    """The CLI's sweep: every policy across every cache size.  When
    farmed, the whole (policy, size) grid runs as one spec batch, so
    every point shares the worker pool."""
    for name in policy_names:
        by_name(name)                  # fail fast on unknown policies
    if jobs <= 1 and executor is None:
        return {name: sweep_cache_sizes(workload_name, by_name(name),
                                        sizes_kib, scale, geometry=geometry)
                for name in policy_names}
    from repro.farm import Executor, farm_sweep_grid

    if executor is None:
        executor = Executor(jobs=jobs)
    return farm_sweep_grid(workload_name, tuple(policy_names),
                           tuple(sizes_kib), scale, executor,
                           geometry=geometry)


def sweep_to_dict(points_by_policy: dict[str, list[SweepPoint]],
                  workload_name: str, scale: float) -> dict:
    """A JSON-safe encoding of a sweep (the CLI's ``--out`` artifact)."""
    return {
        "workload": workload_name,
        "scale": scale,
        "policies": {
            name: [{"dcache_kib": p.dcache_kib,
                    "metrics": p.metrics.to_dict()} for p in points]
            for name, points in points_by_policy.items()
        },
    }


def render_sweep(points_by_policy: dict[str, list[SweepPoint]],
                 workload_name: str) -> str:
    """Tabulate a sweep: time and per-operation costs by cache size."""
    lines = [f"Cache-size sweep, {workload_name}:",
             f"{'policy':<8} {'dcache':>8} {'time(s)':>9} {'flushes':>8} "
             f"{'avg cyc':>8} {'purges':>7} {'avg cyc':>8}"]
    lines.append("-" * 62)
    for policy_name, points in points_by_policy.items():
        for point in points:
            m = point.metrics
            lines.append(
                f"{policy_name:<8} {point.dcache_kib:>6}Ki {m.seconds:>9.4f} "
                f"{m.dcache_flushes.count:>8} {point.avg_flush_cycles:>8.0f} "
                f"{m.dcache_purges.count:>7} {point.avg_purge_cycles:>8.0f}")
    return "\n".join(lines)
