"""Command-line interface: regenerate the paper's evaluation artifacts.

Usage::

    python -m repro table1 [--scale 1.0]
    python -m repro table2
    python -m repro table4 [--scale 1.0] [--workload kernel-build]
    python -m repro table5 [--scale 1.0]
    python -m repro micro [--iterations 20000]
    python -m repro run <workload> [--policy F] [--scale 1.0]
                                   [--inject PLAN --seed N] [--conform]
                                   [--trace-events FILE] [--cpus N]
                                   [--geometry SPEC] [--list-points]
    python -m repro chaos [--plans 50] [--preset mixed] [--steps 200]
                          [--jobs N] [--cpus N] [--policy NAME]
                          [--list-points]
    python -m repro policies
    python -m repro smp [--out FILE] [--jobs N]
    python -m repro conform [--sequences 200] [--seed 0] [--scale 0.25]
                            [--mutant NAME] [--jobs N]
    python -m repro sweep [--workload kernel-build] [--policies A,F]
                          [--sizes 32,64,128,256] [--geometry SPEC]
                          [--jobs N] [--out FILE]
    python -m repro farm {stats,gc,clear,run} [--specs FILE] [--jobs N]
    python -m repro trace <workload> [--out FILE] [--diff GOLDEN]
    python -m repro trace compile <workload> --out FILE [--policy F]
                          [--inject PLAN --seed N] [--conform]
                          [--trace-events]
    python -m repro trace replay <FILE> [--exact] [--events-out FILE]
    python -m repro metrics [workload|micro] [--format json|prom]
    python -m repro profile <workload> [--policy F] [--scale 1.0]
    python -m repro all [--scale 1.0]

Every command prints the regenerated table to stdout; ``run`` executes a
single workload under a named policy configuration and prints the
counters the tables are built from.  ``--inject`` arms the deterministic
fault injector for the run (see docs/fault-injection.md for the plan
grammar); ``chaos`` runs the detected-or-harmless harness over a batch of
seeded random fault plans.  ``--cpus N`` boots an N-CPU coherent cluster
(Section 3.3, docs/smp.md): ``run`` spreads the workload's tasks over
the CPUs, ``chaos`` arms the ``smp.snoop.*`` race points and shadows
every CPU with its own lockstep oracle, and ``smp`` regenerates the
1..8-CPU aligned-vs-unaligned scaling curve (``BENCH_smp.json``).
``--geometry SPEC`` reshapes the cache hierarchy for ``run`` and
``sweep``: '+'-separated tokens ``<N>way`` (set-associative L1),
``victim<N>`` (fully associative victim cache), ``l2[:SIZE[/WAYS]]``
(unified physically indexed L2), ``wt``, ``pi`` — every configuration
obeys the same derived Table 2 (docs/hierarchy.md).
``--list-points`` prints the injection-point catalog.  ``conform`` runs the lockstep conformance
engine (see docs/conformance.md): an explorer sweep, an arc-coverage run,
and live shadowing of the paper workloads — or, with ``--mutant``,
demonstrates detection and shrinking against a seeded bug.  ``trace``
records a workload's consistency event trace, optionally writing it as
JSON lines or diffing it against a golden artifact; ``trace compile``
lowers a whole run into a replayable op-stream artifact (composing with
``--inject``/``--conform``/``--trace-events``) and ``trace replay``
re-executes one through the batched interpreter, verifying bit-identical
counters, clock and event hashes (see docs/trace-compiler.md).
``metrics`` runs a
workload (or the alignment microbenchmark) and exports the complete
counter state as JSON or Prometheus text; ``profile`` runs a workload
under the cycle-attribution profiler and prints the cycle flamegraph;
``policies`` lists every registered consistency policy — the paper's
flag bags plus external strategies (``rlt``, ``vespa``; see
docs/policies.md) usable wherever ``--policy`` is accepted;
``run --trace-events FILE`` streams the structured event bus (flushes,
purges, faults, DMA, injections, divergences) to a JSONL file (see
docs/observability.md).

``sweep`` runs cache-size sweeps and ``chaos``/``conform`` accept
``--jobs N``: work shards across the simulation farm's worker pool with
per-job timeouts, bounded retries, and a content-addressed result cache
that makes reruns near-free (see docs/farm.md); ``farm`` inspects and
maintains that cache (``stats``/``gc``/``clear``) or runs an arbitrary
spec batch from a JSONL file (``run --specs``).  Farm commands accept
``--trace-events FILE`` to stream fleet progress (jobs queued, started,
done, retried, cache hits) as JSON lines.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.charts import render_ladder_chart
from repro.analysis.comparison import render_table5
from repro.analysis.experiments import (DEFAULT_SCALE, evaluation_machine,
                                        make_workload, run_alignment_micro,
                                        run_table1, run_table4,
                                        run_table5_probe, run_workload)
from repro.analysis.tables import (render_micro, render_overhead_summary,
                                   render_table1, render_table4)
from repro.core.transitions import render_table2
from repro.errors import ConformanceError, ReproError
from repro.policy import get_policy

#: the workload names the evaluation (and the golden traces) cover.
WORKLOAD_NAMES = ("afs-bench", "latex-paper", "kernel-build")


def _cmd_table1(args) -> None:
    print(render_table1(run_table1(scale=args.scale)))


def _cmd_table2(args) -> None:
    print(render_table2())


def _cmd_table4(args) -> None:
    names = (args.workload,) if args.workload else None
    results = run_table4(scale=args.scale, workload_names=names)
    print(render_table4(results))
    print()
    print(render_overhead_summary([m[-1] for m in results.values()]))
    if getattr(args, "chart", False):
        for metrics in results.values():
            print()
            print(render_ladder_chart(metrics))


def _cmd_table5(args) -> None:
    print(render_table5(run_table5_probe(scale=args.scale)))


def _cmd_micro(args) -> None:
    aligned, unaligned = run_alignment_micro(iterations=args.iterations)
    print(render_micro(aligned, unaligned))


def _print_points() -> None:
    """``--list-points``: the injection-point catalog, grouped by class."""
    from repro.faults.injector import POINT_DESCRIPTIONS, classify_point

    groups: dict[str, list[str]] = {}
    for point in sorted(POINT_DESCRIPTIONS):
        groups.setdefault(classify_point(point), []).append(point)
    for kind in ("consistency", "snoop-race", "recoverable", "terminal"):
        print(f"{kind}:")
        for point in groups.pop(kind, []):
            print(f"  {point:<32} {POINT_DESCRIPTIONS[point]}")
    for kind, points in sorted(groups.items()):  # any future classes
        print(f"{kind}:")
        for point in points:
            print(f"  {point:<32} {POINT_DESCRIPTIONS[point]}")


def _cmd_run(args) -> None:
    if getattr(args, "list_points", False):
        return _print_points()
    policy = get_policy(args.policy)
    config = evaluation_machine(n_cpus=args.cpus)
    geometry = getattr(args, "geometry", None)
    if geometry:
        from repro.hw.params import apply_geometry

        config = apply_geometry(config, geometry)
    trace_path = getattr(args, "trace_events", None)
    kernel = injector = monitor = trace_file = None
    if (args.inject or getattr(args, "conform", False) or trace_path
            or args.cpus > 1 or config.has_hierarchy):
        from repro.kernel.kernel import Kernel

        kernel = Kernel(policy=policy, config=config)
    trace_counts: dict[str, int] = {}
    if trace_path:
        bus = kernel.machine.bus.enable()
        trace_file = open(trace_path, "w")

        def _write_event(event):
            trace_file.write(event.to_json() + "\n")
            trace_counts[event.kind] = trace_counts.get(event.kind, 0) + 1

        bus.subscribe(_write_event)
    if args.inject:
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan.parse(args.inject, seed=args.seed)
        injector = FaultInjector(plan, kernel.machine.clock)
        injector.attach_kernel(kernel)
    if getattr(args, "conform", False):
        from repro.conformance import (ConformanceMonitor,
                                       SmpConformanceMonitor)

        # Under injection divergences are *expected*: record them for the
        # end-of-run report instead of failing fast.  On a cluster the
        # shadow is one lockstep oracle per CPU.
        cls = SmpConformanceMonitor if args.cpus > 1 else ConformanceMonitor
        monitor = cls(kernel, record_only=injector is not None)
        monitor.attach()
    try:
        metrics = run_workload(make_workload(args.workload, args.scale),
                               policy, config=config,
                               kernel=kernel)
    except ConformanceError as exc:
        print(f"{args.workload} under configuration {policy.name}: "
              f"lockstep divergence from the Table 2 model")
        print(f"  {type(exc).__name__}: {exc}")
        for event in exc.prefix[-10:]:
            print(f"    {event}")
        raise SystemExit(1)
    except ReproError as exc:
        if injector is None:
            raise
        print(f"{args.workload} under configuration {policy.name}: "
              f"fail-stop after {len(injector.audit)} injections")
        print(f"  detected: {type(exc).__name__}: {exc}")
        for record in injector.audit:
            print(f"    {record}")
        raise SystemExit(1)
    finally:
        if monitor is not None:
            monitor.detach()
        if trace_file is not None:
            trace_file.close()
            total = sum(trace_counts.values())
            summary = ", ".join(f"{kind}={n}" for kind, n
                                in sorted(trace_counts.items()))
            print(f"trace events: {total} written to {trace_path}"
                  + (f" ({summary})" if summary else ""))
    print(f"{metrics.workload_name} under configuration {policy.name} "
          f"({policy.description}):")
    print(f"  elapsed:            {metrics.seconds:.4f}s "
          f"({metrics.cycles} cycles)")
    print(f"  mapping faults:     {metrics.mapping_faults.count}")
    print(f"  consistency faults: {metrics.consistency_faults.count}")
    print(f"  dcache flushes:     {metrics.dcache_flushes.count} "
          f"(DMA {metrics.dma_read_flushes.count}, "
          f"d->i {metrics.d_to_i_flushes.count})")
    print(f"  dcache purges:      {metrics.dcache_purges.count} "
          f"(new-mapping {metrics.new_mapping_purges.count})")
    print(f"  icache purges:      {metrics.icache_purges.count}")
    print(f"  DMA:                {metrics.dma_reads} reads, "
          f"{metrics.dma_writes} writes")
    if args.cpus > 1 and kernel is not None:
        counters = kernel.machine.counters
        print(f"  snoop coherence:    "
              f"{counters.coherence_invalidations} invalidations, "
              f"{counters.coherence_writebacks} write-backs "
              f"({args.cpus} CPUs)")
    if kernel is not None and kernel.machine.hierarchy is not None:
        counters = kernel.machine.counters
        print(f"  cache hierarchy:    {counters.victim_hits} victim hits "
              f"({counters.victim_captures} captures), "
              f"{counters.l2_hits} L2 hits ({counters.l2_fills} fills) "
              f"[{geometry}]")
    print(f"  VI-cache overhead:  "
          f"{100 * metrics.consistency_overhead_fraction:.3f}%")
    if injector is not None:
        print(f"  fault injections:   {len(injector.audit)} "
              f"(plan seed {args.seed})")
        for record in injector.audit:
            print(f"    {record}")
    if monitor is not None:
        print(f"  conformance:        {monitor.summary()}")
        for divergence in monitor.divergences:
            print(f"    {divergence}")


def _farm_setup(args, default_cache: bool = False):
    """Build an :class:`~repro.farm.Executor` from a command's farm
    flags.  Returns ``(executor, finish)``; ``finish()`` closes the
    ``--trace-events`` stream (a no-op without one)."""
    from repro.farm import DEFAULT_TIMEOUT, Executor, ResultCache

    cache = None
    if not args.no_cache and (args.cache_dir or default_cache):
        cache = ResultCache(args.cache_dir)
    executor = Executor(jobs=args.jobs, cache=cache,
                        timeout=args.timeout or DEFAULT_TIMEOUT)
    if not args.trace_events:
        return executor, lambda: None
    handle = open(args.trace_events, "w")
    executor.bus.enable().subscribe(
        lambda event: handle.write(event.to_json() + "\n"))
    return executor, handle.close


def _farm_line(executor, stats=None) -> str:
    s = stats if stats is not None else executor.stats
    line = (f"farm: {s.jobs} jobs, {s.done} done, {s.failed} failed, "
            f"{s.cache_hits} cache hits, {s.retries} retries "
            f"({executor.jobs} worker{'s' if executor.jobs != 1 else ''}, "
            f"{s.wall_seconds:.2f}s)")
    if s.degraded:
        line += " [degraded to serial]"
    return line


def _merge_stats(totals, stats):
    """Sum FarmStats across several ``Executor.run`` calls (each call
    resets ``executor.stats``; multi-suite commands want the total)."""
    if totals is None:
        return stats
    totals.jobs += stats.jobs
    totals.done += stats.done
    totals.failed += stats.failed
    totals.cache_hits += stats.cache_hits
    totals.retries += stats.retries
    totals.worker_deaths += stats.worker_deaths
    totals.degraded |= stats.degraded
    totals.wall_seconds += stats.wall_seconds
    return totals


def _cmd_chaos(args) -> None:
    if getattr(args, "list_points", False):
        return _print_points()
    from repro.faults import run_chaos_suite
    from repro.faults.harness import PRESETS, render_suite

    presets = ([args.preset] if args.preset != "all"
               else [p for p in PRESETS
                     if p != "control"
                     and (args.cpus > 1 or p != "snoop")])
    # The classic in-process loop unless a farm flag asks for sharding,
    # caching, or progress events — jobs=1 farm runs are bit-identical.
    farmed = bool(args.jobs > 1 or args.cache_dir or args.trace_events)
    executor, finish = _farm_setup(args) if farmed else (None, lambda: None)
    reports = []
    totals = None
    policy_kwargs = ({"policy": args.policy}
                     if getattr(args, "policy", None) else {})
    try:
        for preset in presets:
            reports += run_chaos_suite(
                range(args.seed, args.seed + args.plans),
                preset=preset, steps=args.steps, executor=executor,
                n_cpus=args.cpus, **policy_kwargs)
            if executor is not None:
                totals = _merge_stats(totals, executor.stats)
    finally:
        finish()
    print(render_suite(reports))
    if args.cpus > 1:
        per_cpu: dict[int, int] = {}
        for report in reports:
            for cpu, n in report.conform_per_cpu.items():
                per_cpu[cpu] = per_cpu.get(cpu, 0) + n
        shadows = ", ".join(f"cpu{cpu}={n}"
                            for cpu, n in sorted(per_cpu.items()))
        print(f"per-CPU lockstep divergences ({args.cpus} CPUs): "
              f"{shadows or 'none'}")
    if executor is not None:
        print(_farm_line(executor, totals))
    if any(not r.ok for r in reports):
        raise SystemExit(1)


def _cmd_smp(args) -> None:
    import importlib.util
    import json
    import pathlib

    # The measurement lives in the benchmark module (the CI smp job runs
    # the same file standalone); the CLI farms and prints it.
    bench_path = (pathlib.Path(__file__).resolve().parents[2]
                  / "benchmarks" / "bench_smp_scaling.py")
    spec = importlib.util.spec_from_file_location("bench_smp_scaling",
                                                  bench_path)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)

    executor, finish = _farm_setup(args, default_cache=True)
    try:
        result = bench.measure(executor)
    finally:
        finish()
    print(bench.render(result))
    print(_farm_line(executor))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"wrote SMP scaling curve to {args.out}")
    failures = bench.check(result)
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    if failures:
        raise SystemExit(1)


def _cmd_serve(args) -> None:
    import json

    from repro.farm import farm_serve

    executor, finish = _farm_setup(args, default_cache=False)
    sizing = {key: getattr(args, key) for key in
              ("hot_files", "file_pages", "frontends",
               "buffer_cache_pages")
              if getattr(args, key) is not None}
    try:
        report = farm_serve(args.cohorts, args.users_per_cohort, executor,
                            policy=args.policy, conform=args.conform,
                            **sizing)
    finally:
        finish()
    print(report.summary())
    print(_farm_line(executor))
    if args.out:
        payload = {"report": report.to_dict(),
                   "farm": executor.stats.as_dict()}
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote serve report to {args.out}")


def _cmd_conform(args) -> None:
    from repro.conformance import (ArcCoverage, ConformanceMonitor, Explorer,
                                   apply_mutant)
    from repro.kernel.kernel import Kernel

    if args.mutant:
        with apply_mutant(args.mutant):
            report = Explorer(num_cache_pages=args.cache_pages,
                              seed=args.seed).explore(args.sequences)
        print(report.render())
        if report.ok:
            print(f"mutant {args.mutant}: NOT DETECTED")
            raise SystemExit(1)
        first = min(ce.events_until_detection
                    for ce in report.counterexamples)
        shortest = min(len(ce.shrunk) for ce in report.counterexamples)
        print(f"mutant {args.mutant}: detected (first after {first} events, "
              f"shortest shrunk witness {shortest} events)")
        return

    failed = False
    totals = None
    # --jobs N farms the explorer sweep (independently seeded shards,
    # coverage merged) and the three workload shadow runs; the serial
    # path below is untouched when jobs is 1 and no farm flag is set.
    farmed = bool(args.jobs > 1 or args.cache_dir or args.trace_events)
    executor, finish = _farm_setup(args) if farmed else (None, lambda: None)
    try:
        # 1. The seeded sweep: many deep sequences, zero divergences
        #    expected.
        if executor is None:
            sweep = Explorer(num_cache_pages=args.cache_pages,
                             seed=args.seed).explore(args.sequences)
        else:
            from repro.farm import farm_explore

            sweep = farm_explore(args.seed, args.sequences,
                                 args.cache_pages, executor)
            totals = _merge_stats(totals, executor.stats)
        print(sweep.render())
        failed |= not sweep.ok

        # 2. The arc-coverage run: keep going until all 48 arcs are seen.
        cover = Explorer(num_cache_pages=args.cache_pages,
                         seed=args.seed + 1).explore_until_covered()
        print(f"coverage run: all arcs after {cover.sequences} sequences / "
              f"{cover.events} events")
        failed |= not (cover.ok and cover.coverage.complete)

        # 3. Live shadowing of the paper workloads.
        policy = get_policy(args.policy)
        merged = ArcCoverage()
        merged.merge(sweep.coverage)
        merged.merge(cover.coverage)
        if executor is None:
            for name in WORKLOAD_NAMES:
                kernel = Kernel(policy=policy, config=evaluation_machine(),
                                buffer_cache_pages=48)
                with ConformanceMonitor(kernel,
                                        record_only=True) as monitor:
                    run_workload(make_workload(name, args.scale), policy,
                                 kernel=kernel)
                summary = monitor.summary()
                print(f"{name:>12}: {summary}")
                merged.merge(monitor.coverage)
                failed |= not monitor.ok
                for divergence in monitor.divergences:
                    print(f"              {divergence}")
        else:
            from repro.farm import JobSpec

            specs = [JobSpec.workload(workload=name, policy=policy.name,
                                      scale=args.scale,
                                      buffer_cache_pages=48, conform=True)
                     for name in WORKLOAD_NAMES]
            outcomes = executor.run(specs)
            totals = _merge_stats(totals, executor.stats)
            for name, outcome in zip(WORKLOAD_NAMES, outcomes):
                if not outcome.ok:
                    print(f"{name:>12}: farm job failed: {outcome.failure}")
                    failed = True
                    continue
                shadow = outcome.payload["conform"]
                coverage = ArcCoverage.from_dict(shadow["coverage"])
                print(f"{name:>12}: {shadow['events']} events, "
                      f"{len(shadow['divergences'])} divergences, "
                      f"{coverage.summary()}")
                merged.merge(coverage)
                failed |= not shadow["ok"]
                for divergence in shadow["divergences"]:
                    print(f"              {divergence}")
    finally:
        finish()

    print(f"combined {merged.summary()}")
    if executor is not None:
        print(_farm_line(executor, totals))
    if failed:
        print("verdict: DIVERGED from the Table 2 model")
        raise SystemExit(1)
    print("verdict: conforms to the Table 2 model")


def _cmd_sweep(args) -> None:
    import json

    from repro.analysis.sweep import render_sweep, run_sweep, sweep_to_dict

    sizes = tuple(int(s) for s in args.sizes.split(","))
    policies = tuple(p.strip() for p in args.policies.split(",")
                     if p.strip())
    # Sweeps default the cache *on*: every point is a pure function of
    # (workload, policy, size, scale), so a repeated sweep answers from
    # disk (--no-cache forces recomputation).
    executor, finish = _farm_setup(args, default_cache=True)
    try:
        points = run_sweep(args.workload, policies, sizes,
                           scale=args.scale, executor=executor,
                           geometry=args.geometry)
    finally:
        finish()
    print(render_sweep(points, args.workload))
    print(_farm_line(executor))
    if args.out:
        artifact = sweep_to_dict(points, args.workload, args.scale)
        if args.geometry:
            artifact["geometry"] = args.geometry
        artifact["farm"] = executor.stats.as_dict()
        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2)
            handle.write("\n")
        print(f"wrote sweep to {args.out}")


def _cmd_farm(args) -> None:
    import json

    from repro.farm import JobSpec, ResultCache, code_fingerprint

    if args.action == "stats":
        print(json.dumps(ResultCache(args.cache_dir)
                         .stats(code_fingerprint()), indent=2))
        return
    if args.action == "clear":
        cache = ResultCache(args.cache_dir)
        print(f"cleared {cache.clear()} cached results from {cache.root}")
        return
    if args.action == "gc":
        cache = ResultCache(args.cache_dir)
        removed = cache.gc(code_fingerprint())
        print(f"evicted {removed} stale results from {cache.root}")
        return

    # action == "run": execute a JSON-lines spec batch.
    if not args.specs:
        raise SystemExit("farm run requires --specs FILE.jsonl")
    specs = []
    with open(args.specs) as handle:
        for line in handle:
            if line.strip():
                specs.append(JobSpec.from_dict(json.loads(line)))
    executor, finish = _farm_setup(args, default_cache=True)
    try:
        outcomes = executor.run(specs)
    finally:
        finish()
    for outcome in outcomes:
        status = ("cached" if outcome.cache_hit
                  else "ok" if outcome.ok else str(outcome.failure))
        print(f"  {outcome.spec.label():<44} {status}")
    print(_farm_line(executor))
    if args.out:
        with open(args.out, "w") as handle:
            for outcome in outcomes:
                failure = outcome.failure
                handle.write(json.dumps({
                    "spec": outcome.spec.to_dict(),
                    "ok": outcome.ok,
                    "cache_hit": outcome.cache_hit,
                    "payload": outcome.payload,
                    "failure": None if failure is None else {
                        "kind": failure.kind, "message": failure.message,
                        "attempts": failure.attempts},
                }) + "\n")
        print(f"wrote {len(outcomes)} outcomes to {args.out}")
    if any(not o.ok for o in outcomes):
        raise SystemExit(1)


def _cmd_trace(args) -> None:
    if args.target == "compile":
        return _cmd_trace_compile(args)
    if args.target == "replay":
        return _cmd_trace_replay(args)

    from repro.analysis.trace import Tracer, diff_traces
    from repro.kernel.kernel import Kernel

    policy = get_policy(args.policy)
    kernel = Kernel(policy=policy, config=evaluation_machine(),
                    buffer_cache_pages=48)
    with Tracer(kernel) as tracer:
        run_workload(make_workload(args.target, args.scale), policy,
                     kernel=kernel)
    print(f"{args.target} under configuration {policy.name}: "
          f"{len(tracer.events)} events")
    summary = tracer.summary()
    for kind in sorted(k for k in summary if ":" not in k):
        print(f"  {kind:<10} {summary[kind]}")
    if args.out:
        count = tracer.to_jsonl(args.out)
        print(f"wrote {count} events to {args.out}")
    if args.diff:
        golden = Tracer.load_jsonl(args.diff)
        diff = diff_traces(golden, tracer.events)
        if diff is not None:
            print(f"trace DIVERGES from {args.diff}:")
            print(diff.render())
            raise SystemExit(1)
        print(f"trace matches {args.diff} ({len(golden)} events)")


def _cmd_trace_compile(args) -> None:
    from repro.trace import compile_workload, save_trace

    if args.arg not in WORKLOAD_NAMES:
        raise SystemExit("trace compile: give a workload name "
                         f"(one of {', '.join(WORKLOAD_NAMES)})")
    if not args.out:
        raise SystemExit("trace compile: --out FILE is required")
    policy = get_policy(args.policy)
    trace = compile_workload(make_workload(args.arg, args.scale), policy,
                             inject=args.inject, seed=args.seed,
                             conform=args.conform,
                             trace_events=args.record_events)
    save_trace(args.out, trace)
    print(f"compiled {args.arg}/{policy.name} at scale {args.scale}: "
          f"{len(trace.ops)} ops, {len(trace.values)} values, "
          f"{trace.n_events} events -> {args.out}")
    if args.conform:
        print(f"conformance divergences recorded: "
              f"{trace.meta['divergences']}")


def _cmd_trace_replay(args) -> None:
    from repro.trace import load_trace, replay_trace

    if not args.arg:
        raise SystemExit("trace replay: give a trace artifact path")
    trace = load_trace(args.arg)
    result = replay_trace(trace, batched=not args.exact)
    print(f"replayed {trace.meta.get('workload')}: {result.n_ops} ops, "
          f"clock {result.clock}, {result.batches} fused windows "
          f"({result.batched_ops} ops, {result.fallbacks} fallbacks), "
          f"{result.n_events} events")
    if args.events_out and result.events_jsonl is not None:
        with open(args.events_out, "w") as handle:
            handle.write(result.events_jsonl)
        print(f"wrote replayed events to {args.events_out}")
    print(f"equivalent: {'true' if result.equivalent else 'FALSE'}")
    if not result.equivalent:
        for mismatch in result.mismatches:
            print(f"  {mismatch}")
        raise SystemExit(1)


def _cmd_metrics(args) -> None:
    from repro.kernel.kernel import Kernel
    from repro.obs import to_json, to_prometheus, verify_export
    from repro.workloads.microbench import run_alias_write_loop

    policy = get_policy(args.policy)
    kernel = Kernel(policy=policy, config=evaluation_machine(),
                    buffer_cache_pages=48)
    if args.target == "micro":
        run_alias_write_loop(kernel, args.iterations, aligned=False)
    else:
        run_workload(make_workload(args.target, args.scale), policy,
                     kernel=kernel)
    counters, clock = kernel.machine.counters, kernel.machine.clock
    # Every export is reconciled against the live counters before it is
    # printed; a mismatch is a bug, not a report.
    verify_export(counters, clock)
    if args.format == "prom":
        print(to_prometheus(counters, clock), end="")
    else:
        print(to_json(counters, clock))


def _cmd_profile(args) -> None:
    from repro.obs import profile_run

    report = profile_run(args.workload, policy=get_policy(args.policy),
                         scale=args.scale)
    print(report.render())
    if not report.ok:
        raise SystemExit(1)


def _cmd_policies(args) -> None:
    """``repro policies``: the registered consistency-policy catalog."""
    from repro.policy import all_policies

    origins = {"paper": "the A-F ladder and G (Sections 4-5)",
               "table5": "the Table 5 related systems",
               "external": "strategies from follow-on work"}
    by_origin: dict[str, list] = {}
    for policy in all_policies():
        by_origin.setdefault(policy.origin, []).append(policy)
    for origin in ("paper", "table5", "external"):
        group = by_origin.pop(origin, [])
        if not group:
            continue
        print(f"{origin} — {origins.get(origin, '')}:")
        for policy in group:
            print(f"  {policy.name:<12} {policy.description}")
    for origin, group in sorted(by_origin.items()):  # any future origins
        print(f"{origin}:")
        for policy in group:
            print(f"  {policy.name:<12} {policy.description}")


def _cmd_all(args) -> None:
    _cmd_table1(args)
    print()
    _cmd_table2(args)
    print()
    _cmd_table4(argparse.Namespace(scale=args.scale, workload=None))
    print()
    _cmd_table5(args)
    print()
    _cmd_micro(argparse.Namespace(iterations=10_000))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of Wheeler & Bershad, "
                    "'Consistency Management for Virtually Indexed Caches' "
                    "(ASPLOS 1992).")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, help_text):
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(fn=fn)
        return p

    def add_farm_args(p):
        p.add_argument("--jobs", type=int, default=1,
                       help="farm worker processes (1 = in-process "
                            "serial, bit-identical to the classic path)")
        p.add_argument("--cache-dir", metavar="DIR", dest="cache_dir",
                       help="result-cache directory (default "
                            "$REPRO_FARM_CACHE or ~/.cache/repro-farm)")
        p.add_argument("--no-cache", action="store_true", dest="no_cache",
                       help="disable the content-addressed result cache")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-job timeout in seconds (enforced in "
                            "pool mode)")
        p.add_argument("--trace-events", metavar="FILE",
                       dest="trace_events",
                       help="stream farm progress events (queued, start, "
                            "done, retry, cache-hit) to FILE as JSON "
                            "lines")

    p = add("table1", _cmd_table1, "old-vs-new benchmark comparison")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)

    add("table2", _cmd_table2, "the consistency state transition table")

    p = add("table4", _cmd_table4, "the A-F configuration ladder")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p.add_argument("--workload",
                   choices=["afs-bench", "latex-paper", "kernel-build"])
    p.add_argument("--chart", action="store_true",
                   help="append ASCII bar charts")

    p = add("table5", _cmd_table5, "the related-systems comparison")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)

    p = add("micro", _cmd_micro, "the Section 2.5 alignment loop")
    p.add_argument("--iterations", type=int, default=20_000)

    add("policies", _cmd_policies,
        "list the registered consistency policies (name, origin, "
        "description)")

    p = add("run", _cmd_run, "run one workload under one configuration")
    p.add_argument("workload",
                   choices=["afs-bench", "latex-paper", "kernel-build"])
    p.add_argument("--policy", default="F",
                   help="A..F, G, a Table 5 system, or an external "
                        "strategy (rlt, vespa); see `repro policies`")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p.add_argument("--inject", metavar="PLAN",
                   help="fault plan: 'point[:rate[:burst]],...' "
                        "(see docs/fault-injection.md)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the fault plan's RNG")
    p.add_argument("--conform", action="store_true",
                   help="shadow the run with the lockstep conformance "
                        "monitor (record-only when --inject is armed)")
    p.add_argument("--trace-events", metavar="FILE", dest="trace_events",
                   help="enable the structured event bus and stream every "
                        "event (flushes, purges, faults, DMA, injections, "
                        "divergences) to FILE as JSON lines")
    p.add_argument("--cpus", type=int, default=1,
                   help="run on an N-CPU coherent cluster (Section 3.3); "
                        "tasks spread round-robin over the CPUs")
    p.add_argument("--geometry", metavar="SPEC",
                   help="cache-hierarchy geometry: '+'-separated tokens "
                        "<N>way, victim<N>, l2[:SIZE[/WAYS]], wt, pi "
                        "(e.g. '2way+victim8+l2:256k/4'; see "
                        "docs/hierarchy.md)")
    p.add_argument("--list-points", action="store_true",
                   dest="list_points",
                   help="print the fault-injection point catalog and exit")

    p = add("chaos", _cmd_chaos,
            "detected-or-harmless harness over random fault plans")
    p.add_argument("--plans", type=int, default=50,
                   help="number of seeded plans per preset")
    p.add_argument("--preset", default="mixed",
                   choices=["control", "transient", "consistency",
                            "recovery", "mixed", "snoop", "all"])
    p.add_argument("--steps", type=int, default=200,
                   help="stressor steps per run")
    p.add_argument("--seed", type=int, default=0,
                   help="first seed of the batch")
    p.add_argument("--cpus", type=int, default=1,
                   help="boot each run on an N-CPU coherent cluster: "
                        "snoop-race points arm and the conformance shadow "
                        "becomes one lockstep oracle per CPU")
    p.add_argument("--policy", default=None,
                   help="consistency policy for every run (any name from "
                        "`repro policies`; default: the paper's new "
                        "system)")
    p.add_argument("--list-points", action="store_true",
                   dest="list_points",
                   help="print the fault-injection point catalog and exit")
    add_farm_args(p)

    p = add("smp", _cmd_smp,
            "the Section 3.3 SMP scaling curve (1..8 CPUs, aligned vs "
            "unaligned), farmed and cached")
    p.add_argument("--out", metavar="FILE",
                   help="write the curve (and farm stats) as JSON")
    add_farm_args(p)

    p = add("serve", _cmd_serve,
            "serve a simulated user population through the Unix server, "
            "cohort-sharded across the farm")
    p.add_argument("--cohorts", type=int, default=8,
                   help="user cohorts; each is one farm job on a fresh "
                        "kernel")
    p.add_argument("--users-per-cohort", type=int, default=500,
                   dest="users_per_cohort",
                   help="simulated users per cohort (~4.5 syscalls each)")
    p.add_argument("--policy", default=None,
                   help="consistency configuration (A..F, G, or a Table 5 "
                        "system; default the paper's new system)")
    p.add_argument("--conform", action="store_true",
                   help="shadow every cohort with the lockstep Table 2 "
                        "monitor and merge arc coverage (slow)")
    p.add_argument("--hot-files", type=int, default=None, dest="hot_files",
                   help="pre-existing on-disk files the users read")
    p.add_argument("--file-pages", type=int, default=None,
                   dest="file_pages", help="pages per hot file")
    p.add_argument("--frontends", type=int, default=None,
                   help="frontend processes multiplexing each cohort")
    p.add_argument("--buffer-cache-pages", type=int, default=None,
                   dest="buffer_cache_pages",
                   help="server buffer-cache capacity in pages")
    p.add_argument("--out", metavar="FILE",
                   help="write the merged report (and farm stats) as JSON")
    add_farm_args(p)

    p = add("conform", _cmd_conform,
            "lockstep conformance engine against the Table 2 model")
    p.add_argument("--sequences", type=int, default=200,
                   help="explorer sequences in the sweep")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-pages", type=int, default=3,
                   help="cache pages in the explorer's machine")
    p.add_argument("--policy", default="F",
                   help="configuration for the workload shadowing")
    p.add_argument("--scale", type=float, default=0.25,
                   help="workload scale for the shadowing runs")
    p.add_argument("--mutant", choices=["skip-dma-read-flush",
                                        "drop-stale-on-dma-write",
                                        "unconditional-will-overwrite"],
                   help="install a seeded bug and demonstrate detection")
    add_farm_args(p)

    p = add("sweep", _cmd_sweep,
            "cache-size sweep across policies, farmed and cached")
    p.add_argument("--workload", default="kernel-build",
                   choices=list(WORKLOAD_NAMES))
    p.add_argument("--policies", default="A,F",
                   help="comma-separated configuration names (A..F, G)")
    p.add_argument("--sizes", default="32,64,128,256",
                   help="comma-separated data-cache sizes in KiB")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--geometry", metavar="SPEC", default=None,
                   help="apply a cache-hierarchy geometry to every sweep "
                        "point (same grammar as 'run --geometry')")
    p.add_argument("--out", metavar="FILE",
                   help="write the sweep (and farm stats) as JSON")
    add_farm_args(p)

    p = add("farm", _cmd_farm,
            "inspect the farm's result cache or run a spec batch")
    p.add_argument("action", choices=["stats", "gc", "clear", "run"],
                   help="stats: inventory the cache; gc: drop entries "
                        "from other code versions; clear: drop "
                        "everything; run: execute a spec batch")
    p.add_argument("--specs", metavar="FILE",
                   help="JSON-lines JobSpec batch for 'run' (one spec "
                        "dict per line)")
    p.add_argument("--out", metavar="FILE",
                   help="write 'run' outcomes as JSON lines")
    add_farm_args(p)

    p = add("trace", _cmd_trace,
            "record an event trace, or compile/replay an op-stream trace")
    p.add_argument("target",
                   choices=list(WORKLOAD_NAMES) + ["compile", "replay"],
                   help="a workload name records its consistency event "
                        "trace; 'compile' lowers a run to a replayable "
                        "op-stream artifact; 'replay' re-executes one "
                        "and verifies bit-identical counters/clock")
    p.add_argument("arg", nargs="?", metavar="ARG",
                   help="compile: the workload to record; replay: the "
                        "trace artifact path")
    p.add_argument("--policy", default="F")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--out", metavar="FILE",
                   help="event trace: write JSON lines; compile: the "
                        "trace artifact to write (required)")
    p.add_argument("--diff", metavar="GOLDEN",
                   help="diff against a golden .jsonl trace; exit 1 and "
                        "pinpoint the first diverging event on mismatch")
    p.add_argument("--inject", metavar="PLAN",
                   help="compile: arm the fault injector; its effects "
                        "are baked into the recorded stream")
    p.add_argument("--seed", type=int, default=0,
                   help="compile: injection plan seed")
    p.add_argument("--conform", action="store_true",
                   help="compile: shadow the recorded run with the "
                        "lockstep conformance monitor")
    p.add_argument("--trace-events", action="store_true",
                   dest="record_events",
                   help="compile: record the event stream; replay must "
                        "then reproduce its JSONL hash bit for bit")
    p.add_argument("--exact", action="store_true",
                   help="replay: disable window fusion (exact tier only)")
    p.add_argument("--events-out", metavar="FILE",
                   help="replay: write the replayed event JSONL")

    p = add("metrics", _cmd_metrics,
            "run a workload and export the complete counter state")
    p.add_argument("target", nargs="?", default="micro",
                   choices=list(WORKLOAD_NAMES) + ["micro"],
                   help="workload to measure, or 'micro' for the "
                        "alignment microbenchmark (default)")
    p.add_argument("--format", default="json", choices=["json", "prom"],
                   help="export format: JSON (default) or Prometheus text")
    p.add_argument("--policy", default="F")
    p.add_argument("--scale", type=float, default=0.25,
                   help="workload scale (ignored for 'micro')")
    p.add_argument("--iterations", type=int, default=2_000,
                   help="microbenchmark iterations (for 'micro')")

    p = add("profile", _cmd_profile,
            "cycle-attribution profile of one workload")
    p.add_argument("workload", choices=list(WORKLOAD_NAMES))
    p.add_argument("--policy", default="F")
    p.add_argument("--scale", type=float, default=0.25)

    p = add("all", _cmd_all, "everything")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
