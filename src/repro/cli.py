"""Command-line interface: regenerate the paper's evaluation artifacts.

Usage::

    python -m repro table1 [--scale 1.0]
    python -m repro table2
    python -m repro table4 [--scale 1.0] [--workload kernel-build]
    python -m repro table5 [--scale 1.0]
    python -m repro micro [--iterations 20000]
    python -m repro run <workload> [--policy F] [--scale 1.0]
                                   [--inject PLAN --seed N]
    python -m repro chaos [--plans 50] [--preset mixed] [--steps 200]
    python -m repro all [--scale 1.0]

Every command prints the regenerated table to stdout; ``run`` executes a
single workload under a named policy configuration and prints the
counters the tables are built from.  ``--inject`` arms the deterministic
fault injector for the run (see docs/fault-injection.md for the plan
grammar); ``chaos`` runs the detected-or-harmless harness over a batch of
seeded random fault plans.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.charts import render_ladder_chart
from repro.analysis.comparison import render_table5
from repro.analysis.experiments import (DEFAULT_SCALE, evaluation_machine,
                                        make_workload, run_alignment_micro,
                                        run_table1, run_table4,
                                        run_table5_probe, run_workload)
from repro.analysis.tables import (render_micro, render_overhead_summary,
                                   render_table1, render_table4)
from repro.core.transitions import render_table2
from repro.errors import ReproError
from repro.vm.policy import by_name


def _cmd_table1(args) -> None:
    print(render_table1(run_table1(scale=args.scale)))


def _cmd_table2(args) -> None:
    print(render_table2())


def _cmd_table4(args) -> None:
    names = (args.workload,) if args.workload else None
    results = run_table4(scale=args.scale, workload_names=names)
    print(render_table4(results))
    print()
    print(render_overhead_summary([m[-1] for m in results.values()]))
    if getattr(args, "chart", False):
        for metrics in results.values():
            print()
            print(render_ladder_chart(metrics))


def _cmd_table5(args) -> None:
    print(render_table5(run_table5_probe(scale=args.scale)))


def _cmd_micro(args) -> None:
    aligned, unaligned = run_alignment_micro(iterations=args.iterations)
    print(render_micro(aligned, unaligned))


def _cmd_run(args) -> None:
    policy = by_name(args.policy)
    kernel = injector = None
    if args.inject:
        from repro.faults import FaultInjector, FaultPlan
        from repro.kernel.kernel import Kernel

        plan = FaultPlan.parse(args.inject, seed=args.seed)
        kernel = Kernel(policy=policy, config=evaluation_machine())
        injector = FaultInjector(plan, kernel.machine.clock)
        injector.attach_kernel(kernel)
    try:
        metrics = run_workload(make_workload(args.workload, args.scale),
                               policy, config=evaluation_machine(),
                               kernel=kernel)
    except ReproError as exc:
        if injector is None:
            raise
        print(f"{args.workload} under configuration {policy.name}: "
              f"fail-stop after {len(injector.audit)} injections")
        print(f"  detected: {type(exc).__name__}: {exc}")
        for record in injector.audit:
            print(f"    {record}")
        raise SystemExit(1)
    print(f"{metrics.workload_name} under configuration {policy.name} "
          f"({policy.description}):")
    print(f"  elapsed:            {metrics.seconds:.4f}s "
          f"({metrics.cycles} cycles)")
    print(f"  mapping faults:     {metrics.mapping_faults.count}")
    print(f"  consistency faults: {metrics.consistency_faults.count}")
    print(f"  dcache flushes:     {metrics.dcache_flushes.count} "
          f"(DMA {metrics.dma_read_flushes.count}, "
          f"d->i {metrics.d_to_i_flushes.count})")
    print(f"  dcache purges:      {metrics.dcache_purges.count} "
          f"(new-mapping {metrics.new_mapping_purges.count})")
    print(f"  icache purges:      {metrics.icache_purges.count}")
    print(f"  DMA:                {metrics.dma_reads} reads, "
          f"{metrics.dma_writes} writes")
    print(f"  VI-cache overhead:  "
          f"{100 * metrics.consistency_overhead_fraction:.3f}%")
    if injector is not None:
        print(f"  fault injections:   {len(injector.audit)} "
              f"(plan seed {args.seed})")
        for record in injector.audit:
            print(f"    {record}")


def _cmd_chaos(args) -> None:
    from repro.faults import run_chaos_suite
    from repro.faults.harness import PRESETS, render_suite

    presets = ([args.preset] if args.preset != "all"
               else [p for p in PRESETS if p != "control"])
    reports = []
    for preset in presets:
        reports += run_chaos_suite(range(args.seed, args.seed + args.plans),
                                   preset=preset, steps=args.steps)
    print(render_suite(reports))
    if any(not r.ok for r in reports):
        raise SystemExit(1)


def _cmd_all(args) -> None:
    _cmd_table1(args)
    print()
    _cmd_table2(args)
    print()
    _cmd_table4(argparse.Namespace(scale=args.scale, workload=None))
    print()
    _cmd_table5(args)
    print()
    _cmd_micro(argparse.Namespace(iterations=10_000))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of Wheeler & Bershad, "
                    "'Consistency Management for Virtually Indexed Caches' "
                    "(ASPLOS 1992).")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, help_text):
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(fn=fn)
        return p

    p = add("table1", _cmd_table1, "old-vs-new benchmark comparison")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)

    add("table2", _cmd_table2, "the consistency state transition table")

    p = add("table4", _cmd_table4, "the A-F configuration ladder")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p.add_argument("--workload",
                   choices=["afs-bench", "latex-paper", "kernel-build"])
    p.add_argument("--chart", action="store_true",
                   help="append ASCII bar charts")

    p = add("table5", _cmd_table5, "the related-systems comparison")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)

    p = add("micro", _cmd_micro, "the Section 2.5 alignment loop")
    p.add_argument("--iterations", type=int, default=20_000)

    p = add("run", _cmd_run, "run one workload under one configuration")
    p.add_argument("workload",
                   choices=["afs-bench", "latex-paper", "kernel-build"])
    p.add_argument("--policy", default="F",
                   help="A..F, G, or a Table 5 system name")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p.add_argument("--inject", metavar="PLAN",
                   help="fault plan: 'point[:rate[:burst]],...' "
                        "(see docs/fault-injection.md)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the fault plan's RNG")

    p = add("chaos", _cmd_chaos,
            "detected-or-harmless harness over random fault plans")
    p.add_argument("--plans", type=int, default=50,
                   help="number of seeded plans per preset")
    p.add_argument("--preset", default="mixed",
                   choices=["control", "transient", "consistency",
                            "recovery", "mixed", "all"])
    p.add_argument("--steps", type=int, default=200,
                   help="stressor steps per run")
    p.add_argument("--seed", type=int, default=0,
                   help="first seed of the batch")

    p = add("all", _cmd_all, "everything")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
