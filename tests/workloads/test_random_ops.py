"""Tests for the randomized alias/remap/DMA stressor."""

import pytest

from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.vm.policy import CONFIG_LADDER
from repro.workloads.random_ops import AliasStressor


def make_kernel(policy=CONFIG_LADDER[-1]):
    return Kernel(policy=policy, config=MachineConfig(phys_pages=256))


class TestStressor:
    def test_runs_all_action_kinds(self):
        stressor = AliasStressor(make_kernel(), seed=7)
        stats = stressor.run(600)
        assert stats.reads and stats.writes and stats.remaps
        assert stats.dma_ins and stats.dma_outs
        assert stats.page_reads and stats.page_writes

    def test_deterministic_given_seed(self):
        a = AliasStressor(make_kernel(), seed=3).run(200)
        b = AliasStressor(make_kernel(), seed=3).run(200)
        assert a == b

    def test_different_seeds_differ(self):
        a = AliasStressor(make_kernel(), seed=1).run(200)
        b = AliasStressor(make_kernel(), seed=2).run(200)
        assert a != b

    @pytest.mark.parametrize("policy", CONFIG_LADDER,
                             ids=[c.name for c in CONFIG_LADDER])
    def test_oracle_clean_under_every_policy(self, policy):
        kernel = make_kernel(policy)
        AliasStressor(kernel, seed=11).run(400)
        assert kernel.machine.oracle.clean

    def test_objects_keep_a_mapping_invariant(self):
        stressor = AliasStressor(make_kernel(), seed=5)
        stressor.run(300)
        for mappings in stressor.mappings:
            assert len(mappings) >= 1
