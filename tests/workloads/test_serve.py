"""The serve macro-workload: determinism, sharding, and the merge."""

import pytest

from repro.errors import ConfigurationError
from repro.farm import (Executor, JobSpec, farm_serve, run_spec,
                        serve_cohort_specs)
from repro.workloads.serve import (ServeCohortResult, merge_cohorts,
                                   run_serve_cohort, user_hash)


class TestCohortDeterminism:
    def test_same_cohort_twice_is_identical(self):
        assert run_serve_cohort(3, 80) == run_serve_cohort(3, 80)

    def test_cohorts_are_distinct_populations(self):
        a, b = run_serve_cohort(0, 80), run_serve_cohort(1, 80)
        assert a.checksum != b.checksum

    def test_user_hash_is_stable(self):
        # crc32, not hash(): the value must survive interpreter restarts
        # and cross process boundaries.
        assert user_hash(0, 0) == 0xEFEF3443

    def test_requests_count_server_syscalls(self):
        result = run_serve_cohort(0, 50)
        # Every user costs at least stat+open+read+close.
        assert result.requests >= 4 * 50
        assert result.reads >= 50
        assert result.cycles > 0
        assert result.bc_hits + result.bc_misses >= result.reads

    def test_conform_shadow_rides_the_cohort(self):
        plain = run_serve_cohort(2, 40)
        shadowed = run_serve_cohort(2, 40, conform=True)
        assert shadowed.coverage is not None
        assert shadowed.requests == plain.requests
        assert shadowed.checksum == plain.checksum

    def test_policies_change_cost_not_content(self):
        new = run_serve_cohort(0, 60)
        old = run_serve_cohort(0, 60, policy="A")
        assert old.checksum == new.checksum     # same bytes served
        assert old.cycles != new.cycles         # different management cost


class TestMerge:
    def test_merge_is_order_independent(self):
        results = [run_serve_cohort(c, 40) for c in range(3)]
        assert (merge_cohorts(results)
                == merge_cohorts(list(reversed(results))))

    def test_merge_sums_and_folds(self):
        results = [run_serve_cohort(c, 40) for c in range(2)]
        merged = merge_cohorts(results)
        assert merged.users == 80
        assert merged.requests == sum(r.requests for r in results)
        assert merged.counters["read_hits"] == sum(
            r.counters["read_hits"] for r in results)

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_cohorts([])


class TestFarmServe:
    def test_sharded_is_bit_identical_to_serial(self):
        serial = farm_serve(3, 40, Executor(jobs=1))
        pooled = farm_serve(3, 40, Executor(jobs=2, timeout=60.0))
        assert serial.to_dict() == pooled.to_dict()

    def test_conform_coverage_merges(self):
        report = farm_serve(2, 30, Executor(jobs=1), conform=True)
        assert report.coverage is not None
        assert "cohorts" in report.to_dict()
        assert "arc coverage" in report.summary()

    def test_cohort_specs_are_stable(self):
        assert (serve_cohort_specs(3, 100)
                == serve_cohort_specs(3, 100))
        specs = serve_cohort_specs(2, 50, policy="F", frontends=2)
        assert specs[0]["policy"] == "F"
        assert specs[1]["cohort"] == 1

    def test_runner_payload_round_trips(self):
        spec = JobSpec.serve(cohort=1, users=30)
        payload = run_spec(spec)
        result = ServeCohortResult.from_dict(payload["result"])
        assert result == run_serve_cohort(1, 30)

    def test_spec_defaults_drop_out(self):
        # None parameters are absent, so cache keys don't churn when a
        # default is spelled explicitly as None.
        assert (JobSpec.serve(cohort=0, users=10)
                == JobSpec.serve(cohort=0, users=10, policy=None))
        assert "cohort=0" in JobSpec.serve(cohort=0, users=10).label()

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(KeyError):
            run_serve_cohort(0, 10, policy="Z")


class TestValidation:
    def test_serve_spec_requires_scalars(self):
        with pytest.raises(ConfigurationError):
            JobSpec.make("serve", cohort={"not": "scalar"})
