"""Tests for the Section 2.5 alignment microbenchmark."""

import pytest

from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.vm.policy import NEW_SYSTEM, OLD_SYSTEM
from repro.workloads.microbench import run_alias_write_loop


def make_kernel(policy=NEW_SYSTEM):
    return Kernel(policy=policy, config=MachineConfig(phys_pages=128))


class TestAlignedLoop:
    def test_no_consistency_activity(self):
        result = run_alias_write_loop(make_kernel(), 500, aligned=True)
        assert result.consistency_faults == 0
        assert result.page_flushes == 0
        assert result.page_purges == 0

    def test_cheap_per_write(self):
        result = run_alias_write_loop(make_kernel(), 500, aligned=True)
        assert result.cycles_per_write < 20


class TestUnalignedLoop:
    def test_faults_every_alternation(self):
        result = run_alias_write_loop(make_kernel(), 500, aligned=False)
        # every write after the first two alternations faults
        assert result.consistency_faults >= 490
        assert result.page_flushes >= 490

    def test_orders_of_magnitude_slower(self):
        aligned = run_alias_write_loop(make_kernel(), 500, aligned=True)
        unaligned = run_alias_write_loop(make_kernel(), 500, aligned=False)
        # The paper: "a fraction of a second" vs "over 2 minutes" — at
        # least two orders of magnitude.
        assert unaligned.cycles_per_write > 100 * aligned.cycles_per_write

    def test_old_system_equally_bad_when_unaligned(self):
        new = run_alias_write_loop(make_kernel(NEW_SYSTEM), 300,
                                   aligned=False)
        old = run_alias_write_loop(make_kernel(OLD_SYSTEM), 300,
                                   aligned=False)
        assert old.cycles_per_write > 100   # no policy saves unaligned writes
        assert new.cycles_per_write > 100

    def test_values_remain_correct(self):
        # The loop runs under the oracle: completion implies every read of
        # the alternating writes was consistent.
        result = run_alias_write_loop(make_kernel(), 200, aligned=False)
        assert result.iterations == 200
