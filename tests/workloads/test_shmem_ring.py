"""Tests for the shared-memory ring workload."""

import pytest

from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.vm.policy import CONFIG_F, CONFIG_GLOBAL, OLD_SYSTEM, by_name
from repro.workloads.shmem_ring import run_ring


def make_kernel(policy=CONFIG_F):
    return Kernel(policy=policy, config=MachineConfig(phys_pages=128))


class TestCorrectness:
    def test_every_record_arrives_in_order(self):
        result = run_ring(make_kernel(), records=100, aligned=True)
        # checksum of 0..99 == sum
        assert result.checksum == sum(range(100))

    def test_unaligned_ring_also_correct(self):
        result = run_ring(make_kernel(), records=100, aligned=False)
        assert result.checksum == sum(range(100))

    def test_wraparound(self):
        # capacity = 2 pages x 128 slots; push well past it
        result = run_ring(make_kernel(), records=600, aligned=True)
        assert result.checksum == sum(range(600)) & 0xFFFFFFFF

    @pytest.mark.parametrize("policy",
                             [OLD_SYSTEM, CONFIG_F, CONFIG_GLOBAL,
                              by_name("Sun")],
                             ids=["old", "new", "global", "sun"])
    def test_correct_under_every_policy(self, policy):
        kernel = make_kernel(policy)
        result = run_ring(kernel, records=80, aligned=False)
        assert result.checksum == sum(range(80))
        assert kernel.machine.oracle.clean


class TestPerformanceShape:
    def test_aligned_ring_is_fault_free_after_warmup(self):
        result = run_ring(make_kernel(), records=300, aligned=True)
        # a handful of warmup transitions at most
        assert result.consistency_faults <= 6

    def test_unaligned_ring_ping_pongs(self):
        aligned = run_ring(make_kernel(), records=300, aligned=True)
        unaligned = run_ring(make_kernel(), records=300, aligned=False)
        assert unaligned.consistency_faults > 100
        assert unaligned.cycles_per_record > 5 * aligned.cycles_per_record

    def test_global_address_space_rings_always_align(self):
        kernel = make_kernel(CONFIG_GLOBAL)
        # even when the caller *asks* for an unaligned placement, the
        # global model maps the object at one shared address
        result = run_ring(kernel, records=200, aligned=False)
        assert result.consistency_faults <= 6

    def test_uncached_beats_trap_path_for_unaligned_sharing(self):
        # Sun's uncached fallback is the better mechanism for genuinely
        # unaligned ping-pong sharing: no faults, memory-speed accesses.
        trap = run_ring(make_kernel(CONFIG_F), records=200, aligned=False)
        uncached = run_ring(make_kernel(by_name("Sun")), records=200,
                            aligned=False)
        assert uncached.consistency_faults < trap.consistency_faults / 10
        assert uncached.cycles < trap.cycles
