"""Tests for the benchmark workloads: they run, they're deterministic,
and every configuration passes the staleness oracle end to end."""

import pytest

from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.vm.policy import CONFIG_LADDER, TABLE5_SYSTEMS
from repro.workloads.afs_bench import AfsBench
from repro.workloads.kernel_build import KernelBuild
from repro.workloads.latex_bench import LatexBench

ALL_WORKLOADS = [AfsBench, LatexBench, KernelBuild]


def run_under(workload_cls, policy, scale=0.25, phys_pages=256):
    kernel = Kernel(policy=policy, config=MachineConfig(phys_pages=phys_pages))
    workload = workload_cls(scale)
    workload.run(kernel)
    kernel.shutdown()
    return kernel


class TestOracleCleanliness:
    """The headline guarantee: every policy, every workload, no stale data.
    (The oracle raises on the first stale transfer, so completion == clean.)"""

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    @pytest.mark.parametrize("policy", CONFIG_LADDER,
                             ids=[c.name for c in CONFIG_LADDER])
    def test_ladder_configs_never_return_stale_data(self, workload_cls,
                                                    policy):
        kernel = run_under(workload_cls, policy)
        assert kernel.machine.oracle.clean
        assert kernel.machine.oracle.checks > 0

    @pytest.mark.parametrize("policy", TABLE5_SYSTEMS,
                             ids=[s.name for s in TABLE5_SYSTEMS])
    def test_table5_systems_never_return_stale_data(self, policy):
        kernel = run_under(AfsBench, policy)
        assert kernel.machine.oracle.clean


class TestDeterminism:
    def test_same_run_same_cycles(self):
        a = run_under(LatexBench, CONFIG_LADDER[-1])
        b = run_under(LatexBench, CONFIG_LADDER[-1])
        assert a.machine.clock.cycles == b.machine.clock.cycles
        assert (a.machine.counters.snapshot()
                == b.machine.counters.snapshot())


class TestWorkloadShapes:
    def test_kernel_build_execs_one_compiler_per_source(self):
        kernel = run_under(KernelBuild, CONFIG_LADDER[-1])
        # each compile faults 4 text pages, the linker 3
        assert kernel.machine.counters.d_to_i_copies >= 4 * 8

    def test_afs_bench_moves_pages_by_ipc(self):
        kernel = run_under(AfsBench, CONFIG_LADDER[-1])
        assert kernel.machine.counters.ipc_page_moves > 0

    def test_latex_writes_outputs_to_disk(self):
        kernel = run_under(LatexBench, CONFIG_LADDER[-1])
        assert kernel.fs.exists("/tex/paper.dvi")
        assert kernel.fs.exists("/tex/paper.log")
        assert kernel.disk.writes > 0

    def test_scale_parameter_grows_the_run(self):
        small = run_under(KernelBuild, CONFIG_LADDER[-1], scale=0.2)
        large = run_under(KernelBuild, CONFIG_LADDER[-1], scale=0.5)
        assert (large.machine.clock.cycles > small.machine.clock.cycles)

    def test_buffer_cache_serves_rereads_without_dma(self):
        # The paper: "all file system reads are satisfied by the Unix
        # buffer cache" for the first two benchmarks — a warm re-read
        # costs no disk DMA.
        kernel = Kernel(policy=CONFIG_LADDER[-1],
                        config=MachineConfig(phys_pages=256))
        from repro.kernel.process import UserProcess
        kernel.fs.create("/warm", size_pages=2, on_disk=True)
        proc = UserProcess(kernel, "p")
        fd = proc.open("/warm")
        proc.read_file_page(fd, 0)
        disk_reads = kernel.disk.reads
        for _ in range(5):
            proc.read_file_page(fd, 0)
        assert kernel.disk.reads == disk_reads
        assert kernel.buffer_cache.hits >= 5
