"""The Section 3.3 multi-CPU workloads: correctness, determinism, and
the aligned-vs-unaligned claim."""

import pytest

from repro.hw.params import small_machine
from repro.hw.stats import FaultKind
from repro.kernel.kernel import Kernel
from repro.workloads.smp import run_smp_ring, run_smp_unix_server


def make_kernel(n_cpus, **overrides):
    overrides.setdefault("phys_pages", 192)
    return Kernel(config=small_machine(n_cpus=n_cpus, **overrides),
                  buffer_cache_pages=16)


class TestSmpRing:
    @pytest.mark.parametrize("n_cpus", [1, 2, 4])
    @pytest.mark.parametrize("aligned", [True, False])
    def test_payload_integrity(self, n_cpus, aligned):
        result = run_smp_ring(make_kernel(n_cpus), records_per_pair=40,
                              aligned=aligned)
        expected = sum(range(40)) & 0xFFFFFFFF
        assert result.records == result.pairs * 40
        assert result.checksum == (expected * result.pairs) & 0xFFFFFFFF

    def test_deterministic(self):
        def run():
            r = run_smp_ring(make_kernel(4), records_per_pair=40,
                             aligned=True)
            return r.to_dict()

        assert run() == run()

    def test_aligned_sharing_rides_the_snoop_protocol(self):
        result = run_smp_ring(make_kernel(4), records_per_pair=40,
                              aligned=True)
        assert result.coherence_invalidations > 0
        assert result.coherence_writebacks > 0

    def test_unaligned_sharing_never_snoop_hits(self):
        # The paper's point: aliases in different sets are invisible to
        # the bus, so the software rules keep doing all the work.
        result = run_smp_ring(make_kernel(4), records_per_pair=40,
                              aligned=False)
        assert result.coherence_invalidations == 0
        assert result.coherence_writebacks == 0
        assert result.consistency_faults > 0

    def test_unaligned_costs_more_at_every_cpu_count(self):
        for n in (1, 2, 4):
            aligned = run_smp_ring(make_kernel(n), records_per_pair=40,
                                   aligned=True)
            unaligned = run_smp_ring(make_kernel(n), records_per_pair=40,
                                     aligned=False)
            assert (unaligned.cycles_per_record
                    > aligned.cycles_per_record), f"N={n}"
            assert (unaligned.consistency_faults
                    > aligned.consistency_faults), f"N={n}"

    def test_uniprocessor_pair_shares_cpu_zero(self):
        result = run_smp_ring(make_kernel(1), records_per_pair=20)
        assert result.n_cpus == 1
        assert result.pairs == 1
        assert result.coherence_invalidations == 0


class TestSmpUnixServer:
    def test_requests_served_across_cpus(self):
        result = run_smp_unix_server(make_kernel(4))
        assert result.clients == 3
        # create+open, rounds * (writes + reads) per page, close
        per_client = 2 + 2 * (3 + 3) + 1
        assert result.requests == 3 * per_client
        assert result.coherence_invalidations > 0

    def test_degenerate_single_cpu(self):
        result = run_smp_unix_server(make_kernel(1))
        assert result.clients == 1
        assert result.coherence_invalidations == 0

    def test_deterministic(self):
        def run():
            return run_smp_unix_server(make_kernel(3)).to_dict()

        assert run() == run()
