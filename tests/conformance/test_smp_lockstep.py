"""Per-CPU lockstep conformance over a coherent cluster."""

import pytest

from repro.conformance.lockstep import (ConformanceMonitor,
                                        SmpConformanceMonitor)
from repro.errors import ConformanceError
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.hw.params import small_machine
from repro.kernel.kernel import Kernel
from repro.kernel.scheduler import Scheduler
from repro.workloads.random_ops import AliasStressor
from repro.workloads.smp import run_smp_ring


def smp_kernel(n_cpus=2):
    return Kernel(config=small_machine(n_cpus=n_cpus, phys_pages=192),
                  buffer_cache_pages=24)


class TestConstruction:
    def test_needs_a_cluster(self):
        kernel = Kernel(config=small_machine(phys_pages=192),
                        buffer_cache_pages=24)
        with pytest.raises(ConformanceError):
            SmpConformanceMonitor(kernel)

    def test_one_shadow_per_cpu_sharing_coverage(self):
        kernel = smp_kernel(3)
        monitor = SmpConformanceMonitor(kernel)
        assert len(monitor.monitors) == 3
        assert [m.cpu for m in monitor.monitors] == [0, 1, 2]
        assert all(m.coverage is monitor.coverage
                   for m in monitor.monitors)

    def test_attach_detach_restores_dma(self):
        kernel = smp_kernel(2)
        dma = kernel.machine.dma
        originals = (dma.dma_read, dma.dma_write)
        monitor = SmpConformanceMonitor(kernel).attach()
        assert dma.dma_read is not originals[0]
        monitor.detach()
        assert (dma.dma_read, dma.dma_write) == originals


class TestCleanShadowing:
    def test_alias_stressor_on_four_cpus_is_divergence_free(self):
        kernel = smp_kernel(4)
        stressor = AliasStressor(kernel, n_tasks=4, n_pages=4, seed=0)
        with SmpConformanceMonitor(kernel) as monitor:
            stressor.run(250)
        assert monitor.ok, monitor.divergences[:3]
        assert monitor.events_seen > 0
        assert monitor.per_cpu_divergences() == {0: 0, 1: 0, 2: 0, 3: 0}
        summary = monitor.summary()
        assert summary.divergences == 0
        assert 0 < summary.coverage_percent <= 100

    def test_smp_ring_shadows_clean(self):
        kernel = smp_kernel(2)
        with SmpConformanceMonitor(kernel) as monitor:
            run_smp_ring(kernel, records_per_pair=30, aligned=False)
        assert monitor.ok, monitor.divergences[:3]
        # both CPUs actually produced events
        assert all(m.events_seen > 0 for m in monitor.monitors)


class TestDivergenceAttribution:
    def _diverge(self, n_cpus=2, seed=11):
        """Drop every flush/purge on a cluster until the shadows notice;
        returns the recording monitor."""
        kernel = smp_kernel(n_cpus)
        kernel.machine.oracle.record_only = True
        injector = FaultInjector(
            FaultPlan(seed=0, rules=(FaultRule("pmap.flush.drop", rate=1.0),
                                     FaultRule("pmap.purge.drop", rate=1.0))),
            kernel.machine.clock)
        injector.attach_kernel(kernel)
        monitor = SmpConformanceMonitor(kernel, record_only=True).attach()
        stressor = AliasStressor(kernel, n_tasks=n_cpus, n_pages=4,
                                 seed=seed)
        try:
            stressor.run(200)
        finally:
            monitor.detach()
        return monitor

    def test_divergences_name_the_cpu(self):
        monitor = self._diverge()
        assert monitor.divergences, "dropped flushes must diverge"
        for divergence in monitor.divergences:
            assert divergence.cpu in (0, 1)
            assert f"cpu{divergence.cpu}:" in str(divergence)
        per_cpu = monitor.per_cpu_divergences()
        assert sum(per_cpu.values()) == len(monitor.divergences)

    def test_raise_mode_carries_the_cpu(self):
        kernel = smp_kernel(2)
        kernel.machine.oracle.record_only = True
        injector = FaultInjector(
            FaultPlan(seed=0, rules=(FaultRule("pmap.flush.drop", rate=1.0),
                                     FaultRule("pmap.purge.drop", rate=1.0))),
            kernel.machine.clock)
        injector.attach_kernel(kernel)
        monitor = SmpConformanceMonitor(kernel).attach()
        stressor = AliasStressor(kernel, n_tasks=2, n_pages=4, seed=11)
        with pytest.raises(ConformanceError) as excinfo:
            stressor.run(200)
        monitor.detach()
        assert excinfo.value.cpu in (0, 1)
        assert f"cpu{excinfo.value.cpu}" in str(excinfo.value)


class TestUniprocessorMonitorUnchanged:
    def test_classic_monitor_reports_no_cpu(self):
        kernel = Kernel(config=small_machine(phys_pages=192),
                        buffer_cache_pages=24)
        stressor = AliasStressor(kernel, n_tasks=2, n_pages=3, seed=2)
        with ConformanceMonitor(kernel) as monitor:
            stressor.run(100)
        assert monitor.ok
        assert all(d.cpu is None for d in monitor.divergences)
