"""Tests for Table 2 transition-arc coverage."""

from repro.conformance.coverage import (ALL_ARCS, OTHER, TARGET, ArcCoverage,
                                        arcs_of_event)
from repro.core.states import LineState, MemoryOp


class TestArcUniverse:
    def test_forty_eight_cells(self):
        # 6 operations x 4 states x 2 columns.
        assert len(ALL_ARCS) == 48

    def test_every_op_and_state_appears(self):
        ops = {arc[0] for arc in ALL_ARCS}
        states = {arc[1] for arc in ALL_ARCS}
        assert ops == set(MemoryOp)
        assert states == set(LineState)


class TestArcsOfEvent:
    def test_cpu_event_splits_target_and_other(self):
        pre = [LineState.PRESENT, LineState.DIRTY, LineState.EMPTY]
        arcs = arcs_of_event(MemoryOp.CPU_READ, pre, 1)
        assert (MemoryOp.CPU_READ, LineState.DIRTY, TARGET) in arcs
        assert (MemoryOp.CPU_READ, LineState.PRESENT, OTHER) in arcs
        assert (MemoryOp.CPU_READ, LineState.EMPTY, OTHER) in arcs
        assert not any(col == TARGET and state is not LineState.DIRTY
                       for _, state, col in arcs)

    def test_dma_event_covers_both_columns(self):
        # "All cache lines that contain the physical address referenced
        # by the DMA operation share the same transitions" (Table 2).
        pre = [LineState.STALE, LineState.EMPTY]
        arcs = arcs_of_event(MemoryOp.DMA_WRITE, pre, None)
        for state in (LineState.STALE, LineState.EMPTY):
            assert (MemoryOp.DMA_WRITE, state, TARGET) in arcs
            assert (MemoryOp.DMA_WRITE, state, OTHER) in arcs


class TestArcCoverage:
    def test_starts_empty(self):
        cov = ArcCoverage()
        assert cov.percent == 0.0
        assert not cov.complete
        assert len(cov.uncovered()) == 48

    def test_record_event_advances_coverage(self):
        cov = ArcCoverage()
        cov.record_event(MemoryOp.CPU_READ,
                         [LineState.EMPTY, LineState.PRESENT], 0)
        assert (MemoryOp.CPU_READ, LineState.EMPTY, TARGET) in cov.covered
        assert (MemoryOp.CPU_READ, LineState.PRESENT, OTHER) in cov.covered
        assert cov.percent > 0

    def test_novel_arcs_shrink_as_coverage_grows(self):
        cov = ArcCoverage()
        pre = [LineState.EMPTY, LineState.EMPTY]
        assert cov.novel_arcs(MemoryOp.CPU_WRITE, pre, 0)
        cov.record_event(MemoryOp.CPU_WRITE, pre, 0)
        assert not cov.novel_arcs(MemoryOp.CPU_WRITE, pre, 0)

    def test_merge_unions_counts(self):
        a, b = ArcCoverage(), ArcCoverage()
        a.record(MemoryOp.CPU_READ, LineState.EMPTY, TARGET)
        b.record(MemoryOp.CPU_READ, LineState.EMPTY, TARGET)
        b.record(MemoryOp.PURGE, LineState.STALE, TARGET)
        a.merge(b)
        assert a.counts[(MemoryOp.CPU_READ, LineState.EMPTY, TARGET)] == 2
        assert (MemoryOp.PURGE, LineState.STALE, TARGET) in a.covered

    def test_complete_when_all_arcs_seen(self):
        cov = ArcCoverage()
        for arc in ALL_ARCS:
            cov.record(*arc)
        assert cov.complete
        assert cov.percent == 100.0
        assert cov.uncovered() == []
        assert "48/48" in cov.summary()

    def test_render_marks_uncovered_cells(self):
        cov = ArcCoverage()
        cov.record(MemoryOp.CPU_READ, LineState.EMPTY, TARGET)
        table = cov.render()
        assert "UNCOVERED" in table
        assert "hit x1" in table
