"""Mutation tests: the lockstep engine must catch each seeded bug fast.

Each mutant is one classic way a port of Figure 1 goes wrong; the
explorer must flag it within a bounded number of events and shrink the
witness to a short sequence (the acceptance bound is 12 events; in
practice all three land at 2-3)."""

import pytest

from repro.conformance.explorer import Explorer
from repro.conformance.mutants import MUTANTS, apply_mutant
from repro.core.cache_control import CacheControl

DETECTION_BUDGET_SEQUENCES = 50
MAX_SHRUNK_EVENTS = 12


@pytest.mark.parametrize("name", sorted(MUTANTS))
class TestMutantsAreCaught:
    def test_detected_and_shrunk(self, name):
        with apply_mutant(name):
            report = Explorer(num_cache_pages=3, seed=0).explore(
                sequences=DETECTION_BUDGET_SEQUENCES)
        assert not report.ok, f"mutant {name} escaped the explorer"
        best = min(report.counterexamples,
                   key=lambda ce: len(ce.shrunk))
        assert len(best.shrunk) <= MAX_SHRUNK_EVENTS
        # The shrunk witness must still reproduce on a fresh pair.
        with apply_mutant(name):
            replay = Explorer(num_cache_pages=3, seed=0)
            assert replay.run_sequence(best.shrunk) is not None
        # ... and be clean on the unmutated engine.
        assert Explorer(num_cache_pages=3,
                        seed=0).run_sequence(best.shrunk) is None

    def test_detected_quickly(self, name):
        with apply_mutant(name):
            report = Explorer(num_cache_pages=3, seed=0).explore(
                sequences=DETECTION_BUDGET_SEQUENCES)
        first = min(ce.events_until_detection
                    for ce in report.counterexamples)
        assert first <= MAX_SHRUNK_EVENTS


class TestApplyMutant:
    def test_restores_the_original_engine(self):
        original = CacheControl.__call__
        with apply_mutant("skip-dma-read-flush"):
            assert CacheControl.__call__ is not original
        assert CacheControl.__call__ is original

    def test_restores_on_error(self):
        original = CacheControl.__call__
        with pytest.raises(RuntimeError):
            with apply_mutant("skip-dma-read-flush"):
                raise RuntimeError("boom")
        assert CacheControl.__call__ is original

    def test_unknown_mutant_is_rejected(self):
        with pytest.raises(KeyError, match="unknown mutant"):
            with apply_mutant("off-by-one"):
                pass  # pragma: no cover


class TestKernelLevelDetection:
    def test_monitor_catches_a_mutant_through_the_full_kernel(self):
        # The drop-stale mutant leaves values intact at first (the value
        # oracle stays silent) — only the state comparison sees the
        # hazard before any damage is done.
        from repro.conformance.lockstep import ConformanceMonitor
        from repro.errors import ConformanceError
        from repro.hw.params import small_machine
        from repro.kernel.kernel import Kernel
        from repro.workloads.random_ops import AliasStressor

        with apply_mutant("drop-stale-on-dma-write"):
            kernel = Kernel(config=small_machine(phys_pages=192),
                            buffer_cache_pages=24)
            stressor = AliasStressor(kernel, n_tasks=3, n_pages=4, seed=0)
            with pytest.raises(ConformanceError) as excinfo:
                with ConformanceMonitor(kernel):
                    stressor.run(300)
        assert excinfo.value.kind == "state-divergence"
        assert excinfo.value.prefix, "error must carry the replay prefix"
        assert excinfo.value.frame is not None
