"""Tests for the coverage-guided explorer over the lockstep pair."""

import pytest

from repro.conformance.coverage import ArcCoverage
from repro.conformance.explorer import Explorer, LockstepPair, apply_cache_op
from repro.core.page_state import PhysPageState
from repro.core.states import LineState, MemoryOp


class TestApplyCacheOp:
    def test_purge_clears_the_line(self):
        state = PhysPageState(0, 3)
        state.mapped[1] = True
        state.stale[2] = True
        apply_cache_op(state, MemoryOp.PURGE, 1)
        assert not state.mapped[1]
        apply_cache_op(state, MemoryOp.PURGE, 2)
        assert not state.stale[2]

    def test_flush_of_the_dirty_line_clears_dirtiness(self):
        state = PhysPageState(0, 3)
        state.mapped[0] = True
        state.cache_dirty = True
        apply_cache_op(state, MemoryOp.FLUSH, 0)
        assert not state.cache_dirty
        assert not state.mapped[0]


class TestLockstepPair:
    def test_clean_alias_sequence(self):
        pair = LockstepPair(3)
        for event in [(MemoryOp.CPU_WRITE, 0), (MemoryOp.CPU_READ, 1),
                      (MemoryOp.DMA_READ, None), (MemoryOp.CPU_WRITE, 2),
                      (MemoryOp.DMA_WRITE, None), (MemoryOp.CPU_READ, 0)]:
            assert pair.step(*event) is None

    def test_explicit_cache_ops_are_tracked(self):
        cov = ArcCoverage()
        pair = LockstepPair(3, coverage=cov)
        assert pair.step(MemoryOp.CPU_WRITE, 0) is None
        assert pair.model.states[0] is LineState.DIRTY
        assert pair.step(MemoryOp.FLUSH, 0) is None
        assert pair.model.states[0] is LineState.EMPTY
        assert (MemoryOp.FLUSH, LineState.DIRTY, "target") in cov.covered


class TestExplorer:
    def test_sweep_is_clean_and_covers_everything(self):
        # Acceptance: a 200-sequence sweep on the lazy variant reports
        # zero divergences — and, with coverage-guided choice, covers all
        # 48 arcs along the way.
        report = Explorer(num_cache_pages=3, seed=0).explore(sequences=200)
        assert report.ok, report.render()
        assert report.sequences == 200
        assert report.coverage.complete, report.coverage.uncovered()

    def test_eager_variant_is_also_clean(self):
        report = Explorer(num_cache_pages=3, seed=1,
                          eager_purge_stale=True).explore(sequences=50)
        assert report.ok, report.render()

    def test_determinism(self):
        a = Explorer(num_cache_pages=3, seed=7).explore(sequences=30)
        b = Explorer(num_cache_pages=3, seed=7).explore(sequences=30)
        assert a.events == b.events
        assert a.coverage.counts == b.coverage.counts

    def test_run_sequence_replays_deterministically(self):
        explorer = Explorer(num_cache_pages=2, seed=3)
        sequence = [(MemoryOp.CPU_WRITE, 0), (MemoryOp.DMA_READ, None),
                    (MemoryOp.CPU_READ, 1)]
        assert explorer.run_sequence(sequence) is None


@pytest.mark.conform
class TestExhaustiveArcCoverage:
    def test_every_reachable_arc_is_covered_on_the_lazy_variant(self):
        # The exhaustive arc statement the CI conform job gates on: the
        # explorer reaches all 48 cells of Table 2 without a single
        # divergence, well inside the event budget.
        explorer = Explorer(num_cache_pages=3, seed=0)
        report = explorer.explore_until_covered(max_events=10_000)
        assert report.ok, report.render()
        assert report.coverage.complete, report.coverage.uncovered()
        assert report.coverage.percent == 100.0
        assert "48/48 (100.0%)" in report.coverage.summary()
