"""Tests for the kernel-level lockstep conformance monitor."""

import pytest

from repro.analysis.experiments import (evaluation_machine, make_workload,
                                        run_workload)
from repro.conformance.lockstep import (ConformanceMonitor,
                                        ConformanceSummary, effective_decode)
from repro.core.page_state import PhysPageState
from repro.core.states import LineState
from repro.hw.params import small_machine
from repro.kernel.kernel import Kernel
from repro.vm.policy import NEW_SYSTEM
from repro.workloads.random_ops import AliasStressor

WORKLOAD_NAMES = ("afs-bench", "latex-paper", "kernel-build")


def small_kernel() -> Kernel:
    return Kernel(config=small_machine(phys_pages=192),
                  buffer_cache_pages=24)


class TestEffectiveDecode:
    def test_stale_bit_wins(self):
        state = PhysPageState(0, 3)
        state.stale[1] = True
        assert effective_decode(state, 1) is LineState.STALE

    def test_pending_modified_bit_counts_as_dirty(self):
        # Between a store and the next sync_modified the line is already
        # physically dirty even though cache_dirty is still clear
        # (Section 4.1's lag); the comparison must fold that in.
        kernel = small_kernel()
        stressor = AliasStressor(kernel, n_tasks=2, n_pages=2, seed=1)
        stressor.run(40)
        pmap = kernel.pmap
        found = False
        for state in pmap.page_states.values():
            for mapping in state.mappings:
                if mapping.modified:
                    cp = state.cache_page_of(mapping.vpage)
                    assert effective_decode(state, cp) is LineState.DIRTY
                    found = True
        # The stressor writes constantly; at least one pending bit is
        # overwhelmingly likely — but the decode assertions above are the
        # actual test, so a clean pass without one is still a pass.
        del found


class TestAttachment:
    def test_attach_detach_restores_plumbing(self):
        kernel = small_kernel()
        dcache, dma = kernel.machine.dcache, kernel.machine.dma
        originals = (dcache.read, dcache.write, dcache.flush_page_frame,
                     dma.dma_read, dma.dma_write)
        monitor = ConformanceMonitor(kernel).attach()
        assert dcache.read is not originals[0]
        monitor.detach()
        assert (dcache.read, dcache.write, dcache.flush_page_frame,
                dma.dma_read, dma.dma_write) == originals

    def test_attach_is_idempotent(self):
        kernel = small_kernel()
        monitor = ConformanceMonitor(kernel)
        monitor.attach()
        wrapped = kernel.machine.dcache.read
        monitor.attach()
        assert kernel.machine.dcache.read is wrapped
        monitor.detach()

    def test_late_attach_is_sound(self):
        # Attaching after the kernel has run is fine: the all-EMPTY model
        # demands nothing and forbids nothing.
        kernel = small_kernel()
        stressor = AliasStressor(kernel, n_tasks=2, n_pages=3, seed=5)
        stressor.run(100)
        with ConformanceMonitor(kernel) as monitor:
            stressor.run(100)
        assert monitor.ok
        assert monitor.events_seen > 0


class TestCleanShadowing:
    def test_alias_stressor_is_divergence_free(self):
        kernel = small_kernel()
        stressor = AliasStressor(kernel, n_tasks=3, n_pages=4, seed=0)
        with ConformanceMonitor(kernel) as monitor:
            stressor.run(300)
        assert monitor.ok, monitor.divergences[:3]
        summary = monitor.summary()
        assert isinstance(summary, ConformanceSummary)
        assert summary.events == monitor.events_seen > 0
        assert summary.divergences == 0
        assert 0 < summary.coverage_percent <= 100

    def test_event_log_is_bounded(self):
        kernel = small_kernel()
        stressor = AliasStressor(kernel, n_tasks=3, n_pages=4, seed=0)
        with ConformanceMonitor(kernel, max_events=64) as monitor:
            stressor.run(300)
        assert len(monitor.events) == 64
        assert monitor.events_seen > 64

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_paper_workloads_shadow_clean(self, name):
        # Acceptance: lockstep shadowing of all three paper workloads at
        # small scale reports zero divergences (raise mode — any
        # divergence aborts the run as a ConformanceError).
        policy = NEW_SYSTEM
        kernel = Kernel(policy=policy, config=evaluation_machine(),
                        buffer_cache_pages=48)
        with ConformanceMonitor(kernel) as monitor:
            run_workload(make_workload(name, 0.25), policy, kernel=kernel)
        assert monitor.ok
        assert monitor.events_seen > 100
        assert len(monitor.models) > 10
