"""The cache-hierarchy conformance matrix: every cell, both checks.

Each :class:`~repro.conformance.matrix.MatrixCell` is verified two ways —
lockstep (a kernel with the cell's geometry runs the alias stressor under
the conformance monitor, shadowed by the table its geometry derives) and
exhaustively (every event sequence to depth 6 against the same table).
The multi-way cells generate tens of thousands of lockstep events (half
the page colors, so far more alias conflicts) and carry the ``hierarchy``
mark; CI's hierarchy job runs them with ``-m hierarchy``.
"""

import pytest

from repro.conformance.matrix import (HIERARCHY_MATRIX, MatrixCell,
                                      cell_by_name, check_cell_exhaustive,
                                      check_cell_lockstep, run_matrix)
from repro.errors import ConfigurationError

#: the quick cells (direct-mapped L1: a few hundred lockstep events) and
#: the slow ones (set-associative L1: ~84k events, ~1s each).
FAST_CELLS = [c for c in HIERARCHY_MATRIX
              if c.config().dcache.associativity == 1]
SLOW_CELLS = [c for c in HIERARCHY_MATRIX
              if c.config().dcache.associativity > 1]


def _names(cells):
    return [c.name for c in cells]


class TestMatrixStructure:
    def test_covers_the_full_architecture_grid(self):
        # {1,2,4}-way × {victim off/on} × {L2 off/on} = 12 architecture
        # cells, plus the four policy rows exercising derived tables.
        assert len(HIERARCHY_MATRIX) == 16
        assert len({c.name for c in HIERARCHY_MATRIX}) == 16
        for ways in (1, 2, 4):
            matching = [c for c in HIERARCHY_MATRIX
                        if c.config().dcache.associativity == ways]
            assert len(matching) >= 4
        assert {c.name for c in HIERARCHY_MATRIX} >= {
            "baseline", "victim8", "l2:64k/4", "victim8+l2:64k/4",
            "wt", "2way+wt", "pi", "pi+wt"}

    def test_cells_resolve_by_name(self):
        cell = cell_by_name("2way+victim8")
        assert cell.geometry == "2way+victim8"
        config = cell.config()
        assert config.dcache.associativity == 2
        assert config.victim_lines == 8
        with pytest.raises(ConfigurationError):
            cell_by_name("8way")

    def test_model_selection_follows_the_geometry(self):
        # Architecture changes keep the canonical table (the Section 3.3
        # claim); only the policy rows switch to a derived table.
        assert cell_by_name("baseline").model_name == "canonical"
        assert cell_by_name("4way+victim8+l2:64k/4").model_name \
            == "canonical"
        assert cell_by_name("wt").model_name == "wt"
        assert cell_by_name("2way+wt").model_name == "wt"
        assert cell_by_name("pi").model_name == "pi"
        assert cell_by_name("pi+wt").model_name == "pi+wt"

    def test_physically_indexed_cells_check_one_cache_page(self):
        # pi hardware maps each frame to exactly one cache page, so
        # multi-target sequences are unreachable; checking them would
        # spuriously violate single-dirty.
        assert cell_by_name("pi").exhaustive_pages == 1
        assert cell_by_name("pi+wt").exhaustive_pages == 1
        assert cell_by_name("baseline").exhaustive_pages == 3


class TestFastCells:
    @pytest.mark.parametrize("name", _names(FAST_CELLS))
    def test_lockstep(self, name):
        summary = check_cell_lockstep(cell_by_name(name), steps=300)
        assert summary.divergences == 0
        assert summary.events > 0

    @pytest.mark.parametrize("name", _names(FAST_CELLS))
    def test_exhaustive_depth_6(self, name):
        report = check_cell_exhaustive(cell_by_name(name), depth=6)
        assert report.ok, report
        assert report.sequences > 0


@pytest.mark.hierarchy
class TestSlowCells:
    @pytest.mark.parametrize("name", _names(SLOW_CELLS))
    def test_lockstep(self, name):
        summary = check_cell_lockstep(cell_by_name(name), steps=300)
        assert summary.divergences == 0
        # Halving the page colors multiplies alias conflicts: the
        # set-associative cells must actually exercise the monitor far
        # harder than the direct-mapped baseline does.
        assert summary.events > 10_000

    @pytest.mark.parametrize("name", _names(SLOW_CELLS))
    def test_exhaustive_depth_6(self, name):
        report = check_cell_exhaustive(cell_by_name(name), depth=6)
        assert report.ok, report


class TestRunMatrix:
    def test_reports_every_requested_cell(self):
        cells = (cell_by_name("baseline"), cell_by_name("wt"))
        results = run_matrix(cells, steps=60, depth=4)
        assert sorted(results) == ["baseline", "wt"]
        for name, row in results.items():
            assert row["model"] == ("wt" if name == "wt" else "canonical")
            assert row["lockstep_divergences"] == 0
            assert row["exhaustive_ok"] is True
            assert row["lockstep_events"] > 0
            assert row["exhaustive_sequences"] > 0

    def test_custom_base_config_is_respected(self):
        from repro.hw.params import small_machine
        base = small_machine(phys_pages=192)
        cell = MatrixCell("2way", "2way")
        config = cell.config(base)
        assert config.dcache.associativity == 2
        assert config.dcache.size == base.dcache.size
