"""The policy registry: lookup, registration guards, resolution."""

import pytest

from repro.errors import ConfigurationError
from repro.policy import (ConsistencyPolicy, all_policies, get_policy,
                          register, resolve)
from repro.policy.registry import _REGISTRY
from repro.vm.policy import (CONFIG_F, CONFIG_GLOBAL, CONFIG_LADDER,
                             TABLE5_SYSTEMS, by_name)

LEGACY_NAMES = [c.name for c in
                CONFIG_LADDER + (CONFIG_GLOBAL,) + TABLE5_SYSTEMS]


class TestLookup:
    @pytest.mark.parametrize("name", LEGACY_NAMES + ["rlt", "vespa"])
    def test_case_insensitive_round_trip(self, name):
        for variant in (name, name.lower(), name.upper()):
            policy = get_policy(variant)
            assert policy.name == name
            # the same singleton every time: policies are stateless
            assert get_policy(variant) is policy

    def test_unknown_name_lists_valid_names_sorted(self):
        with pytest.raises(KeyError) as exc:
            get_policy("Z")
        message = str(exc.value)
        assert "unknown policy 'Z'" in message
        for name in LEGACY_NAMES + ["rlt", "vespa"]:
            assert name in message
        listed = message.split("valid names: ")[1].rstrip('"').split(", ")
        assert listed == sorted(listed, key=str.lower)

    def test_registry_covers_every_legacy_config(self):
        names = {p.name for p in all_policies()}
        assert set(LEGACY_NAMES) <= names

    def test_origins(self):
        origin = {p.name: p.origin for p in all_policies()}
        for config in CONFIG_LADDER + (CONFIG_GLOBAL,):
            assert origin[config.name] == "paper"
        for system in TABLE5_SYSTEMS:
            assert origin[system.name] == "table5"
        assert origin["rlt"] == "external"
        assert origin["vespa"] == "external"


class TestRegistrationGuard:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register(ConsistencyPolicy(CONFIG_F))

    def test_duplicate_rejected_case_insensitively(self):
        duplicate = ConsistencyPolicy(CONFIG_F.derive(
            "f", "same name, different case"))
        with pytest.raises(ConfigurationError, match="case-insensitive"):
            register(duplicate)

    def test_failed_registration_leaves_registry_unchanged(self):
        before = dict(_REGISTRY)
        with pytest.raises(ConfigurationError):
            register(ConsistencyPolicy(CONFIG_F))
        assert _REGISTRY == before


class TestResolve:
    def test_policy_instance_passes_through(self):
        policy = get_policy("F")
        assert resolve(policy) is policy

    def test_string_resolves_via_registry(self):
        assert resolve("rlt") is get_policy("rlt")

    def test_flag_config_wraps_in_default_hooks(self):
        policy = resolve(CONFIG_F)
        assert isinstance(policy, ConsistencyPolicy)
        assert policy.flags is CONFIG_F
        assert policy.name == "F"

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve(42)


class TestByNameLegacy:
    """The vm-layer lookup keeps working and names the valid set."""

    @pytest.mark.parametrize("name", LEGACY_NAMES)
    def test_case_insensitive(self, name):
        assert by_name(name.lower()).name == name
        assert by_name(name.upper()).name == name

    def test_unknown_name_message(self):
        with pytest.raises(KeyError) as exc:
            by_name("nope")
        message = str(exc.value)
        assert "unknown policy configuration 'nope'" in message
        for name in LEGACY_NAMES:
            assert name in message
