"""The reverse-lookup-table policy: exact synonym invalidation.

An RLT (arXiv 2108.00444) maps each physical frame to the lines actually
resident, so consistency management touches only what exists: a flush or
purge of a frame with no resident lines is skipped outright (after a
charged lookup), and performed operations pay per resident line instead
of scanning the whole cache-page window.
"""

import pytest

from repro.analysis.experiments import evaluation_machine
from repro.conformance import ConformanceMonitor
from repro.hw.stats import FaultKind, Reason
from repro.kernel.kernel import Kernel
from repro.policy import get_policy
from repro.workloads.microbench import run_alias_write_loop


def make_kernel(policy="rlt", **overrides):
    return Kernel(policy=policy, config=evaluation_machine(**overrides))


class TestSetup:
    def test_exact_management_armed_on_the_dcache(self):
        kernel = make_kernel()
        assert kernel.machine.dcache.exact_management
        assert not kernel.machine.icache.exact_management

    def test_exact_management_armed_per_cpu_on_a_cluster(self):
        kernel = make_kernel(n_cpus=2)
        for cache in kernel.machine.cluster.caches:
            assert cache.exact_management

    def test_flags_extend_f(self):
        rlt = get_policy("rlt")
        f = get_policy("F")
        assert rlt.origin == "external"
        assert rlt.flags.derive("F", f.flags.description) == f.flags


class TestExactInvalidation:
    def test_skips_operations_on_non_resident_frames(self):
        kernel = make_kernel()
        counters = kernel.machine.counters
        task = kernel.create_task("t")
        vpage = task.allocate_anon(1)
        task.write(vpage, 0, 7)
        frame = kernel.pmap.page_table(task.asid).lookup(vpage).ppage
        cache_page = task.space.cache_page_of(vpage)

        # A frame the cache has never seen: the consult proves zero
        # residency, the operation is skipped, the lookup is charged.
        other = (cache_page + 1) % kernel.pmap.ncp
        before_clock = kernel.machine.clock.cycles
        before_flushes = counters.total_flushes()
        kernel.pmap._flush_cache_page(other, frame, Reason.EXPLICIT)
        assert counters.rlt_skipped_ops >= 1
        assert counters.rlt_lookups >= 1
        assert counters.total_flushes() == before_flushes
        assert (kernel.machine.clock.cycles - before_clock
                == kernel.machine.config.cost.rlt_lookup)

        # The resident window is not skippable: the flush happens.
        kernel.pmap._flush_cache_page(cache_page, frame, Reason.EXPLICIT)
        assert counters.total_flushes() == before_flushes + 1

    def test_unaligned_loop_matches_f_but_skips_dead_purges(self):
        results = {}
        for name in ("F", "rlt"):
            kernel = make_kernel(name)
            results[name] = (run_alias_write_loop(kernel, 800, aligned=False),
                             kernel.machine.counters)
        f_result, _ = results["F"]
        rlt_result, rlt_counters = results["rlt"]
        # Same faulting behaviour — the RLT changes what each fault
        # *costs*, not when faults happen.
        assert rlt_result.consistency_faults == f_result.consistency_faults
        assert rlt_counters.rlt_skipped_ops > 0
        assert rlt_result.page_purges < f_result.page_purges
        assert rlt_result.cycles < f_result.cycles

    def test_lookup_cycles_are_charged(self):
        kernel = make_kernel()
        run_alias_write_loop(kernel, 200, aligned=False)
        counters = kernel.machine.counters
        assert counters.rlt_lookups >= counters.rlt_skipped_ops > 0


class TestConformance:
    def test_lockstep_shadow_stays_green(self):
        kernel = make_kernel()
        monitor = ConformanceMonitor(kernel).attach()
        try:
            run_alias_write_loop(kernel, 400, aligned=False)
            run_alias_write_loop(kernel, 100, aligned=True)
        finally:
            monitor.detach()
        assert monitor.ok, [str(d) for d in monitor.divergences]
        assert monitor.events_seen > 0
