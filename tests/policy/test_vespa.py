"""The superpage-aware VIPT policy (VESPA) and the superpage substrate.

A superpage region pins the cache index physically: physically
contiguous frames under an index-aligned virtual run mean no two virtual
pages can disagree about where a frame's lines live, so the synonym
problem vanishes by construction and the policy drops alias management
on such regions entirely (arXiv 1701.03499).
"""

import numpy as np
import pytest

from repro.analysis.experiments import evaluation_machine, run_workload
from repro.conformance import ConformanceMonitor
from repro.errors import KernelError, OutOfMemoryError
from repro.hw.stats import FaultKind
from repro.kernel.kernel import Kernel
from repro.kernel.task import fork_task
from repro.vm.prot import Prot
from repro.workloads.superpage import SuperpageRx


def make_kernel(policy="vespa", **overrides):
    return Kernel(policy=policy, config=evaluation_machine(**overrides))


class TestSuperpageSubstrate:
    """map_superpage works under every policy; VESPA merely exploits it."""

    @pytest.mark.parametrize("policy", ["A", "F", "vespa"])
    def test_region_is_contiguous_and_index_aligned(self, policy):
        kernel = make_kernel(policy)
        ncp = kernel.machine.dcache.geo.num_cache_pages
        task = kernel.create_task("sp")
        start = task.map_superpage(6)
        table = kernel.pmap.page_table(task.asid)
        frames = [table.lookup(start + i).ppage for i in range(6)]
        assert frames == list(range(frames[0], frames[0] + 6))
        for i in range(6):
            pte = table.lookup(start + i)
            assert pte.superpage
            assert (start + i) % ncp == pte.ppage % ncp
            assert kernel.pmap.state_of(pte.ppage).superpage
        assert kernel.machine.counters.superpage_mappings == 1

    @pytest.mark.parametrize("policy", ["F", "vespa"])
    def test_data_survives_cpu_and_dma_traffic(self, policy):
        kernel = make_kernel(policy)
        task = kernel.create_task("sp")
        start = task.map_superpage(4)
        for i in range(4):
            task.write(start + i, 0, 0xC0DE + i)
        frame = kernel.pmap.page_table(task.asid).lookup(start).ppage
        payload = np.full(kernel.machine.page_size // 4, 77,
                          dtype=np.uint32)
        kernel.pmap.prepare_dma_write(frame)
        kernel.machine.dma.dma_write(frame, payload)
        assert task.read(start, 0) == 77          # device words visible
        for i in range(1, 4):
            assert task.read(start + i, 0) == 0xC0DE + i

    def test_allocate_run_is_contiguous_and_removed_from_free_list(self):
        kernel = make_kernel("F")
        before = len(kernel.free_list)
        frames = kernel.allocate_frame_run(5)
        assert frames == list(range(frames[0], frames[0] + 5))
        assert len(kernel.free_list) == before - 5
        taken = set(frames)
        # none of the taken frames can be handed out again
        for _ in range(before - 5):
            assert kernel.free_list.allocate() not in taken

    def test_allocate_run_exhaustion_raises(self):
        kernel = make_kernel("F")
        with pytest.raises(OutOfMemoryError, match="contiguous"):
            kernel.allocate_frame_run(10**6)
        with pytest.raises(ValueError):
            kernel.free_list.allocate_run(0)

    def test_fork_does_not_inherit_the_region(self):
        kernel = make_kernel("vespa")
        parent = kernel.create_task("parent")
        start = parent.map_superpage(2)
        parent.write(start, 0, 5)
        child = fork_task(kernel, parent)
        assert child.space.descriptor(start) is None


class TestVespaPolicy:
    def test_misaligned_bases_rejected(self):
        kernel = make_kernel("vespa")
        ncp = kernel.machine.dcache.geo.num_cache_pages
        with pytest.raises(KernelError, match="index-aligned"):
            kernel.pmap.enter_superpage(asid=1, base_vpage=1,
                                        base_ppage=ncp + 2, npages=1,
                                        vm_prot=Prot.READ_WRITE)

    def test_no_consistency_faults_on_superpage_traffic(self):
        faults = {}
        for policy in ("F", "vespa"):
            kernel = make_kernel(policy)
            run_workload(SuperpageRx(0.5), policy, kernel=kernel)
            faults[policy] = \
                kernel.machine.counters.faults[FaultKind.CONSISTENCY]
        assert faults["vespa"] == 0
        assert faults["F"] > 0

    def test_ordinary_pages_still_managed(self):
        # Off-region traffic behaves exactly like F: the policy only
        # short-circuits pages marked superpage.
        from repro.workloads.microbench import run_alias_write_loop
        f_result = run_alias_write_loop(make_kernel("F"), 400, aligned=False)
        v_result = run_alias_write_loop(make_kernel("vespa"), 400,
                                        aligned=False)
        assert v_result.consistency_faults == f_result.consistency_faults
        assert v_result.cycles == f_result.cycles

    def test_lockstep_shadow_stays_green_over_dma(self):
        kernel = make_kernel("vespa")
        monitor = ConformanceMonitor(kernel).attach()
        try:
            run_workload(SuperpageRx(0.5), "vespa", kernel=kernel)
        finally:
            monitor.detach()
        assert monitor.ok, [str(d) for d in monitor.divergences]
        assert monitor.events_seen > 0
