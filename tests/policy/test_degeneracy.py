"""Degeneracy: every legacy policy, re-expressed through the hook
interface, is bit-identical to its flag configuration.

The :class:`ConsistencyPolicy` default hooks read the same flags and
call the same pmap internals in the same order as the pre-engine code
path, so ``Kernel(policy="F")`` (the registry singleton) and
``Kernel(policy=CONFIG_F)`` (a fresh generic wrapper around the flag
bag) must agree to the cycle on every workload — counters, clock and
data alike.  The golden-trace suite pins this behaviour to the seed;
this suite pins the two construction paths to each other across the
whole named-policy surface.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import make_workload, run_workload
from repro.vm.policy import (CONFIG_GLOBAL, CONFIG_LADDER, TABLE5_SYSTEMS,
                             by_name)
from repro.workloads.serve import run_serve_cohort

ALL_NAMED = [c.name for c in
             CONFIG_LADDER + (CONFIG_GLOBAL,) + TABLE5_SYSTEMS]
WORKLOADS = ("afs-bench", "latex-paper", "kernel-build")
SCALE = 0.25


@pytest.mark.parametrize("name", ALL_NAMED)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_registry_policy_matches_flag_path(name, workload):
    via_flags = run_workload(make_workload(workload, SCALE), by_name(name))
    via_registry = run_workload(make_workload(workload, SCALE), name)
    # RunMetrics is a frozen dataclass of counts and cycles; equality is
    # the whole measured surface, clock included.
    assert via_flags == via_registry


@pytest.mark.parametrize("name", ["A", "F", "Tut", "Sun", "G"])
def test_serve_checksum_identical_across_paths(name):
    via_flags = run_serve_cohort(0, 40, policy=by_name(name))
    via_registry = run_serve_cohort(0, 40, policy=name)
    assert via_flags == via_registry
    assert via_flags.checksum == via_registry.checksum


# ---- ladder cumulativity ---------------------------------------------------

#: the Section 4 optimization flags the ladder accretes one per rung
OPT_FLAGS = ("align_ipc", "align_server_pages", "aligned_prepare",
             "opt_need_data", "opt_will_overwrite")


def _enabled(config) -> frozenset:
    return frozenset(f for f in OPT_FLAGS if getattr(config, f))


@given(st.integers(0, len(CONFIG_LADDER) - 1),
       st.integers(0, len(CONFIG_LADDER) - 1))
@settings(max_examples=50)
def test_ladder_is_cumulative(i, j):
    """Every later rung's optimization set contains every earlier one's."""
    lo, hi = min(i, j), max(i, j)
    assert _enabled(CONFIG_LADDER[lo]) <= _enabled(CONFIG_LADDER[hi])


def test_ladder_rungs_strictly_grow_past_b():
    sets = [_enabled(c) for c in CONFIG_LADDER[1:]]
    for earlier, later in zip(sets, sets[1:]):
        assert earlier < later
