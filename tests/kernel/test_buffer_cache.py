"""Tests for the buffer cache and its write-behind policy."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.hw.params import MachineConfig
from repro.kernel.disk import synthetic_block
from repro.kernel.kernel import Kernel
from repro.vm.policy import CONFIG_F


@pytest.fixture
def kernel():
    return Kernel(policy=CONFIG_F, config=MachineConfig(phys_pages=128),
                  with_unix_server=False, buffer_cache_pages=8)


def preload(kernel, file_id=1, npages=2):
    kernel.disk.preload(file_id, npages)
    return file_id


class TestReadPath:
    def test_miss_reads_from_disk(self, kernel):
        fid = preload(kernel)
        frame = kernel.buffer_cache.read_block(fid, 0)
        expected = synthetic_block(fid, 0, 1024)
        assert np.array_equal(kernel.machine.memory.read_page(frame),
                              expected)
        assert kernel.machine.counters.dma_writes == 1

    def test_hit_avoids_disk(self, kernel):
        fid = preload(kernel)
        first = kernel.buffer_cache.read_block(fid, 0)
        second = kernel.buffer_cache.read_block(fid, 0)
        assert first == second
        assert kernel.machine.counters.dma_writes == 1
        assert kernel.buffer_cache.hits == 1


class TestWriteBehind:
    def test_dirty_block_written_after_delay(self, kernel):
        fid = preload(kernel)
        src = kernel.allocate_frame()
        kernel.pmap.zero_fill_page(src)
        kernel.buffer_cache.write_block_from_frame(fid, 0, src)
        assert kernel.machine.counters.dma_reads == 0   # not yet
        for _ in range(kernel.buffer_cache.write_behind_delay + 1):
            kernel.buffer_cache.tick()
        assert kernel.machine.counters.dma_reads == 1   # written behind

    def test_sync_pushes_everything(self, kernel):
        fid = preload(kernel)
        src = kernel.allocate_frame()
        kernel.pmap.zero_fill_page(src)
        kernel.buffer_cache.write_block_from_frame(fid, 1, src)
        kernel.buffer_cache.sync()
        assert kernel.machine.counters.dma_reads == 1
        assert not np.array_equal(kernel.disk.block(fid, 1),
                                  synthetic_block(fid, 1, 1024))

    def test_full_block_write_skips_disk_read(self, kernel):
        # The will_overwrite situation: a full-block write never reads the
        # old block from disk.
        fid = preload(kernel)
        src = kernel.allocate_frame()
        kernel.pmap.zero_fill_page(src)
        kernel.buffer_cache.write_block_from_frame(fid, 0, src)
        assert kernel.machine.counters.dma_writes == 0

    def test_dirtying_uncached_block_rejected(self, kernel):
        with pytest.raises(KernelError):
            kernel.buffer_cache.dirty_block(1, 0)


class TestEviction:
    def test_lru_eviction_at_capacity(self, kernel):
        fid = preload(kernel, npages=2)
        fid2 = 2
        kernel.disk.preload(fid2, 12)
        kernel.buffer_cache.read_block(fid, 0)
        for page in range(12):
            kernel.buffer_cache.read_block(fid2, page)
        assert kernel.buffer_cache.resident_blocks() <= 8
        # the oldest block was evicted; re-reading hits the disk again
        writes_before = kernel.machine.counters.dma_writes
        kernel.buffer_cache.read_block(fid, 0)
        assert kernel.machine.counters.dma_writes == writes_before + 1

    def test_dirty_eviction_writes_to_disk_first(self, kernel):
        fid = preload(kernel, npages=1)
        src = kernel.allocate_frame()
        kernel.pmap.zero_fill_page(src)
        kernel.buffer_cache.write_block_from_frame(fid, 0, src)
        fid2 = 2
        kernel.disk.preload(fid2, 10)
        for page in range(10):
            kernel.buffer_cache.read_block(fid2, page)
        assert kernel.disk.writes >= 1   # the dirty block got saved

    def test_invalidate_file_frees_frames(self, kernel):
        fid = preload(kernel)
        free_before = len(kernel.free_list)
        kernel.buffer_cache.read_block(fid, 0)
        kernel.buffer_cache.invalidate_file(fid)
        assert len(kernel.free_list) == free_before
        assert kernel.buffer_cache.resident_blocks() == 0
