"""Tests for the UserProcess convenience layer."""

import numpy as np
import pytest

from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess, fresh_tokens
from repro.vm.policy import CONFIG_F


@pytest.fixture
def kernel():
    return Kernel(policy=CONFIG_F, config=MachineConfig(phys_pages=192))


class TestFreshTokens:
    def test_unique_across_calls(self):
        a = fresh_tokens(16)
        b = fresh_tokens(16)
        assert not np.array_equal(a, b)

    def test_unique_within_a_page(self):
        values = fresh_tokens(1024)
        assert len(np.unique(values)) == 1024


class TestHelpers:
    def test_compute_advances_the_clock(self, kernel):
        proc = UserProcess(kernel, "p")
        before = kernel.machine.clock.cycles
        proc.compute(3)
        assert kernel.machine.clock.cycles - before >= 3 * 20_000

    def test_touch_memory_dirties_pages(self, kernel):
        proc = UserProcess(kernel, "p")
        vpage = proc.touch_memory(2, writes_per_page=3)
        assert proc.task.read(vpage, 0) != 0
        assert proc.task.read(vpage + 1, 2) != 0

    def test_copy_file_creates_destination(self, kernel):
        kernel.fs.create("/a", size_pages=1, on_disk=True)
        proc = UserProcess(kernel, "p")
        proc.copy_file("/a", "/b")
        assert kernel.fs.exists("/b")
        assert kernel.fs.lookup("/b").size_pages == 1

    def test_spawn_creates_live_child_with_own_channel(self, kernel):
        program = kernel.exec_loader.register_program("prog", 2, 1)
        parent = UserProcess(kernel, "parent")
        child = parent.spawn(program)
        assert child.alive
        assert child.task.asid != parent.task.asid
        assert child.task.asid in kernel.unix_server._channels
        # the child can make syscalls immediately
        child.create("/child-made-this")
        assert kernel.fs.exists("/child-made-this")

    def test_write_file_page_default_payload(self, kernel):
        proc = UserProcess(kernel, "p")
        proc.create("/f")
        fd = proc.open("/f")
        proc.write_file_page(fd, 0)     # generated tokens
        data = proc.read_file_page(fd, 0)
        assert data.any()
