"""Tests for IPC page transfer and the aligned-destination optimization."""

import pytest

from repro.errors import KernelError
from repro.hw.params import MachineConfig
from repro.kernel.ipc import transfer_page
from repro.kernel.kernel import Kernel
from repro.vm.policy import CONFIG_B, CONFIG_C


def make_kernel(policy):
    return Kernel(policy=policy, config=MachineConfig(phys_pages=128),
                  with_unix_server=False)


class TestTransferMechanics:
    def test_page_moves_between_tasks(self):
        kernel = make_kernel(CONFIG_C)
        sender = kernel.create_task("s")
        receiver = kernel.create_task("r")
        vpage = sender.allocate_anon(1)
        sender.write(vpage, 0, 42)
        dst = transfer_page(kernel, sender, vpage, receiver)
        assert receiver.read(dst, 0) == 42
        assert vpage not in sender.space
        assert kernel.machine.counters.ipc_page_moves == 1

    def test_sender_loses_access(self):
        from repro.errors import ProtectionError
        kernel = make_kernel(CONFIG_C)
        sender = kernel.create_task("s")
        receiver = kernel.create_task("r")
        vpage = sender.allocate_anon(1)
        sender.write(vpage, 0, 42)
        transfer_page(kernel, sender, vpage, receiver)
        with pytest.raises(ProtectionError):
            sender.read(vpage, 0)

    def test_transfer_of_unmapped_page_rejected(self):
        kernel = make_kernel(CONFIG_C)
        sender = kernel.create_task("s")
        receiver = kernel.create_task("r")
        with pytest.raises(KernelError):
            transfer_page(kernel, sender, 999, receiver)

    def test_untouched_page_transfers_lazily(self):
        kernel = make_kernel(CONFIG_C)
        sender = kernel.create_task("s")
        receiver = kernel.create_task("r")
        vpage = sender.allocate_anon(1)   # no frame yet
        dst = transfer_page(kernel, sender, vpage, receiver)
        assert receiver.read(dst, 0) == 0   # zero-fills on first touch


class TestAlignmentSelection:
    def test_aligned_policy_matches_sender_cache_page(self):
        kernel = make_kernel(CONFIG_C)
        ncp = kernel.machine.dcache.geo.num_cache_pages
        sender = kernel.create_task("s")
        receiver = kernel.create_task("r")
        # occupy some receiver space so alignment is non-trivial
        receiver.allocate_anon(3)
        vpage = sender.allocate_anon(1)
        sender.write(vpage, 0, 1)
        dst = transfer_page(kernel, sender, vpage, receiver)
        assert dst % ncp == vpage % ncp

    def test_aligned_transfer_needs_no_cache_ops_at_receive(self):
        kernel = make_kernel(CONFIG_C)
        sender = kernel.create_task("s")
        receiver = kernel.create_task("r")
        vpage = sender.allocate_anon(1)
        sender.write(vpage, 0, 1)
        dst = transfer_page(kernel, sender, vpage, receiver)
        f0 = kernel.machine.counters.total_flushes("dcache")
        p0 = kernel.machine.counters.total_purges("dcache")
        assert receiver.read(dst, 0) == 1
        assert kernel.machine.counters.total_flushes("dcache") == f0
        assert kernel.machine.counters.total_purges("dcache") == p0

    def test_first_fit_policy_usually_unaligned_and_flushes(self):
        kernel = make_kernel(CONFIG_B)
        ncp = kernel.machine.dcache.geo.num_cache_pages
        sender = kernel.create_task("s")
        receiver = kernel.create_task("r")
        # Skew the receiver's first-fit cursor off the sender's color.
        receiver.allocate_anon(1)
        receiver.allocate_anon(1)
        vpage = sender.allocate_anon(1)
        sender.write(vpage, 0, 1)
        dst = transfer_page(kernel, sender, vpage, receiver)
        if dst % ncp != vpage % ncp:      # generically true with first-fit
            f0 = kernel.machine.counters.total_flushes("dcache")
            assert receiver.read(dst, 0) == 1
            assert kernel.machine.counters.total_flushes("dcache") == f0 + 1
