"""Tests for program loading and the data-to-instruction copy path."""

import pytest

from repro.hw.params import MachineConfig
from repro.hw.stats import Reason
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.vm.policy import CONFIG_A, CONFIG_F


def make_kernel(policy=CONFIG_F):
    return Kernel(policy=policy, config=MachineConfig(phys_pages=256))


class TestExec:
    def test_text_faults_in_lazily(self):
        kernel = make_kernel()
        program = kernel.exec_loader.register_program("prog", 2, 1)
        proc = UserProcess(kernel, "p")
        text, data = kernel.exec_loader.exec_into(proc.task, program)
        d2i_before = kernel.machine.counters.d_to_i_copies
        proc.task.ifetch(text)
        assert kernel.machine.counters.d_to_i_copies == d2i_before + 1
        proc.task.ifetch(text)            # second fetch: no new copy
        assert kernel.machine.counters.d_to_i_copies == d2i_before + 1

    def test_text_contents_come_from_the_file(self):
        from repro.kernel.disk import synthetic_block
        kernel = make_kernel()
        program = kernel.exec_loader.register_program("prog", 1, 1)
        proc = UserProcess(kernel, "p")
        text, _ = kernel.exec_loader.exec_into(proc.task, program)
        expected = synthetic_block(program.file_id, 0, 1024)
        assert proc.task.ifetch(text, word=5) == int(expected[5])

    def test_each_text_fault_flushes_the_data_cache(self):
        kernel = make_kernel()
        program = kernel.exec_loader.register_program("prog", 1, 1)
        proc = UserProcess(kernel, "p")
        text, _ = kernel.exec_loader.exec_into(proc.task, program)
        before = kernel.machine.counters.total_flushes(
            "dcache", Reason.D_TO_I_COPY)
        proc.task.ifetch(text)
        assert kernel.machine.counters.total_flushes(
            "dcache", Reason.D_TO_I_COPY) == before + 1

    def test_old_system_attributes_no_d2i_copies(self):
        # Section 5.1: "The 'A' configurations all show no data to
        # instruction space copies" — the flush hides in the unmap path.
        kernel = make_kernel(CONFIG_A)
        program = kernel.exec_loader.register_program("prog", 1, 1)
        proc = UserProcess(kernel, "p")
        text, _ = kernel.exec_loader.exec_into(proc.task, program)
        proc.task.ifetch(text)
        assert kernel.machine.counters.d_to_i_copies == 0

    def test_spawn_runs_the_program(self):
        kernel = make_kernel()
        program = kernel.exec_loader.register_program("prog", 2, 2)
        parent = UserProcess(kernel, "parent")
        child = parent.spawn(program)
        assert child.task.asid != parent.task.asid
        child.exit()
        parent.exit()

    def test_unknown_program_rejected(self):
        from repro.errors import KernelError
        kernel = make_kernel()
        with pytest.raises(KernelError):
            kernel.exec_loader.program("missing")

    def test_repeated_execs_generate_fresh_copies(self):
        # As in the paper's system: text is copied out of the buffer cache
        # per faulting process, so kernel-build's 200 compiles pay 200x.
        kernel = make_kernel()
        program = kernel.exec_loader.register_program("prog", 1, 1)
        parent = UserProcess(kernel, "parent")
        d2i_before = kernel.machine.counters.d_to_i_copies
        for _ in range(3):
            child = parent.spawn(program)
            child.exit()
        assert kernel.machine.counters.d_to_i_copies == d2i_before + 3
