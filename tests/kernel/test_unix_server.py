"""Tests for the Unix server: channels, syscalls, file data movement."""

import numpy as np
import pytest

from repro.hw.params import MachineConfig
from repro.kernel.disk import synthetic_block
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess, fresh_tokens
from repro.vm.policy import CONFIG_B, CONFIG_C, CONFIG_F


def make_kernel(policy=CONFIG_F):
    return Kernel(policy=policy, config=MachineConfig(phys_pages=256))


class TestChannels:
    def test_old_server_demands_fixed_unalignable_address(self):
        kernel = make_kernel(CONFIG_B)   # align_server_pages off
        proc = UserProcess(kernel, "p")
        channel = kernel.unix_server._channels[proc.task.asid]
        from repro.kernel.unix_server import CHANNEL_FIXED_PROC_VPAGE
        assert channel.proc_vpage == CHANNEL_FIXED_PROC_VPAGE

    def test_new_server_lets_vm_align_the_channel(self):
        kernel = make_kernel(CONFIG_C)
        ncp = kernel.machine.dcache.geo.num_cache_pages
        for i in range(4):
            proc = UserProcess(kernel, f"p{i}")
            channel = kernel.unix_server._channels[proc.task.asid]
            assert channel.proc_vpage % ncp == channel.server_vpage % ncp

    def test_aligned_channels_syscall_without_consistency_faults(self):
        from repro.hw.stats import FaultKind
        kernel = make_kernel(CONFIG_C)
        proc = UserProcess(kernel, "p")
        proc.create("/warm")          # warm up mappings
        proc.stat("/warm")
        before = kernel.machine.counters.faults[FaultKind.CONSISTENCY]
        for _ in range(5):
            proc.stat("/warm")
        assert kernel.machine.counters.faults[FaultKind.CONSISTENCY] == before

    def test_unaligned_channels_fault_every_exchange(self):
        from repro.hw.stats import FaultKind
        kernel = make_kernel(CONFIG_B)
        # The first channel slot happens to align with the fixed client
        # address (both are multiples of the cache-page count); use the
        # second process, whose server slot is offset by one.
        UserProcess(kernel, "init")
        proc = UserProcess(kernel, "p")
        channel = kernel.unix_server._channels[proc.task.asid]
        ncp = kernel.machine.dcache.geo.num_cache_pages
        assert channel.proc_vpage % ncp != channel.server_vpage % ncp
        proc.create("/warm")
        proc.stat("/warm")
        before = kernel.machine.counters.faults[FaultKind.CONSISTENCY]
        proc.stat("/warm")
        assert kernel.machine.counters.faults[FaultKind.CONSISTENCY] > before


class TestFileSyscalls:
    def test_read_returns_file_contents(self):
        kernel = make_kernel()
        meta = kernel.fs.create("/data", size_pages=2, on_disk=True)
        proc = UserProcess(kernel, "p")
        fd = proc.open("/data")
        page = proc.read_file_page(fd, 1)
        assert np.array_equal(page, synthetic_block(meta.file_id, 1, 1024))
        proc.close(fd)

    def test_write_reaches_disk_after_sync(self):
        kernel = make_kernel()
        proc = UserProcess(kernel, "p")
        proc.create("/out")
        fd = proc.open("/out")
        values = fresh_tokens(1024)
        proc.write_file_page(fd, 0, values)
        proc.close(fd)
        kernel.shutdown()
        meta = kernel.fs.lookup("/out")
        assert np.array_equal(kernel.disk.block(meta.file_id, 0), values)

    def test_write_then_read_roundtrip_through_server(self):
        kernel = make_kernel()
        proc = UserProcess(kernel, "p")
        proc.create("/rw")
        fd = proc.open("/rw")
        values = fresh_tokens(1024)
        proc.write_file_page(fd, 0, values)
        got = proc.read_file_page(fd, 0)
        assert np.array_equal(got, values)

    def test_read_moves_a_page_by_ipc(self):
        kernel = make_kernel()
        kernel.fs.create("/data", size_pages=1, on_disk=True)
        proc = UserProcess(kernel, "p")
        before = kernel.machine.counters.ipc_page_moves
        fd = proc.open("/data")
        proc.read_file_page(fd, 0)
        assert kernel.machine.counters.ipc_page_moves == before + 1

    def test_frames_recycled_over_many_reads(self):
        kernel = make_kernel()
        kernel.fs.create("/data", size_pages=1, on_disk=True)
        proc = UserProcess(kernel, "p")
        fd = proc.open("/data")
        free_start = len(kernel.free_list)
        for _ in range(20):
            proc.read_file_page(fd, 0)
        # message frames come and go; no leak beyond a small wiggle
        assert len(kernel.free_list) >= free_start - 2

    def test_unknown_fd_rejected(self):
        from repro.errors import KernelError
        kernel = make_kernel()
        proc = UserProcess(kernel, "p")
        with pytest.raises(KernelError):
            proc.read_file_page(99, 0)

    def test_copy_file_preserves_contents(self):
        kernel = make_kernel()
        src = kernel.fs.create("/src", size_pages=3, on_disk=True)
        proc = UserProcess(kernel, "p")
        proc.copy_file("/src", "/dst")
        kernel.shutdown()
        dst = kernel.fs.lookup("/dst")
        for page in range(3):
            assert np.array_equal(kernel.disk.block(dst.file_id, page),
                                  synthetic_block(src.file_id, page, 1024))

    def test_stat_and_remove(self):
        kernel = make_kernel()
        proc = UserProcess(kernel, "p")
        proc.create("/f")
        proc.stat("/f")
        proc.remove("/f")
        assert not kernel.fs.exists("/f")


class TestProcessLifecycle:
    def test_exit_detaches_and_frees(self):
        kernel = make_kernel()
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(2)
        proc.task.write(vpage, 0, 1)
        proc.exit()
        assert proc.task.asid not in kernel.unix_server._channels
        assert proc.task.asid not in kernel.tasks

    def test_double_exit_rejected(self):
        from repro.errors import KernelError
        kernel = make_kernel()
        proc = UserProcess(kernel, "p")
        proc.exit()
        with pytest.raises(KernelError):
            proc.exit()

    def test_many_processes_each_get_a_channel(self):
        kernel = make_kernel(CONFIG_B)
        procs = [UserProcess(kernel, f"p{i}") for i in range(5)]
        vpages = {kernel.unix_server._channels[p.task.asid].server_vpage
                  for p in procs}
        assert len(vpages) == 5   # distinct server slots
