"""Tests for the Section 2.1 single global address space model.

"In the global model, memory is shared at the same address in all
processes.  This eliminates consistency problems due to sharing ... but
does not solve the problems that arise during the creation of new
mappings or DMA-based I/O."
"""

import pytest

from repro.hw.params import MachineConfig
from repro.hw.stats import FaultKind
from repro.kernel.ipc import transfer_page
from repro.kernel.kernel import Kernel
from repro.kernel.process import UserProcess
from repro.prot import Prot
from repro.vm.policy import CONFIG_GLOBAL
from repro.vm.vm_object import VMObject


def make_kernel():
    return Kernel(policy=CONFIG_GLOBAL, config=MachineConfig(phys_pages=256))


class TestAddressing:
    def test_shared_object_maps_at_the_same_address_everywhere(self):
        kernel = make_kernel()
        a = kernel.create_task("a")
        b = kernel.create_task("b")
        obj = VMObject(2)
        va_a = a.map_shared(obj, Prot.READ_WRITE)
        va_b = b.map_shared(obj, Prot.READ_WRITE)
        assert va_a == va_b

    def test_addresses_are_globally_unique(self):
        kernel = make_kernel()
        a = kernel.create_task("a")
        b = kernel.create_task("b")
        assert a.allocate_anon(3) != b.allocate_anon(3)

    def test_ipc_preserves_the_address(self):
        kernel = make_kernel()
        sender = UserProcess(kernel, "s")
        receiver = UserProcess(kernel, "r")
        vpage = sender.task.allocate_anon(1)
        sender.task.write(vpage, 0, 5)
        dst = transfer_page(kernel, sender.task, vpage, receiver.task)
        assert dst == vpage
        assert receiver.task.read(dst, 0) == 5

    def test_server_channel_shared_at_one_address(self):
        kernel = make_kernel()
        proc = UserProcess(kernel, "p")
        channel = kernel.unix_server._channels[proc.task.asid]
        assert channel.server_vpage == channel.proc_vpage


class TestConsistencyProperties:
    def test_sharing_costs_no_consistency_faults(self):
        kernel = make_kernel()
        a = kernel.create_task("a")
        b = kernel.create_task("b")
        obj = VMObject(1)
        vpage = a.map_shared(obj, Prot.READ_WRITE)
        b.map_shared(obj, Prot.READ_WRITE)
        # Warm up: the first read downgrades to READ_ONLY, the next write
        # re-establishes READ_WRITE for the (aligned) pair; after that the
        # exchange is fault-free.
        a.write(vpage, 0, 1)
        b.read(vpage, 0)
        a.write(vpage, 0, 2)
        before = kernel.machine.counters.faults[FaultKind.CONSISTENCY]
        for i in range(20):
            a.write(vpage, 0, i)
            assert b.read(vpage, 0) == i
        assert kernel.machine.counters.faults[FaultKind.CONSISTENCY] == before

    def test_dma_obligations_remain(self):
        # The global model does not remove the DMA problem.
        kernel = make_kernel()
        proc = UserProcess(kernel, "p")
        vpage = proc.task.allocate_anon(1)
        proc.task.write(vpage, 0, 42)
        frame = kernel.pmap.page_table(proc.task.asid).lookup(vpage).ppage
        kernel.disk.write_block(9, 0, frame)
        assert kernel.disk.block(9, 0)[0] == 42   # flush still happened
        assert kernel.machine.counters.total_flushes("dcache") >= 1

    def test_workload_runs_clean(self):
        from repro.workloads.afs_bench import AfsBench
        kernel = make_kernel()
        AfsBench(scale=0.25).run(kernel)
        kernel.shutdown()
        assert kernel.machine.oracle.clean

    def test_far_fewer_consistency_faults_than_hierarchical_lazy(self):
        from repro.workloads.afs_bench import AfsBench
        from repro.vm.policy import CONFIG_B
        results = {}
        for policy in (CONFIG_B, CONFIG_GLOBAL):
            kernel = Kernel(policy=policy,
                            config=MachineConfig(phys_pages=256))
            AfsBench(scale=0.25).run(kernel)
            results[policy.name] = (
                kernel.machine.counters.faults[FaultKind.CONSISTENCY])
        assert results["G"] < results["B"] / 5
