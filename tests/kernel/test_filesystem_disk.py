"""Tests for the file system and the DMA disk."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.hw.params import MachineConfig
from repro.kernel.disk import synthetic_block
from repro.kernel.kernel import Kernel
from repro.vm.policy import CONFIG_F


@pytest.fixture
def kernel():
    return Kernel(policy=CONFIG_F, config=MachineConfig(phys_pages=128),
                  with_unix_server=False)


class TestDisk:
    def test_preload_and_read(self, kernel):
        kernel.disk.preload(1, 2)
        frame = kernel.allocate_frame()
        kernel.disk.read_block(1, 1, frame)
        assert np.array_equal(kernel.machine.memory.read_page(frame),
                              synthetic_block(1, 1, 1024))

    def test_read_of_missing_block_rejected(self, kernel):
        frame = kernel.allocate_frame()
        with pytest.raises(KernelError):
            kernel.disk.read_block(9, 0, frame)

    def test_write_then_read_roundtrip(self, kernel):
        frame = kernel.allocate_frame()
        values = np.full(1024, 3, dtype=np.uint64)
        kernel.pmap.prepare_dma_write(frame)
        kernel.machine.dma.dma_write(frame, values)  # simulate content
        kernel.disk.write_block(7, 0, frame)
        frame2 = kernel.allocate_frame()
        kernel.disk.read_block(7, 0, frame2)
        assert np.array_equal(kernel.machine.memory.read_page(frame2), values)

    def test_write_flushes_cpu_dirty_data_first(self, kernel):
        # The flush-before-DMA-read obligation, end to end.
        task = kernel.create_task("t")
        vpage = task.allocate_anon(1)
        task.write(vpage, 0, 42)   # dirty in the cache only
        frame = kernel.pmap.page_table(task.asid).lookup(vpage).ppage
        kernel.disk.write_block(7, 0, frame)
        assert kernel.disk.block(7, 0)[0] == 42

    def test_discard(self, kernel):
        kernel.disk.preload(1, 1)
        kernel.disk.discard(1)
        assert not kernel.disk.has_block(1, 0)


class TestFileSystem:
    def test_create_and_lookup(self, kernel):
        meta = kernel.fs.create("/a/b.txt", size_pages=2, on_disk=True)
        assert kernel.fs.lookup("/a/b.txt") is meta
        assert kernel.fs.exists("/a/b.txt")
        assert meta.size_pages == 2

    def test_duplicate_create_rejected(self, kernel):
        kernel.fs.create("/x")
        with pytest.raises(KernelError):
            kernel.fs.create("/x")

    def test_lookup_missing_rejected(self, kernel):
        with pytest.raises(KernelError):
            kernel.fs.lookup("/nope")

    def test_read_page_frame(self, kernel):
        kernel.fs.create("/f", size_pages=1, on_disk=True)
        meta = kernel.fs.lookup("/f")
        frame = kernel.fs.read_page_frame("/f", 0)
        assert np.array_equal(kernel.machine.memory.read_page(frame),
                              synthetic_block(meta.file_id, 0, 1024))

    def test_read_beyond_eof_rejected(self, kernel):
        kernel.fs.create("/f", size_pages=1, on_disk=True)
        with pytest.raises(KernelError):
            kernel.fs.read_page_frame("/f", 1)

    def test_write_grows_file(self, kernel):
        kernel.fs.create("/f")
        frame = kernel.allocate_frame()
        kernel.pmap.zero_fill_page(frame)
        kernel.fs.write_page_from_frame("/f", 2, frame)
        assert kernel.fs.lookup("/f").size_pages == 3

    def test_remove_drops_blocks(self, kernel):
        kernel.fs.create("/f", size_pages=1, on_disk=True)
        meta = kernel.fs.lookup("/f")
        kernel.fs.read_page_frame("/f", 0)
        kernel.fs.remove("/f")
        assert not kernel.fs.exists("/f")
        assert not kernel.disk.has_block(meta.file_id, 0)

    def test_listdir_prefix(self, kernel):
        for name in ("/d/a", "/d/b", "/e/c"):
            kernel.fs.create(name)
        assert kernel.fs.listdir("/d/") == ["/d/a", "/d/b"]
        assert kernel.fs.file_count() == 3
