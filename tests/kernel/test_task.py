"""Tests for tasks: anonymous memory, fork, copy-on-write."""

import pytest

from repro.errors import KernelError
from repro.hw.params import MachineConfig
from repro.kernel.kernel import Kernel
from repro.kernel.task import fork_task
from repro.prot import Prot
from repro.vm.policy import CONFIG_A, CONFIG_F


@pytest.fixture
def kernel():
    return Kernel(policy=CONFIG_F, config=MachineConfig(phys_pages=128),
                  with_unix_server=False)


class TestAnonymousMemory:
    def test_lazy_zero_fill(self, kernel):
        task = kernel.create_task("t")
        vpage = task.allocate_anon(2)
        assert task.read(vpage, 0) == 0          # first touch faults + zeros
        assert task.read(vpage + 1, 100) == 0

    def test_write_then_read(self, kernel):
        task = kernel.create_task("t")
        vpage = task.allocate_anon(1)
        task.write(vpage, 3, 77)
        assert task.read(vpage, 3) == 77

    def test_unmap_releases_frames(self, kernel):
        task = kernel.create_task("t")
        free_before = len(kernel.free_list)
        vpage = task.allocate_anon(1)
        task.write(vpage, 0, 1)
        task.unmap(vpage)
        assert len(kernel.free_list) == free_before


class TestFork:
    def test_child_sees_parent_data(self, kernel):
        parent = kernel.create_task("p")
        vpage = parent.allocate_anon(1)
        parent.write(vpage, 0, 42)
        child = fork_task(kernel, parent)
        assert child.read(vpage, 0) == 42

    def test_cow_isolates_child_writes(self, kernel):
        parent = kernel.create_task("p")
        vpage = parent.allocate_anon(1)
        parent.write(vpage, 0, 42)
        child = fork_task(kernel, parent)
        child.write(vpage, 0, 43)
        assert parent.read(vpage, 0) == 42
        assert child.read(vpage, 0) == 43

    def test_cow_isolates_parent_writes(self, kernel):
        parent = kernel.create_task("p")
        vpage = parent.allocate_anon(1)
        parent.write(vpage, 0, 42)
        child = fork_task(kernel, parent)
        parent.write(vpage, 0, 99)
        assert child.read(vpage, 0) == 42
        assert parent.read(vpage, 0) == 99

    def test_cow_counts_as_mapping_fault(self, kernel):
        from repro.hw.stats import FaultKind
        parent = kernel.create_task("p")
        vpage = parent.allocate_anon(1)
        parent.write(vpage, 0, 42)
        child = fork_task(kernel, parent)
        before = kernel.machine.counters.faults[FaultKind.MAPPING]
        child.write(vpage, 0, 43)
        assert kernel.machine.counters.faults[FaultKind.MAPPING] > before

    def test_untouched_cow_page_resolves_to_zero_page(self, kernel):
        parent = kernel.create_task("p")
        vpage = parent.allocate_anon(1)   # never touched by the parent
        child = fork_task(kernel, parent)
        child.write(vpage, 0, 5)
        assert child.read(vpage, 0) == 5
        assert parent.read(vpage, 0) == 0

    def test_cow_under_eager_policy(self):
        kernel = Kernel(policy=CONFIG_A,
                        config=MachineConfig(phys_pages=128),
                        with_unix_server=False)
        parent = kernel.create_task("p")
        vpage = parent.allocate_anon(1)
        parent.write(vpage, 0, 42)
        child = fork_task(kernel, parent)
        child.write(vpage, 0, 43)
        assert parent.read(vpage, 0) == 42
        assert child.read(vpage, 0) == 43


class TestTaskLifecycle:
    def test_destroy_returns_all_frames(self, kernel):
        free_before = len(kernel.free_list)
        task = kernel.create_task("t")
        vpage = task.allocate_anon(4)
        for i in range(4):
            task.write(vpage + i, 0, i)
        kernel.destroy_task(task)
        assert len(kernel.free_list) == free_before
        assert not task.alive

    def test_destroy_after_fork_keeps_shared_frames(self, kernel):
        parent = kernel.create_task("p")
        vpage = parent.allocate_anon(1)
        parent.write(vpage, 0, 42)
        child = fork_task(kernel, parent)
        kernel.destroy_task(parent)
        assert child.read(vpage, 0) == 42

    def test_fixed_mapping_collision_rejected(self, kernel):
        from repro.vm.vm_object import VMObject
        task = kernel.create_task("t")
        obj = VMObject(1)
        task.map_shared(obj, Prot.READ_WRITE, fixed_vpage=100)
        with pytest.raises(KernelError):
            task.map_shared(VMObject(1), Prot.READ_WRITE, fixed_vpage=100)

    def test_segfault_on_unmapped_access(self, kernel):
        from repro.errors import ProtectionError
        task = kernel.create_task("t")
        with pytest.raises(ProtectionError):
            task.read(5000)
